//! The `dragon serve` daemon: warm analysis sessions behind a Unix socket.
//!
//! # Architecture
//!
//! ```text
//!            accept loop (nonblocking, polls SHUTDOWN)
//!                 │ one thread per connection
//!                 ▼
//!   connection threads ──try_send──▶ worker 0..N (bounded queues)
//!     │ stats/shutdown answered        │ each owns its shard of
//!     │ inline; full queue ⇒           │ project → AnalysisSession
//!     ▼ structured `overloaded`        ▼
//!   one response line per request    deadline scope + catch_unwind
//!                                    around every request
//! ```
//!
//! Sessions are sharded by project-name hash, so a project's requests are
//! serialized on one worker — no session locking, no cross-request races —
//! while distinct projects proceed in parallel.
//!
//! # Robustness invariants
//!
//! - **Bounded worst case**: every request runs under a deadline token
//!   observed by the budget checkpoints; stuck work degrades, it never
//!   wedges a worker past its deadline.
//! - **Blast-radius one project**: a panicking handler is contained by
//!   `catch_unwind`; the poisoned session is dropped (rewarmed from disk on
//!   the project's next request) and every other session is untouched.
//! - **Overload is a response, not a drop**: a full worker queue yields a
//!   structured `overloaded` error with a retry hint; connections are
//!   never closed as back-pressure.
//! - **Durable with a bounded window**: writes persist through the
//!   store's atomic commit path under a group-commit policy — inline on a
//!   project's first commit and then at most once per debounce window on
//!   the request path, with idle workers flushing early and drain
//!   flushing everything. A crash loses at most the last window's delta.
//! - **Recovery is the startup path**: the daemon scans its cache root,
//!   takes over stale `DirLock`s, skips quarantined entries, and warms
//!   every discoverable session before accepting connections.
//!
//! With `ARAA_SERVE_CHAOS_ABORT=1` an injected-fault panic aborts the
//! process *before unwinding* — a faithful crash at exactly the armed
//! faultpoint, used by the chaos tests to prove the recovery path.

use super::proto::{self, ErrorKind, Op, Request};
use araa::{AnalysisOptions, AnalysisSession};
use frontend::SourceFile;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;
use support::deadline::{self, DeadlineToken};
use support::hash::fnv1a;
use support::json::{obj, Value};
use support::obs::{self, Counter, Gauge};
use whirl::Lang;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Root directory for per-project session stores; `None` serves from
    /// memory only (no persistence, no recovery).
    pub cache_root: Option<PathBuf>,
    /// Worker threads (session shards).
    pub workers: usize,
    /// Bounded queue depth per worker; beyond it requests are shed.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: u64,
    /// Group-commit window: after a write, a session persists on the
    /// request path at most once per this many milliseconds (an idle
    /// worker flushes sooner, and drain always flushes everything). `0`
    /// means write-through: every successful analyze persists inline.
    pub persist_debounce_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: PathBuf::from("dragon.sock"),
            cache_root: None,
            workers: 2,
            queue_depth: 64,
            default_deadline_ms: 30_000,
            persist_debounce_ms: 500,
        }
    }
}

/// Retry hint attached to `overloaded` responses.
const RETRY_AFTER_MS: u64 = 100;
/// Hard ceiling on client-requested deadlines (a zero or huge deadline is
/// clamped into sanity).
const MAX_DEADLINE_MS: u64 = 10 * 60 * 1000;
/// How long the drain phase waits for in-flight connections.
const DRAIN_WAIT: Duration = Duration::from_secs(20);
/// How long an idle worker waits for a job before flushing dirty
/// sessions to disk. Bounds the crash-loss window of a quiescent daemon
/// to roughly `persist_debounce_ms + IDLE_FLUSH`.
const IDLE_FLUSH: Duration = Duration::from_millis(200);

/// Daemon-wide counters, shared by connection threads and workers and
/// reported by the `stats` op.
#[derive(Debug, Default)]
struct ServerStats {
    requests: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    panics: AtomicU64,
    sessions: AtomicU64,
    queued: AtomicU64,
}

impl ServerStats {
    fn snapshot_json(&self, workers: usize, queue_depth: usize) -> Value {
        obj([
            ("requests", Value::int(self.requests.load(Ordering::Relaxed))),
            ("shed", Value::int(self.shed.load(Ordering::Relaxed))),
            (
                "deadline_expired",
                Value::int(self.deadline_expired.load(Ordering::Relaxed)),
            ),
            ("panics", Value::int(self.panics.load(Ordering::Relaxed))),
            ("sessions", Value::int(self.sessions.load(Ordering::Relaxed))),
            ("queued", Value::int(self.queued.load(Ordering::Relaxed))),
            ("workers", Value::int(workers as u64)),
            ("queue_depth", Value::int(queue_depth as u64)),
        ])
    }
}

/// Set by SIGTERM/SIGINT (and the `shutdown` op); polled by the accept
/// loop. Process-global because signal handlers are.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

fn install_signal_handlers() {
    // std links libc; `signal` is sufficient for a single flag-set handler
    // (async-signal-safe: one relaxed atomic store).
    extern "C" fn on_signal(_sig: std::os::raw::c_int) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }
    unsafe extern "C" {
        fn signal(
            signum: std::os::raw::c_int,
            handler: extern "C" fn(std::os::raw::c_int),
        ) -> usize;
    }
    const SIGINT: std::os::raw::c_int = 2;
    const SIGTERM: std::os::raw::c_int = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Under `ARAA_SERVE_CHAOS_ABORT=1`, die *at* an injected fault instead of
/// unwinding into the worker's `catch_unwind` — no `Drop`s run, so lock
/// files and temp litter survive exactly as in a real crash.
fn install_chaos_abort_hook() {
    if std::env::var("ARAA_SERVE_CHAOS_ABORT").as_deref() != Ok("1") {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.starts_with("fault injected:") {
            std::process::abort();
        }
        prev(info);
    }));
}

/// One queued unit of work: the request plus the channel its response goes
/// back on. The worker *always* sends exactly one response (panics are
/// converted), so the connection thread can block on `recv`.
struct Job {
    req: Request,
    resp_tx: SyncSender<String>,
}

fn shard_of(project: &str, workers: usize) -> usize {
    (fnv1a(project.as_bytes()) % workers as u64) as usize
}

/// Stable on-disk directory for a project under the cache root. The hash
/// keeps arbitrary project names filesystem-safe; `project.name` inside
/// records the original for recovery scans.
fn project_dir(root: &Path, project: &str) -> PathBuf {
    root.join(format!("p{:016x}", fnv1a(project.as_bytes())))
}

/// Discovers projects persisted under `root` (directories carrying a
/// `project.name` marker) for startup recovery.
fn scan_projects(root: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(root) else { return Vec::new() };
    let mut found = Vec::new();
    for entry in entries.flatten() {
        let marker = entry.path().join("project.name");
        if let Ok(name) = std::fs::read_to_string(&marker) {
            let name = name.trim().to_string();
            if !name.is_empty() {
                found.push(name);
            }
        }
    }
    found.sort();
    found
}

/// Runs the daemon until a graceful shutdown completes. Blocks the calling
/// thread; returns once every session has drained and persisted.
pub fn run(opts: ServeOptions) -> support::Result<()> {
    SHUTDOWN.store(false, Ordering::Relaxed);
    install_signal_handlers();
    install_chaos_abort_hook();
    let workers = opts.workers.max(1);
    let queue_depth = opts.queue_depth.max(1);
    let stats = Arc::new(ServerStats::default());

    // Recovery scan: every persisted project warms before we listen, so
    // the first post-crash request is already served from recovered state.
    let mut initial: Vec<Vec<String>> = vec![Vec::new(); workers];
    if let Some(root) = &opts.cache_root {
        std::fs::create_dir_all(root)
            .map_err(|e| support::Error::io(format!("creating {}", root.display()), e))?;
        for project in scan_projects(root) {
            let shard = shard_of(&project, workers);
            initial[shard].push(project);
        }
    }

    let listener = bind_socket(&opts.socket)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| support::Error::io("socket set_nonblocking".to_string(), e))?;

    // Workers: each owns its shard's sessions for the daemon's lifetime.
    let mut senders: Vec<SyncSender<Job>> = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    let obs_ctx = obs::current();
    for (idx, projects) in initial.into_iter().enumerate() {
        let (tx, rx) = sync_channel::<Job>(queue_depth);
        senders.push(tx);
        let opts = opts.clone();
        let stats = Arc::clone(&stats);
        let obs_ctx = obs_ctx.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{idx}"))
                .spawn(move || {
                    let _obs = obs_ctx.map(obs::attach);
                    worker_main(rx, &opts, &stats, projects);
                })
                .map_err(|e| support::Error::io("spawning worker".to_string(), e))?,
        );
    }

    // Accept loop: nonblocking so SIGTERM is observed within one poll tick.
    let active_conns = Arc::new(AtomicUsize::new(0));
    loop {
        if SHUTDOWN.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let senders = senders.clone();
                let stats = Arc::clone(&stats);
                let active = Arc::clone(&active_conns);
                let opts = opts.clone();
                let obs_ctx = obs::current();
                active.fetch_add(1, Ordering::Relaxed);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        let _obs = obs_ctx.map(obs::attach);
                        handle_connection(stream, &senders, &stats, &opts);
                        active.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    active_conns.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // The poll tick is the latency floor for fresh connections
                // (one-shot CLI clients pay it on every request), so it is
                // kept short; a few kHz of empty accept() is negligible CPU.
                std::thread::sleep(Duration::from_micros(250));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }

    // Drain: let in-flight connections finish (their requests are deadline
    // bounded), then close the queues so workers persist and exit.
    let drain_deadline = std::time::Instant::now() + DRAIN_WAIT;
    while active_conns.load(Ordering::Relaxed) > 0
        && std::time::Instant::now() < drain_deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(senders);
    for h in handles {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(&opts.socket);
    Ok(())
}

/// Binds the listening socket, reclaiming a dead daemon's stale socket
/// file (connect refused ⇒ no live listener behind it).
fn bind_socket(path: &Path) -> support::Result<UnixListener> {
    if path.exists() {
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(support::Error::Analysis(format!(
                    "{} already has a live daemon listening",
                    path.display()
                )));
            }
            Err(_) => {
                let _ = std::fs::remove_file(path);
            }
        }
    }
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| support::Error::io(format!("creating {}", parent.display()), e))?;
    }
    UnixListener::bind(path)
        .map_err(|e| support::Error::io(format!("binding {}", path.display()), e))
}

/// How often an idle connection wakes up to observe SHUTDOWN.
const CONN_POLL: Duration = Duration::from_millis(200);

/// Serves one connection: one response line per request line, in order.
///
/// Reads poll with a short timeout so a connection a client holds open but
/// idle still observes SHUTDOWN and exits — otherwise its clone of the
/// worker senders would keep the worker queues alive and block the drain
/// forever.
fn handle_connection(
    stream: UnixStream,
    senders: &[SyncSender<Job>],
    stats: &ServerStats,
    opts: &ServeOptions,
) {
    if stream.set_read_timeout(Some(CONN_POLL)).is_err() {
        return;
    }
    let Ok(reader_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(reader_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // Accumulate one full line; `read_line` keeps partial reads in
        // `line` across timeouts, so slow writers are never torn.
        let mut at_eof = false;
        while !line.ends_with('\n') {
            match reader.read_line(&mut line) {
                Ok(0) => {
                    at_eof = true;
                    break;
                }
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if SHUTDOWN.load(Ordering::Relaxed) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            let response = dispatch(trimmed, senders, stats, opts);
            if writer
                .write_all(response.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                return;
            }
        }
        if at_eof {
            return;
        }
    }
}

/// Routes one request line to its response line.
fn dispatch(
    line: &str,
    senders: &[SyncSender<Job>],
    stats: &ServerStats,
    opts: &ServeOptions,
) -> String {
    let req = match proto::parse_request(line) {
        Ok(r) => r,
        Err((id, msg)) => {
            return proto::err_response(id, None, ErrorKind::BadRequest, &msg, None);
        }
    };
    stats.requests.fetch_add(1, Ordering::Relaxed);
    obs::incr(Counter::ServeRequests);
    match req.op {
        // Control-plane ops answer inline: they must keep working even
        // when every worker queue is full.
        Op::Stats => proto::ok_response(
            req.id,
            Op::Stats,
            stats.snapshot_json(senders.len(), opts.queue_depth.max(1)),
        ),
        Op::Shutdown => {
            SHUTDOWN.store(true, Ordering::Relaxed);
            proto::ok_response(
                req.id,
                Op::Shutdown,
                obj([("draining", Value::Bool(true))]),
            )
        }
        _ if SHUTDOWN.load(Ordering::Relaxed) => proto::err_response(
            req.id,
            Some(req.op),
            ErrorKind::ShuttingDown,
            "daemon is draining",
            Some(RETRY_AFTER_MS),
        ),
        _ => {
            let shard = shard_of(&req.project, senders.len());
            let (resp_tx, resp_rx) = sync_channel::<String>(1);
            let (id, op) = (req.id, req.op);
            match senders[shard].try_send(Job { req, resp_tx }) {
                Ok(()) => {
                    stats.queued.fetch_add(1, Ordering::Relaxed);
                    obs::set_gauge(Gauge::ServeQueueDepth, stats.queued.load(Ordering::Relaxed));
                    match resp_rx.recv() {
                        Ok(resp) => resp,
                        // Worker died (chaos abort in flight): the process
                        // is going down; answer what we can.
                        Err(_) => proto::err_response(
                            id,
                            Some(op),
                            ErrorKind::Internal,
                            "worker terminated mid-request",
                            None,
                        ),
                    }
                }
                Err(TrySendError::Full(_)) => {
                    stats.shed.fetch_add(1, Ordering::Relaxed);
                    obs::incr(Counter::ServeShed);
                    proto::err_response(
                        id,
                        Some(op),
                        ErrorKind::Overloaded,
                        "worker queue full",
                        Some(RETRY_AFTER_MS),
                    )
                }
                Err(TrySendError::Disconnected(_)) => proto::err_response(
                    id,
                    Some(op),
                    ErrorKind::Internal,
                    "worker unavailable",
                    None,
                ),
            }
        }
    }
}

/// One shard's session map, warmed from disk where possible.
struct Shard<'a> {
    sessions: BTreeMap<String, AnalysisSession>,
    /// Projects with committed-but-unpersisted work (group commit).
    dirty: std::collections::BTreeSet<String>,
    /// Wall time of each project's last successful persist.
    last_persist: BTreeMap<String, std::time::Instant>,
    opts: &'a ServeOptions,
    stats: &'a ServerStats,
}

impl Shard<'_> {
    /// Fetches (or creates, warming from disk) the project's session.
    fn session(&mut self, project: &str) -> &mut AnalysisSession {
        if !self.sessions.contains_key(project) {
            let session = match &self.opts.cache_root {
                Some(root) => {
                    let dir = project_dir(root, project);
                    let _ = std::fs::create_dir_all(&dir);
                    let _ = std::fs::write(dir.join("project.name"), project);
                    let mut s =
                        AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir);
                    s.load();
                    s
                }
                None => AnalysisSession::new(AnalysisOptions::default()),
            };
            self.sessions.insert(project.to_string(), session);
            self.stats.sessions.fetch_add(1, Ordering::Relaxed);
            obs::set_gauge(
                Gauge::ServeSessions,
                self.stats.sessions.load(Ordering::Relaxed),
            );
        }
        self.sessions
            .get_mut(project)
            .unwrap_or_else(|| unreachable!("inserted above"))
    }

    /// Drops a poisoned session; the next request rewarms it from its last
    /// persisted (pre-poison) state.
    fn evict(&mut self, project: &str) {
        self.dirty.remove(project);
        self.last_persist.remove(project);
        if self.sessions.remove(project).is_some() {
            self.stats.sessions.fetch_sub(1, Ordering::Relaxed);
            obs::set_gauge(
                Gauge::ServeSessions,
                self.stats.sessions.load(Ordering::Relaxed),
            );
        }
    }

    /// Group commit, request path: the write marks the project dirty and
    /// persists inline only when its debounce window has elapsed (always,
    /// for a never-persisted project — the first commit is the one that
    /// turns an in-memory session into recoverable state). Persist panics
    /// propagate to the caller's `catch_unwind`, exactly like a panic in
    /// the analysis itself.
    fn note_write(&mut self, project: &str) {
        self.dirty.insert(project.to_string());
        let due = match self.last_persist.get(project) {
            Some(t) => {
                t.elapsed() >= Duration::from_millis(self.opts.persist_debounce_ms)
            }
            None => true,
        };
        if due {
            if let Some(session) = self.sessions.get_mut(project) {
                session.persist();
                self.dirty.remove(project);
                self.last_persist
                    .insert(project.to_string(), std::time::Instant::now());
            }
        }
    }

    /// Flushes off the request path (idle tick, drain): persists every
    /// dirty session regardless of its window. There is no request to
    /// answer here, so a persist panic is contained locally — counted,
    /// the session evicted — and the remaining sessions still flush.
    fn flush_dirty(&mut self) {
        let pending: Vec<String> = self.dirty.iter().cloned().collect();
        for project in pending {
            let Some(session) = self.sessions.get_mut(&project) else {
                self.dirty.remove(&project);
                continue;
            };
            if catch_unwind(AssertUnwindSafe(|| session.persist())).is_ok() {
                self.dirty.remove(&project);
                self.last_persist
                    .insert(project.clone(), std::time::Instant::now());
            } else {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                obs::incr(Counter::ServePanics);
                self.evict(&project);
            }
        }
    }
}

fn worker_main(
    rx: Receiver<Job>,
    opts: &ServeOptions,
    stats: &ServerStats,
    initial_projects: Vec<String>,
) {
    let mut shard = Shard {
        sessions: BTreeMap::new(),
        dirty: std::collections::BTreeSet::new(),
        last_persist: BTreeMap::new(),
        opts,
        stats,
    };
    // Startup recovery: warm every project persisted by a previous
    // incarnation. `session()` takes over stale locks and skips
    // quarantined entries on the way.
    for project in initial_projects {
        let _ = shard.session(&project);
    }
    loop {
        match rx.recv_timeout(IDLE_FLUSH) {
            Ok(job) => {
                stats.queued.fetch_sub(1, Ordering::Relaxed);
                obs::set_gauge(Gauge::ServeQueueDepth, stats.queued.load(Ordering::Relaxed));
                let response = serve_one(&mut shard, &job.req);
                // A dropped receiver (client hung up) is fine; the work is done.
                let _ = job.resp_tx.send(response);
            }
            // Idle: nobody is waiting on latency, so close the group-commit
            // window early.
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => shard.flush_dirty(),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    // Channel closed: graceful drain. Persist every session with
    // uncommitted work through the store's atomic commit path.
    shard.flush_dirty();
}

/// Executes one request under its deadline, with panic containment.
fn serve_one(shard: &mut Shard<'_>, req: &Request) -> String {
    let deadline_ms = req
        .deadline_ms
        .unwrap_or(shard.opts.default_deadline_ms)
        .clamp(1, MAX_DEADLINE_MS);
    let token = DeadlineToken::after(Duration::from_millis(deadline_ms));
    let _scope = deadline::enter(Arc::clone(&token));
    let outcome = catch_unwind(AssertUnwindSafe(|| handle_request(shard, req)));
    let expired = token.expired_now();
    if expired {
        shard.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
        obs::incr(Counter::ServeDeadlineExpired);
    }
    match outcome {
        Ok(Ok(mut result)) => {
            if let Value::Obj(map) = &mut result {
                map.insert("deadline_expired".to_string(), Value::Bool(expired));
            }
            proto::ok_response(req.id, req.op, result)
        }
        Ok(Err((kind, msg))) => proto::err_response(req.id, Some(req.op), kind, &msg, None),
        Err(payload) => {
            // Contained panic: reset this project only; all other sessions
            // (and this worker) keep serving.
            shard.stats.panics.fetch_add(1, Ordering::Relaxed);
            obs::incr(Counter::ServePanics);
            shard.evict(&req.project);
            let msg = ipa::isolate::panic_message(payload.as_ref());
            proto::err_response(
                req.id,
                Some(req.op),
                ErrorKind::Panic,
                &format!("request handler panicked (session reset): {msg}"),
                None,
            )
        }
    }
}

type HandlerResult = Result<Value, (ErrorKind, String)>;

fn handle_request(shard: &mut Shard<'_>, req: &Request) -> HandlerResult {
    match req.op {
        Op::Analyze | Op::Reanalyze => {
            if req.op == Op::Reanalyze && !shard.sessions.contains_key(&req.project) {
                return Err((
                    ErrorKind::BadRequest,
                    format!("reanalyze: unknown project `{}`", req.project),
                ));
            }
            let sources: Vec<SourceFile> = req
                .sources
                .iter()
                .map(|s| {
                    SourceFile::new(
                        &s.name,
                        &s.text,
                        if s.fortran { Lang::Fortran } else { Lang::C },
                    )
                })
                .collect();
            let session = shard.session(&req.project);
            let delta = session
                .update(sources)
                .map_err(|e| (ErrorKind::BadRequest, format!("analysis failed: {e}")))?;
            let analysis = session
                .analysis()
                .ok_or_else(|| (ErrorKind::Internal, "no analysis state".to_string()))?;
            let result = obj([
                ("procedures", Value::int(analysis.program.procedure_count() as u64)),
                ("rows", Value::int(analysis.rows.len() as u64)),
                ("degraded", Value::Bool(!analysis.degradations.is_empty())),
                (
                    "degradations",
                    Value::Arr(
                        analysis
                            .degradations
                            .iter()
                            .map(|d| Value::str(d.to_string()))
                            .collect(),
                    ),
                ),
                ("summaries_recomputed", Value::int(delta.summaries_recomputed.len() as u64)),
                ("summary_cache_hits", Value::int(delta.summary_cache_hits as u64)),
                ("files_reparsed", Value::int(delta.files_reparsed as u64)),
                ("rows_changed", Value::int(delta.rows_changed as u64)),
            ]);
            // Group commit: durable now (first commit, or window elapsed)
            // or within one debounce window via the idle flush / drain.
            shard.note_write(&req.project);
            Ok(result)
        }
        Op::Lint => {
            let Some(session) = shard.sessions.get(&req.project) else {
                return Err((
                    ErrorKind::BadRequest,
                    format!("lint: unknown project `{}` (analyze first)", req.project),
                ));
            };
            let analysis = session
                .analysis()
                .ok_or_else(|| {
                    (
                        ErrorKind::BadRequest,
                        format!("lint: project `{}` has no analysis yet", req.project),
                    )
                })?;
            let report = lint::run(analysis, &lint::LintOptions { threads: 1 });
            Ok(obj([
                ("definite", Value::int(report.definite_count() as u64)),
                ("possible", Value::int(report.possible_count() as u64)),
                ("degraded", Value::Bool(!report.degradations.is_empty())),
                (
                    "findings",
                    Value::Arr(
                        report
                            .findings
                            .iter()
                            .map(|f| {
                                obj([
                                    ("rule", Value::str(f.rule.id())),
                                    ("severity", Value::str(f.severity.name())),
                                    ("file", Value::str(&f.file)),
                                    ("line", Value::int(u64::from(f.line))),
                                    ("proc", Value::str(&f.proc)),
                                    ("array", Value::str(&f.array)),
                                    ("message", Value::str(&f.message)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        Op::QueryRgn => {
            let Some(session) = shard.sessions.get(&req.project) else {
                return Err((
                    ErrorKind::BadRequest,
                    format!("query-rgn: unknown project `{}`", req.project),
                ));
            };
            let analysis = session.analysis().ok_or_else(|| {
                (
                    ErrorKind::BadRequest,
                    format!("query-rgn: project `{}` has no analysis yet", req.project),
                )
            })?;
            Ok(obj([("rgn", Value::str(araa::rgn::write_rgn(&analysis.rows)))]))
        }
        // Handled inline by the connection thread; reaching a worker is a
        // routing bug.
        Op::Stats | Op::Shutdown => {
            Err((ErrorKind::Internal, "control op routed to worker".to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_stable_and_in_range() {
        for w in 1..8 {
            for p in ["default", "alpha", "a/b/c", "x"] {
                let s = shard_of(p, w);
                assert!(s < w);
                assert_eq!(s, shard_of(p, w), "deterministic");
            }
        }
    }

    #[test]
    fn project_dirs_are_filesystem_safe() {
        let root = Path::new("/tmp/araa");
        let d = project_dir(root, "weird/../name with spaces");
        let leaf = d.file_name().unwrap_or_default().to_string_lossy().into_owned();
        assert!(leaf.starts_with('p') && leaf.len() == 17, "got {leaf}");
        assert!(!leaf.contains('/') && !leaf.contains(' '));
    }

    #[test]
    fn scan_recovers_marker_dirs_only() {
        let root = std::env::temp_dir().join(format!("araa_scan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let a = project_dir(&root, "proj-a");
        std::fs::create_dir_all(&a).unwrap();
        std::fs::write(a.join("project.name"), "proj-a\n").unwrap();
        std::fs::create_dir_all(root.join("unrelated")).unwrap();
        assert_eq!(scan_projects(&root), vec!["proj-a".to_string()]);
        std::fs::remove_dir_all(&root).ok();
    }
}
