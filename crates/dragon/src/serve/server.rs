//! The `dragon serve` daemon: warm analysis sessions behind a Unix socket.
//!
//! # Architecture
//!
//! ```text
//!            accept loop (nonblocking, polls SHUTDOWN)
//!                 │ one thread per connection (capped; excess shed)
//!                 ▼
//!   connection threads ──try_send──▶ worker 0..N (bounded queues)
//!     │ bounded frame reads            │ each owns its shard of
//!     │ stats/health/shutdown inline   │ project → AnalysisSession
//!     │ full queue ⇒ `overloaded`      ▼
//!     ▼ open circuit ⇒ `circuit-open`  deadline + memory-budget scope
//!   one response line per request      + catch_unwind per request
//!                 ▲
//!                 │ supervisor thread: heartbeats, wedged-worker
//!                 └ replacement, per-project circuit breaker
//! ```
//!
//! Sessions are sharded by project-name hash, so a project's requests are
//! serialized on one worker — no session locking, no cross-request races —
//! while distinct projects proceed in parallel.
//!
//! # Robustness invariants
//!
//! - **Bounded worst case**: every request runs under a deadline token
//!   *and* (when configured) a memory budget, both observed by the budget
//!   checkpoints; stuck or allocation-hungry work degrades, it never
//!   wedges a worker past its deadline or the process past its memory.
//! - **Bounded input**: a request frame larger than `max_frame_bytes`
//!   is discarded as it streams in (never fully buffered) and answered
//!   with `frame-too-large`; the connection stays usable. A partial frame
//!   that stalls longer than `io_timeout_ms` (slow-loris) is answered and
//!   the connection closed. Parsed JSON is further capped by
//!   [`support::json::ParseLimits`] on depth and size.
//! - **Blast-radius one project**: a panicking handler is contained by
//!   `catch_unwind`; the poisoned session is dropped (rewarmed from disk on
//!   the project's next request) and every other session is untouched.
//!   Repeated failures from one project open its circuit breaker, so it
//!   cannot monopolize workers — requests get `circuit-open` with a retry
//!   hint until a half-open probe succeeds.
//! - **Overload is a response, not a drop**: a full worker queue yields a
//!   structured `overloaded` error with a retry hint, and a connection
//!   beyond `max_connections` gets the same one-line answer before the
//!   socket closes; connections are never silently dropped as
//!   back-pressure.
//! - **Self-healing workers**: a supervisor thread watches per-worker
//!   heartbeats. A worker busy past its job's deadline plus the grace
//!   window is declared wedged: its generation is bumped (if the stale
//!   thread ever returns it exits without persisting) and a replacement
//!   thread takes over the same queue. The abandoned request's client
//!   gets a structured `deadline-expired` error.
//! - **Durable with a bounded window**: writes persist through the
//!   store's atomic commit path under a group-commit policy — inline on a
//!   project's first commit and then at most once per debounce window on
//!   the request path, with idle workers flushing early and drain
//!   flushing everything. A crash loses at most the last window's delta.
//! - **Recovery is the startup path**: the daemon scans its cache root,
//!   takes over stale `DirLock`s, skips quarantined entries, and warms
//!   every discoverable session before accepting connections.
//!
//! With `ARAA_SERVE_CHAOS_ABORT=1` an injected-fault panic aborts the
//! process *before unwinding* — a faithful crash at exactly the armed
//! faultpoint, used by the chaos tests to prove the recovery path.

use super::metrics::{LogEntry, Outcome, ServeMetrics, SnapshotCtx};
use super::proto::{self, ErrorKind, Op, Request};
use super::supervisor::{CircuitDecision, Supervisor};
use araa::{AnalysisOptions, AnalysisSession};
use frontend::SourceFile;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use support::deadline::{self, DeadlineToken};
use support::hash::fnv1a;
use support::json::{obj, Value};
use support::memory::{self, MemoryBudget};
use support::obs::{self, ClockKind, Counter, Gauge, SpanEvent};
use whirl::Lang;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Root directory for per-project session stores; `None` serves from
    /// memory only (no persistence, no recovery).
    pub cache_root: Option<PathBuf>,
    /// Worker threads (session shards).
    pub workers: usize,
    /// Bounded queue depth per worker; beyond it requests are shed.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: u64,
    /// Group-commit window: after a write, a session persists on the
    /// request path at most once per this many milliseconds (an idle
    /// worker flushes sooner, and drain always flushes everything). `0`
    /// means write-through: every successful analyze persists inline.
    pub persist_debounce_ms: u64,
    /// Per-request memory budget (mebibytes of allocation churn) applied
    /// to requests that do not carry their own `mem_budget_mb`; `None`
    /// means unlimited. Exhaustion degrades the request's analysis
    /// conservatively — it never kills the request or the daemon.
    pub mem_budget_mb: Option<u64>,
    /// Largest accepted request frame, bytes. Oversized frames are
    /// discarded as they stream in and answered with `frame-too-large`.
    pub max_frame_bytes: usize,
    /// Concurrent-connection cap; a connection beyond it receives one
    /// `overloaded` response line and is closed.
    pub max_connections: usize,
    /// How long a *partial* request frame may stall before the connection
    /// is treated as a slow-loris and closed. Idle connections between
    /// frames are unaffected.
    pub io_timeout_ms: u64,
    /// Heartbeat grace: a worker busy past `deadline + grace` is declared
    /// wedged and replaced by the supervisor.
    pub heartbeat_grace_ms: u64,
    /// Consecutive failures (panics, memory exhaustions, wedges) that open
    /// a project's circuit breaker.
    pub circuit_threshold: u32,
    /// How long an open circuit rejects before admitting a half-open probe.
    pub circuit_cooldown_ms: u64,
    /// Period of the metrics snapshot thread, milliseconds; `0` disables
    /// it. Takes effect only together with `metrics_snapshot` — the
    /// daemon never invents an output path (no working-tree litter).
    pub metrics_interval_ms: u64,
    /// File the periodic metrics snapshot is atomically written to,
    /// sealed with the canonical `#checksum` trailer.
    pub metrics_snapshot: Option<PathBuf>,
    /// Requests at least this slow (milliseconds; raw clock ticks under
    /// `ARAA_OBS_CLOCK=logical`) have their full span tree captured for
    /// `profile format:"collapsed"`. `0` disables capture.
    pub slow_threshold_ms: u64,
    /// Ring-buffer request-log capacity (`query-log` window).
    pub log_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: PathBuf::from("dragon.sock"),
            cache_root: None,
            workers: 2,
            queue_depth: 64,
            default_deadline_ms: 30_000,
            persist_debounce_ms: 500,
            mem_budget_mb: None,
            max_frame_bytes: 4 << 20,
            max_connections: 256,
            io_timeout_ms: 10_000,
            heartbeat_grace_ms: 2_000,
            circuit_threshold: 3,
            circuit_cooldown_ms: 2_000,
            metrics_interval_ms: 0,
            metrics_snapshot: None,
            slow_threshold_ms: 500,
            log_capacity: 1024,
        }
    }
}

/// Retry hint attached to `overloaded` responses.
const RETRY_AFTER_MS: u64 = 100;
/// Hard ceiling on client-requested deadlines (a zero or huge deadline is
/// clamped into sanity).
const MAX_DEADLINE_MS: u64 = 10 * 60 * 1000;
/// How long the drain phase waits for in-flight connections.
const DRAIN_WAIT: Duration = Duration::from_secs(20);
/// How long an idle worker waits for a job before flushing dirty
/// sessions to disk. Bounds the crash-loss window of a quiescent daemon
/// to roughly `persist_debounce_ms + IDLE_FLUSH`.
const IDLE_FLUSH: Duration = Duration::from_millis(200);
/// Supervisor poll tick: the detection latency floor for wedged workers.
const SUPERVISOR_POLL: Duration = Duration::from_millis(100);
/// Response writes slower than this mean the peer stopped reading; the
/// connection is abandoned rather than blocking its thread forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);
/// Slack the dispatcher adds on top of `deadline + 2 * grace` before
/// abandoning a queued request as `deadline-expired` — covers queue wait
/// and supervisor detection latency for typical configurations.
const DISPATCH_SLACK_MS: u64 = 1_000;

/// Daemon-wide counters, shared by connection threads and workers and
/// reported by the `stats` op.
#[derive(Debug, Default)]
struct ServerStats {
    requests: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    panics: AtomicU64,
    sessions: AtomicU64,
    queued: AtomicU64,
    frame_too_large: AtomicU64,
    conn_shed: AtomicU64,
    circuit_open: AtomicU64,
    mem_exhausted: AtomicU64,
}

impl ServerStats {
    fn snapshot_json(&self, workers: usize, queue_depth: usize) -> Value {
        obj([
            ("requests", Value::int(self.requests.load(Ordering::Relaxed))),
            ("shed", Value::int(self.shed.load(Ordering::Relaxed))),
            (
                "deadline_expired",
                Value::int(self.deadline_expired.load(Ordering::Relaxed)),
            ),
            ("panics", Value::int(self.panics.load(Ordering::Relaxed))),
            ("sessions", Value::int(self.sessions.load(Ordering::Relaxed))),
            ("queued", Value::int(self.queued.load(Ordering::Relaxed))),
            (
                "frame_too_large",
                Value::int(self.frame_too_large.load(Ordering::Relaxed)),
            ),
            ("conn_shed", Value::int(self.conn_shed.load(Ordering::Relaxed))),
            (
                "circuit_open",
                Value::int(self.circuit_open.load(Ordering::Relaxed)),
            ),
            (
                "mem_exhausted",
                Value::int(self.mem_exhausted.load(Ordering::Relaxed)),
            ),
            ("workers", Value::int(workers as u64)),
            ("queue_depth", Value::int(queue_depth as u64)),
        ])
    }
}

/// Set by SIGTERM/SIGINT (and the `shutdown` op); polled by the accept
/// loop. Process-global because signal handlers are.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

fn install_signal_handlers() {
    // std links libc; `signal` is sufficient for a single flag-set handler
    // (async-signal-safe: one relaxed atomic store).
    extern "C" fn on_signal(_sig: std::os::raw::c_int) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }
    unsafe extern "C" {
        fn signal(
            signum: std::os::raw::c_int,
            handler: extern "C" fn(std::os::raw::c_int),
        ) -> usize;
    }
    const SIGINT: std::os::raw::c_int = 2;
    const SIGTERM: std::os::raw::c_int = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Under `ARAA_SERVE_CHAOS_ABORT=1`, die *at* an injected fault instead of
/// unwinding into the worker's `catch_unwind` — no `Drop`s run, so lock
/// files and temp litter survive exactly as in a real crash.
fn install_chaos_abort_hook() {
    if std::env::var("ARAA_SERVE_CHAOS_ABORT").as_deref() != Ok("1") {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.starts_with("fault injected:") {
            std::process::abort();
        }
        prev(info);
    }));
}

/// One queued unit of work: the request plus the channel its response goes
/// back on. The worker *always* sends exactly one response (panics are
/// converted), so the connection thread can block on `recv_timeout` with a
/// generous allowance — the timeout only fires for wedged workers.
struct Job {
    req: Request,
    /// Trace id minted (or accepted) at dispatch, echoed in the response.
    trace: String,
    /// Dispatch-time timestamp (metrics clock units), so recorded latency
    /// covers queue wait as well as service time.
    start_units: u64,
    resp_tx: SyncSender<String>,
}

/// Daemon-level gauges for metrics renders, read wherever a snapshot is
/// taken (dispatch or the periodic snapshot thread).
fn snapshot_ctx(
    stats: &ServerStats,
    sup: &Supervisor,
    started: Instant,
    workers: usize,
) -> SnapshotCtx {
    SnapshotCtx {
        uptime_ms: started.elapsed().as_millis() as u64,
        workers: workers as u64,
        sessions: stats.sessions.load(Ordering::Relaxed),
        queue_depth: stats.queued.load(Ordering::Relaxed),
        open_circuits: sup.open_circuits().len() as u64,
        mem_high_water_bytes: sup.mem_high_water_bytes(),
    }
}

/// Renders the JSON snapshot, seals it with the `#checksum` trailer, and
/// atomically replaces `path` (readers never observe a torn file).
fn write_metrics_snapshot(
    metrics: &ServeMetrics,
    ctx: &SnapshotCtx,
    path: &Path,
) -> support::Result<()> {
    let mut doc = metrics.snapshot_json(ctx).render();
    doc.push('\n');
    support::persist::append_text_checksum(&mut doc);
    support::persist::atomic_write(path, doc.as_bytes())
}

fn shard_of(project: &str, workers: usize) -> usize {
    (fnv1a(project.as_bytes()) % workers as u64) as usize
}

/// The deadline a request actually runs under.
fn effective_deadline_ms(req: &Request, opts: &ServeOptions) -> u64 {
    req.deadline_ms.unwrap_or(opts.default_deadline_ms).clamp(1, MAX_DEADLINE_MS)
}

/// Stable on-disk directory for a project under the cache root. The hash
/// keeps arbitrary project names filesystem-safe; `project.name` inside
/// records the original for recovery scans.
fn project_dir(root: &Path, project: &str) -> PathBuf {
    root.join(format!("p{:016x}", fnv1a(project.as_bytes())))
}

/// Discovers projects persisted under `root` (directories carrying a
/// `project.name` marker) for startup recovery.
fn scan_projects(root: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(root) else { return Vec::new() };
    let mut found = Vec::new();
    for entry in entries.flatten() {
        let marker = entry.path().join("project.name");
        if let Ok(name) = std::fs::read_to_string(&marker) {
            let name = name.trim().to_string();
            if !name.is_empty() {
                found.push(name);
            }
        }
    }
    found.sort();
    found
}

/// Shared handles to the current worker thread of every slot. The
/// supervisor swaps a slot's handle when it replaces a wedged worker; the
/// old handle is dropped (detaching the stale thread — it may never
/// return, and nothing must ever wait on it).
type WorkerHandles = Arc<Mutex<Vec<Option<JoinHandle<()>>>>>;

fn lock_handles(handles: &WorkerHandles) -> std::sync::MutexGuard<'_, Vec<Option<JoinHandle<()>>>> {
    handles.lock().unwrap_or_else(|p| p.into_inner())
}

/// Runs the daemon until a graceful shutdown completes. Blocks the calling
/// thread; returns once every session has drained and persisted.
pub fn run(opts: ServeOptions) -> support::Result<()> {
    SHUTDOWN.store(false, Ordering::Relaxed);
    install_signal_handlers();
    install_chaos_abort_hook();
    let workers = opts.workers.max(1);
    let queue_depth = opts.queue_depth.max(1);
    let started = Instant::now();
    let stats = Arc::new(ServerStats::default());
    // The registry reads the same clock switch as `support::obs`, so
    // `ARAA_OBS_CLOCK=logical` makes serve metrics byte-deterministic too.
    let clock = if std::env::var("ARAA_OBS_CLOCK").as_deref() == Ok("logical") {
        ClockKind::Logical
    } else {
        ClockKind::Monotonic
    };
    let metrics = ServeMetrics::new(clock, opts.log_capacity, opts.slow_threshold_ms);
    let supervisor = Arc::new(Supervisor::new(
        workers,
        opts.heartbeat_grace_ms,
        opts.circuit_threshold,
        opts.circuit_cooldown_ms,
    ));

    // Recovery scan: every persisted project warms before we listen, so
    // the first post-crash request is already served from recovered state.
    let mut initial: Vec<Vec<String>> = vec![Vec::new(); workers];
    if let Some(root) = &opts.cache_root {
        std::fs::create_dir_all(root)
            .map_err(|e| support::Error::io(format!("creating {}", root.display()), e))?;
        for project in scan_projects(root) {
            let shard = shard_of(&project, workers);
            initial[shard].push(project);
        }
    }

    let listener = bind_socket(&opts.socket)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| support::Error::io("socket set_nonblocking".to_string(), e))?;

    // Workers: each owns its shard's sessions. The queue receiver is
    // shared through a mutex so a replacement worker can take over a
    // wedged predecessor's queue without losing queued jobs.
    let mut senders: Vec<SyncSender<Job>> = Vec::with_capacity(workers);
    let mut shared_rxs: Vec<Arc<Mutex<Receiver<Job>>>> = Vec::with_capacity(workers);
    let handles: WorkerHandles = Arc::new(Mutex::new(Vec::with_capacity(workers)));
    let obs_ctx = obs::current();
    for (idx, projects) in initial.into_iter().enumerate() {
        let (tx, rx) = sync_channel::<Job>(queue_depth);
        senders.push(tx);
        let rx = Arc::new(Mutex::new(rx));
        shared_rxs.push(Arc::clone(&rx));
        let opts = opts.clone();
        let stats = Arc::clone(&stats);
        let sup = Arc::clone(&supervisor);
        let obs_ctx = obs_ctx.clone();
        let metrics = Arc::clone(&metrics);
        let handle = std::thread::Builder::new()
            .name(format!("serve-worker-{idx}"))
            .spawn(move || {
                let _obs = obs_ctx.map(obs::attach);
                worker_main(&rx, idx, 0, &sup, &opts, &stats, &metrics, projects);
            })
            .map_err(|e| support::Error::io("spawning worker".to_string(), e))?;
        lock_handles(&handles).push(Some(handle));
    }

    // Supervisor: replaces wedged workers until told to stop (after the
    // final worker join, so a worker that wedges during drain still gets
    // replaced — its replacement drains the closed queue and exits).
    let sup_stop = Arc::new(AtomicBool::new(false));
    let sup_handle = {
        let sup = Arc::clone(&supervisor);
        let stop = Arc::clone(&sup_stop);
        let handles = Arc::clone(&handles);
        let shared_rxs = shared_rxs.clone();
        let stats = Arc::clone(&stats);
        let opts = opts.clone();
        let obs_ctx = obs::current();
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("serve-supervisor".to_string())
            .spawn(move || {
                let _obs = obs_ctx.map(obs::attach);
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(SUPERVISOR_POLL);
                    for (idx, worker_rx) in shared_rxs.iter().enumerate() {
                        if !sup.wedged(idx) {
                            continue;
                        }
                        let generation = sup.declare_wedged(idx);
                        let rx = Arc::clone(worker_rx);
                        let sup = Arc::clone(&sup);
                        let stats = Arc::clone(&stats);
                        let opts = opts.clone();
                        let metrics = Arc::clone(&metrics);
                        let spawned = std::thread::Builder::new()
                            .name(format!("serve-worker-{idx}-g{generation}"))
                            .spawn(move || {
                                worker_main(
                                    &rx,
                                    idx,
                                    generation,
                                    &sup,
                                    &opts,
                                    &stats,
                                    &metrics,
                                    Vec::new(),
                                );
                            });
                        if let Ok(handle) = spawned {
                            // Dropping the old handle detaches the wedged
                            // thread; its sessions are orphaned (evicted in
                            // effect) and rewarm from disk on next use.
                            lock_handles(&handles)[idx] = Some(handle);
                        }
                    }
                }
            })
            .map_err(|e| support::Error::io("spawning supervisor".to_string(), e))?
    };

    // Periodic metrics snapshots: an off-request-path thread writing the
    // sealed JSON snapshot atomically. Requires both the interval and the
    // path — the daemon never invents an output location.
    let snap_stop = Arc::new(AtomicBool::new(false));
    let snap_handle = match (&opts.metrics_snapshot, opts.metrics_interval_ms) {
        (Some(path), interval) if interval > 0 => {
            let path = path.clone();
            let metrics = Arc::clone(&metrics);
            let stats = Arc::clone(&stats);
            let sup = Arc::clone(&supervisor);
            let stop = Arc::clone(&snap_stop);
            std::thread::Builder::new()
                .name("serve-metrics-snapshot".to_string())
                .spawn(move || {
                    let tick = Duration::from_millis(50);
                    let mut elapsed = Duration::ZERO;
                    let period = Duration::from_millis(interval);
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(tick);
                        elapsed += tick;
                        if elapsed >= period {
                            elapsed = Duration::ZERO;
                            let ctx = snapshot_ctx(&stats, &sup, started, workers);
                            let _ = write_metrics_snapshot(&metrics, &ctx, &path);
                        }
                    }
                })
                .ok()
        }
        _ => None,
    };

    // Accept loop: nonblocking so SIGTERM is observed within one poll tick.
    let active_conns = Arc::new(AtomicUsize::new(0));
    let max_connections = opts.max_connections.max(1);
    loop {
        if SHUTDOWN.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if active_conns.load(Ordering::Relaxed) >= max_connections {
                    stats.conn_shed.fetch_add(1, Ordering::Relaxed);
                    obs::incr(Counter::ServeConnShed);
                    shed_connection(stream);
                    continue;
                }
                let senders = senders.clone();
                let stats = Arc::clone(&stats);
                let sup = Arc::clone(&supervisor);
                let active = Arc::clone(&active_conns);
                let opts = opts.clone();
                let obs_ctx = obs::current();
                let metrics = Arc::clone(&metrics);
                active.fetch_add(1, Ordering::Relaxed);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        let _obs = obs_ctx.map(obs::attach);
                        handle_connection(stream, &senders, &stats, &opts, &sup, &metrics, started);
                        active.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    active_conns.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // The poll tick is the latency floor for fresh connections
                // (one-shot CLI clients pay it on every request), so it is
                // kept short; a few kHz of empty accept() is negligible CPU.
                std::thread::sleep(Duration::from_micros(250));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }

    // Drain: let in-flight connections finish (their requests are deadline
    // bounded), then close the queues so workers persist and exit.
    let drain_deadline = Instant::now() + DRAIN_WAIT;
    while active_conns.load(Ordering::Relaxed) > 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(senders);
    // Wait for the *current* worker of every slot; a worker wedged at this
    // point is replaced by the still-running supervisor, and its
    // replacement exits promptly on the closed queue. Never block on a
    // thread that may not return: join only finished handles.
    while Instant::now() < drain_deadline {
        let all_done =
            lock_handles(&handles).iter().all(|h| h.as_ref().is_none_or(JoinHandle::is_finished));
        if all_done {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    {
        let mut slots = lock_handles(&handles);
        for slot in slots.iter_mut() {
            if slot.as_ref().is_some_and(JoinHandle::is_finished) {
                if let Some(handle) = slot.take() {
                    let _ = handle.join();
                }
            }
        }
    }
    sup_stop.store(true, Ordering::Relaxed);
    let _ = sup_handle.join();
    snap_stop.store(true, Ordering::Relaxed);
    if let Some(h) = snap_handle {
        let _ = h.join();
    }
    // Final snapshot: the drained daemon's last word, covering requests
    // that landed after the last periodic write.
    if let Some(path) = &opts.metrics_snapshot {
        if opts.metrics_interval_ms > 0 {
            let ctx = snapshot_ctx(&stats, &supervisor, started, workers);
            let _ = write_metrics_snapshot(&metrics, &ctx, path);
        }
    }
    let _ = std::fs::remove_file(&opts.socket);
    Ok(())
}

/// Binds the listening socket, reclaiming a dead daemon's stale socket
/// file (connect refused ⇒ no live listener behind it).
fn bind_socket(path: &Path) -> support::Result<UnixListener> {
    if path.exists() {
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(support::Error::Analysis(format!(
                    "{} already has a live daemon listening",
                    path.display()
                )));
            }
            Err(_) => {
                let _ = std::fs::remove_file(path);
            }
        }
    }
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| support::Error::io(format!("creating {}", parent.display()), e))?;
    }
    UnixListener::bind(path)
        .map_err(|e| support::Error::io(format!("binding {}", path.display()), e))
}

/// Answers a connection shed by the concurrency cap: one `overloaded`
/// line, best effort, then close. The client sees admission control, not
/// a mystery hangup.
fn shed_connection(stream: UnixStream) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let resp = proto::err_response(
        0,
        None,
        "",
        ErrorKind::Overloaded,
        "connection limit reached",
        Some(RETRY_AFTER_MS),
    );
    let _ = stream.write_all(resp.as_bytes()).and_then(|()| stream.write_all(b"\n"));
}

/// How often an idle connection wakes up to observe SHUTDOWN.
const CONN_POLL: Duration = Duration::from_millis(200);

/// One framing outcome from [`read_frame`].
enum Frame {
    /// A complete line (newline stripped); the flag is true when EOF
    /// followed it (a final unterminated line is still served).
    Line(String, bool),
    /// The frame exceeded the cap and was discarded up to its newline (or
    /// EOF); the connection is still usable.
    TooLarge,
    /// A partial frame stalled past the io timeout: slow-loris suspect.
    Stalled,
    /// EOF with nothing buffered, an unrecoverable read error, or
    /// shutdown observed.
    Closed,
}

/// Reads one newline-delimited frame with a hard size cap. Bytes beyond
/// the cap are consumed and dropped (never buffered), so an adversarial
/// client cannot balloon daemon memory past `max_bytes` + one `BufReader`
/// block per connection, and the stream stays in sync for the next frame.
fn read_frame(
    reader: &mut BufReader<UnixStream>,
    max_bytes: usize,
    io_timeout: Duration,
) -> Frame {
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut partial_since: Option<Instant> = None;
    loop {
        let mut consumed = 0usize;
        let mut complete = false;
        match reader.fill_buf() {
            Ok([]) => {
                // EOF: serve a final unterminated line if there is one.
                return if discarding {
                    Frame::TooLarge
                } else if buf.is_empty() {
                    Frame::Closed
                } else {
                    Frame::Line(String::from_utf8_lossy(&buf).into_owned(), true)
                };
            }
            Ok(chunk) => {
                if partial_since.is_none() {
                    partial_since = Some(Instant::now());
                }
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        if !discarding {
                            if buf.len() + nl <= max_bytes {
                                buf.extend_from_slice(&chunk[..nl]);
                            } else {
                                discarding = true;
                                buf = Vec::new();
                            }
                        }
                        consumed = nl + 1;
                        complete = true;
                    }
                    None => {
                        if !discarding {
                            if buf.len() + chunk.len() <= max_bytes {
                                buf.extend_from_slice(chunk);
                            } else {
                                discarding = true;
                                buf = Vec::new();
                            }
                        }
                        consumed = chunk.len();
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if SHUTDOWN.load(Ordering::Relaxed) {
                    return Frame::Closed;
                }
                if let Some(t) = partial_since {
                    if t.elapsed() >= io_timeout {
                        return Frame::Stalled;
                    }
                }
            }
            Err(_) => return Frame::Closed,
        }
        reader.consume(consumed);
        if complete {
            return if discarding {
                Frame::TooLarge
            } else {
                Frame::Line(String::from_utf8_lossy(&buf).into_owned(), false)
            };
        }
    }
}

/// Serves one connection: one response line per request line, in order.
///
/// Reads poll with a short timeout so a connection a client holds open but
/// idle still observes SHUTDOWN and exits — otherwise its clone of the
/// worker senders would keep the worker queues alive and block the drain
/// forever. Frame reads are size-capped and stall-bounded; see
/// [`read_frame`].
fn handle_connection(
    stream: UnixStream,
    senders: &[SyncSender<Job>],
    stats: &ServerStats,
    opts: &ServeOptions,
    sup: &Supervisor,
    metrics: &ServeMetrics,
    started: Instant,
) {
    if stream.set_read_timeout(Some(CONN_POLL)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(reader_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(reader_half);
    let mut writer = stream;
    let max_frame = opts.max_frame_bytes.max(1024);
    let io_timeout = Duration::from_millis(opts.io_timeout_ms.max(1));
    let respond = |writer: &mut UnixStream, response: &str| {
        writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_ok()
    };
    loop {
        match read_frame(&mut reader, max_frame, io_timeout) {
            Frame::Line(line, at_eof) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let response =
                        dispatch(trimmed, senders, stats, opts, sup, metrics, started);
                    if !respond(&mut writer, &response) {
                        return;
                    }
                }
                if at_eof {
                    return;
                }
            }
            Frame::TooLarge => {
                stats.frame_too_large.fetch_add(1, Ordering::Relaxed);
                obs::incr(Counter::ServeFrameTooLarge);
                metrics.record_invalid();
                let response = proto::err_response(
                    0,
                    None,
                    "",
                    ErrorKind::FrameTooLarge,
                    &format!(
                        "request frame exceeds the {max_frame}-byte cap; frame discarded"
                    ),
                    None,
                );
                if !respond(&mut writer, &response) {
                    return;
                }
            }
            Frame::Stalled => {
                let response = proto::err_response(
                    0,
                    None,
                    "",
                    ErrorKind::BadRequest,
                    &format!(
                        "partial request frame stalled past {}ms; closing connection",
                        opts.io_timeout_ms
                    ),
                    None,
                );
                let _ = respond(&mut writer, &response);
                return;
            }
            Frame::Closed => return,
        }
    }
}

/// Counts and logs a request that terminated at the dispatch layer (no
/// worker involved) and returns the response unchanged.
#[allow(clippy::too_many_arguments)]
fn dispatch_done(
    metrics: &ServeMetrics,
    op: Op,
    project: &str,
    trace: &str,
    outcome: Outcome,
    start_units: u64,
    response: String,
) -> String {
    let end = metrics.now_units();
    metrics.record_outcome(op, outcome, end.saturating_sub(start_units).max(1));
    metrics.push_log(LogEntry {
        seq: 0,
        trace: trace.to_string(),
        op: op.name(),
        project: project.to_string(),
        worker: None,
        latency_units: end.saturating_sub(start_units).max(1),
        outcome,
        degradations: Vec::new(),
        mem_bytes: 0,
        end_units: end,
    });
    response
}

/// Routes one request line to its response line.
fn dispatch(
    line: &str,
    senders: &[SyncSender<Job>],
    stats: &ServerStats,
    opts: &ServeOptions,
    sup: &Supervisor,
    metrics: &ServeMetrics,
    started: Instant,
) -> String {
    let start_units = metrics.now_units();
    let req = match proto::parse_request(line) {
        Ok(r) => r,
        Err((id, msg)) => {
            metrics.record_invalid();
            // Best-effort trace echo: a structurally-valid line that fails
            // request validation still carries the client's trace id, and
            // the client deserves it back on the error.
            let salvaged = Value::parse(line)
                .ok()
                .and_then(|v| {
                    v.get("trace").and_then(Value::as_str).map(str::to_string)
                })
                .filter(|t| {
                    !t.is_empty() && t.len() <= 64 && !t.chars().any(|c| (c as u32) < 0x20)
                });
            let trace = metrics.mint_trace(salvaged.as_deref());
            let end = metrics.now_units();
            metrics.push_log(LogEntry {
                seq: 0,
                trace: trace.clone(),
                op: "?",
                project: String::new(),
                worker: None,
                latency_units: end.saturating_sub(start_units).max(1),
                outcome: Outcome::BadRequest,
                degradations: Vec::new(),
                mem_bytes: 0,
                end_units: end,
            });
            return proto::err_response(id, None, &trace, ErrorKind::BadRequest, &msg, None);
        }
    };
    stats.requests.fetch_add(1, Ordering::Relaxed);
    obs::incr(Counter::ServeRequests);
    let trace = metrics.mint_trace(req.trace.as_deref());
    let req_op = req.op;
    let done = move |outcome: Outcome, trace: &str, project: &str, response: String| {
        dispatch_done(metrics, req_op, project, trace, outcome, start_units, response)
    };
    match req.op {
        // Control-plane ops answer inline: they must keep working even
        // when every worker queue is full or every worker is wedged.
        Op::Stats => {
            let resp = proto::ok_response(
                req.id,
                Op::Stats,
                &trace,
                stats.snapshot_json(senders.len(), opts.queue_depth.max(1)),
            );
            done(Outcome::Ok, &trace, &req.project, resp)
        }
        Op::Health => {
            let mut health = sup.health_json(opts.mem_budget_mb);
            if let Value::Obj(map) = &mut health {
                map.insert(
                    "sessions".to_string(),
                    Value::int(stats.sessions.load(Ordering::Relaxed)),
                );
                map.insert(
                    "requests".to_string(),
                    Value::int(stats.requests.load(Ordering::Relaxed)),
                );
            }
            let resp = proto::ok_response(req.id, Op::Health, &trace, health);
            done(Outcome::Ok, &trace, &req.project, resp)
        }
        Op::Metrics => {
            let ctx = snapshot_ctx(stats, sup, started, senders.len());
            let result = match req.format.as_deref() {
                None | Some("json") => metrics.snapshot_json(&ctx),
                Some("prometheus") => obj([
                    ("format", Value::str("prometheus")),
                    ("body", Value::str(metrics.prometheus(&ctx))),
                ]),
                Some(other) => {
                    let resp = proto::err_response(
                        req.id,
                        Some(Op::Metrics),
                        &trace,
                        ErrorKind::BadRequest,
                        &format!("unknown metrics format `{other}` (json|prometheus)"),
                        None,
                    );
                    return done(Outcome::BadRequest, &trace, &req.project, resp);
                }
            };
            let resp = proto::ok_response(req.id, Op::Metrics, &trace, result);
            done(Outcome::Ok, &trace, &req.project, resp)
        }
        Op::QueryLog => {
            let project = req.project_given.then_some(req.project.as_str());
            let mut result = metrics.query_log(project, req.limit.unwrap_or(100));
            if let Value::Obj(map) = &mut result {
                map.insert("slow".to_string(), metrics.slow_traces_json());
            }
            let resp = proto::ok_response(req.id, Op::QueryLog, &trace, result);
            done(Outcome::Ok, &trace, &req.project, resp)
        }
        Op::Profile => {
            let project = req.project_given.then_some(req.project.as_str());
            let result = match req.format.as_deref() {
                None | Some("json") => metrics.profile_json(project, req.top.unwrap_or(10)),
                Some("collapsed") => obj([
                    ("format", Value::str("collapsed")),
                    ("body", Value::str(metrics.collapsed_stacks())),
                ]),
                Some(other) => {
                    let resp = proto::err_response(
                        req.id,
                        Some(Op::Profile),
                        &trace,
                        ErrorKind::BadRequest,
                        &format!("unknown profile format `{other}` (json|collapsed)"),
                        None,
                    );
                    return done(Outcome::BadRequest, &trace, &req.project, resp);
                }
            };
            let resp = proto::ok_response(req.id, Op::Profile, &trace, result);
            done(Outcome::Ok, &trace, &req.project, resp)
        }
        Op::Shutdown => {
            SHUTDOWN.store(true, Ordering::Relaxed);
            let resp = proto::ok_response(
                req.id,
                Op::Shutdown,
                &trace,
                obj([("draining", Value::Bool(true))]),
            );
            done(Outcome::Ok, &trace, &req.project, resp)
        }
        _ if SHUTDOWN.load(Ordering::Relaxed) => {
            let resp = proto::err_response(
                req.id,
                Some(req.op),
                &trace,
                ErrorKind::ShuttingDown,
                "daemon is draining",
                Some(RETRY_AFTER_MS),
            );
            done(Outcome::ShuttingDown, &trace, &req.project, resp)
        }
        _ => {
            if let CircuitDecision::Reject { retry_after_ms } =
                sup.circuit_check(&req.project)
            {
                stats.circuit_open.fetch_add(1, Ordering::Relaxed);
                obs::incr(Counter::ServeCircuitOpen);
                let resp = proto::err_response(
                    req.id,
                    Some(req.op),
                    &trace,
                    ErrorKind::CircuitOpen,
                    &format!(
                        "project `{}` circuit is open after repeated failures",
                        req.project
                    ),
                    Some(retry_after_ms),
                );
                return done(Outcome::CircuitOpen, &trace, &req.project, resp);
            }
            let deadline_ms = effective_deadline_ms(&req, opts);
            let shard = shard_of(&req.project, senders.len());
            let (resp_tx, resp_rx) = sync_channel::<String>(1);
            let (id, op, project) = (req.id, req.op, req.project.clone());
            let job = Job { req, trace: trace.clone(), start_units, resp_tx };
            match senders[shard].try_send(job) {
                Ok(()) => {
                    stats.queued.fetch_add(1, Ordering::Relaxed);
                    obs::set_gauge(Gauge::ServeQueueDepth, stats.queued.load(Ordering::Relaxed));
                    // Generous allowance over the request deadline: it only
                    // fires when the worker wedged somewhere no checkpoint
                    // runs (the supervisor is replacing it) — a cooperative
                    // worker always answers within its deadline.
                    let allowance = deadline_ms
                        .saturating_add(2 * opts.heartbeat_grace_ms)
                        .saturating_add(DISPATCH_SLACK_MS);
                    match resp_rx.recv_timeout(Duration::from_millis(allowance)) {
                        // The worker recorded this request's metrics and
                        // log entry (it knows the outcome and its own
                        // identity); nothing to record here.
                        Ok(resp) => resp,
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                            stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
                            obs::incr(Counter::ServeDeadlineExpired);
                            let resp = proto::err_response(
                                id,
                                Some(op),
                                &trace,
                                ErrorKind::DeadlineExpired,
                                "request abandoned: worker exceeded the deadline and is being replaced",
                                Some(opts.heartbeat_grace_ms),
                            );
                            done(Outcome::Deadline, &trace, &project, resp)
                        }
                        // Worker died (chaos abort in flight): the process
                        // is going down; answer what we can.
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                            let resp = proto::err_response(
                                id,
                                Some(op),
                                &trace,
                                ErrorKind::Internal,
                                "worker terminated mid-request",
                                None,
                            );
                            done(Outcome::Internal, &trace, &project, resp)
                        }
                    }
                }
                Err(TrySendError::Full(_)) => {
                    stats.shed.fetch_add(1, Ordering::Relaxed);
                    obs::incr(Counter::ServeShed);
                    let resp = proto::err_response(
                        id,
                        Some(op),
                        &trace,
                        ErrorKind::Overloaded,
                        "worker queue full",
                        Some(RETRY_AFTER_MS),
                    );
                    done(Outcome::Shed, &trace, &project, resp)
                }
                Err(TrySendError::Disconnected(_)) => {
                    let resp = proto::err_response(
                        id,
                        Some(op),
                        &trace,
                        ErrorKind::Internal,
                        "worker unavailable",
                        None,
                    );
                    done(Outcome::Internal, &trace, &project, resp)
                }
            }
        }
    }
}

/// One shard's session map, warmed from disk where possible.
struct Shard<'a> {
    sessions: BTreeMap<String, AnalysisSession>,
    /// Projects with committed-but-unpersisted work (group commit).
    dirty: std::collections::BTreeSet<String>,
    /// Wall time of each project's last successful persist.
    last_persist: BTreeMap<String, std::time::Instant>,
    opts: &'a ServeOptions,
    stats: &'a ServerStats,
}

impl Shard<'_> {
    /// Fetches (or creates, warming from disk) the project's session.
    fn session(&mut self, project: &str) -> &mut AnalysisSession {
        if !self.sessions.contains_key(project) {
            let session = match &self.opts.cache_root {
                Some(root) => {
                    let dir = project_dir(root, project);
                    let _ = std::fs::create_dir_all(&dir);
                    let _ = std::fs::write(dir.join("project.name"), project);
                    let mut s =
                        AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir);
                    s.load();
                    s
                }
                None => AnalysisSession::new(AnalysisOptions::default()),
            };
            self.sessions.insert(project.to_string(), session);
            self.stats.sessions.fetch_add(1, Ordering::Relaxed);
            obs::set_gauge(
                Gauge::ServeSessions,
                self.stats.sessions.load(Ordering::Relaxed),
            );
        }
        self.sessions
            .get_mut(project)
            .unwrap_or_else(|| unreachable!("inserted above"))
    }

    /// Drops a poisoned session; the next request rewarms it from its last
    /// persisted (pre-poison) state.
    fn evict(&mut self, project: &str) {
        self.dirty.remove(project);
        self.last_persist.remove(project);
        if self.sessions.remove(project).is_some() {
            self.stats.sessions.fetch_sub(1, Ordering::Relaxed);
            obs::set_gauge(
                Gauge::ServeSessions,
                self.stats.sessions.load(Ordering::Relaxed),
            );
        }
    }

    /// Group commit, request path: the write marks the project dirty and
    /// persists inline only when its debounce window has elapsed (always,
    /// for a never-persisted project — the first commit is the one that
    /// turns an in-memory session into recoverable state). Persist panics
    /// propagate to the caller's `catch_unwind`, exactly like a panic in
    /// the analysis itself.
    fn note_write(&mut self, project: &str) {
        self.dirty.insert(project.to_string());
        let due = match self.last_persist.get(project) {
            Some(t) => {
                t.elapsed() >= Duration::from_millis(self.opts.persist_debounce_ms)
            }
            None => true,
        };
        if due {
            if let Some(session) = self.sessions.get_mut(project) {
                session.persist();
                self.dirty.remove(project);
                self.last_persist
                    .insert(project.to_string(), std::time::Instant::now());
            }
        }
    }

    /// Flushes off the request path (idle tick, drain): persists every
    /// dirty session regardless of its window. There is no request to
    /// answer here, so a persist panic is contained locally — counted,
    /// the session evicted — and the remaining sessions still flush.
    fn flush_dirty(&mut self) {
        let pending: Vec<String> = self.dirty.iter().cloned().collect();
        for project in pending {
            let Some(session) = self.sessions.get_mut(&project) else {
                self.dirty.remove(&project);
                continue;
            };
            if catch_unwind(AssertUnwindSafe(|| session.persist())).is_ok() {
                self.dirty.remove(&project);
                self.last_persist
                    .insert(project.clone(), std::time::Instant::now());
            } else {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                obs::incr(Counter::ServePanics);
                self.evict(&project);
            }
        }
    }
}

/// One worker's life: drain the shared queue, one job at a time, under
/// supervisor heartbeats. `generation` identifies this thread's tenure of
/// the slot; if the supervisor bumps the slot's generation (declaring this
/// thread wedged), the thread exits at its next opportunity *without
/// persisting* — the replacement owns the shard's on-disk state now.
#[allow(clippy::too_many_arguments)]
fn worker_main(
    rx: &Mutex<Receiver<Job>>,
    widx: usize,
    generation: u64,
    sup: &Supervisor,
    opts: &ServeOptions,
    stats: &ServerStats,
    metrics: &ServeMetrics,
    initial_projects: Vec<String>,
) {
    let mut shard = Shard {
        sessions: BTreeMap::new(),
        dirty: std::collections::BTreeSet::new(),
        last_persist: BTreeMap::new(),
        opts,
        stats,
    };
    // Startup recovery: warm every project persisted by a previous
    // incarnation. `session()` takes over stale locks and skips
    // quarantined entries on the way.
    for project in initial_projects {
        let _ = shard.session(&project);
    }
    loop {
        if sup.generation(widx) != generation {
            return;
        }
        sup.beat(widx, generation);
        // The queue lock is held only while *waiting*, never while
        // serving, so a replacement can take the queue the moment this
        // thread is declared wedged mid-request.
        let job = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv_timeout(IDLE_FLUSH)
        };
        match job {
            Ok(job) => {
                stats.queued.fetch_sub(1, Ordering::Relaxed);
                obs::set_gauge(Gauge::ServeQueueDepth, stats.queued.load(Ordering::Relaxed));
                let deadline_ms = effective_deadline_ms(&job.req, opts);
                sup.begin_job(widx, generation, &job.req.project, deadline_ms);
                let served = serve_one(&mut shard, &job.req, &job.trace, sup, metrics);
                if sup.generation(widx) != generation {
                    // Declared wedged while serving: the dispatcher has
                    // already answered `deadline-expired` (and recorded the
                    // request) and a replacement owns the slot. Send
                    // best-effort, then vanish without persisting anything
                    // or double-counting metrics.
                    let _ = job.resp_tx.send(served.response);
                    return;
                }
                sup.end_job(widx, generation);
                if served.failed {
                    sup.record_failure(&job.req.project);
                } else {
                    sup.record_success(&job.req.project);
                }
                // Observability: latency includes queue wait (stamped at
                // dispatch), so histograms reflect what the client saw.
                let end = metrics.now_units();
                let latency = end.saturating_sub(job.start_units).max(1);
                metrics.record_outcome(job.req.op, served.outcome, latency);
                if matches!(job.req.op, Op::Analyze | Op::Reanalyze)
                    && matches!(served.outcome, Outcome::Ok | Outcome::Degraded)
                {
                    metrics.note_analysis(
                        &job.req.project,
                        served.cache_hits,
                        served.cache_recomputes,
                        served.mem_bytes,
                    );
                }
                let sample = metrics.should_sample(&job.req.project);
                let slow = metrics.is_slow(latency);
                if (sample || slow) && !served.events.is_empty() {
                    metrics.record_profile(&job.req.project, &served.events);
                }
                if slow {
                    metrics.record_slow(
                        &job.trace,
                        job.req.op,
                        &job.req.project,
                        latency,
                        served.events,
                    );
                }
                metrics.push_log(LogEntry {
                    seq: 0,
                    trace: job.trace.clone(),
                    op: job.req.op.name(),
                    project: job.req.project.clone(),
                    worker: Some((widx, generation)),
                    latency_units: latency,
                    outcome: served.outcome,
                    degradations: served.degradations,
                    mem_bytes: served.mem_bytes,
                    end_units: end,
                });
                // A dropped receiver (client hung up) is fine; the work is done.
                let _ = job.resp_tx.send(served.response);
            }
            // Idle: nobody is waiting on latency, so close the group-commit
            // window early.
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => shard.flush_dirty(),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    // Channel closed: graceful drain. Persist every session with
    // uncommitted work through the store's atomic commit path.
    shard.flush_dirty();
}

/// What one worker-executed request produced, for both the wire response
/// and the observability plane.
struct Served {
    response: String,
    /// Feeds the project circuit breaker (panic or memory exhaustion).
    failed: bool,
    outcome: Outcome,
    degradations: Vec<String>,
    mem_bytes: u64,
    cache_hits: u64,
    cache_recomputes: u64,
    /// The request's span tree, recorded by a per-request collector.
    events: Vec<SpanEvent>,
}

/// Executes one request under its deadline and memory budget, with panic
/// containment.
fn serve_one(
    shard: &mut Shard<'_>,
    req: &Request,
    trace: &str,
    sup: &Supervisor,
    metrics: &ServeMetrics,
) -> Served {
    let deadline_ms = effective_deadline_ms(req, shard.opts);
    let token = DeadlineToken::after(Duration::from_millis(deadline_ms));
    let _scope = deadline::enter(Arc::clone(&token));
    // Request budget overrides the server default; either bounds this
    // request's allocation churn at the shared budget checkpoints.
    let mem = req.mem_budget_mb.or(shard.opts.mem_budget_mb).map(MemoryBudget::mb);
    let mem_scope = mem.clone().map(memory::enter);
    // Per-request span collector, attached innermost so analysis spans
    // land here; counters fold back into any outer collector afterwards.
    let child = obs::Collector::new(metrics.clock());
    let outcome = {
        let child = Arc::clone(&child);
        catch_unwind(AssertUnwindSafe(|| {
            let _obs = obs::attach(child);
            let _root = obs::span("serve.request");
            handle_request(shard, req)
        }))
    };
    if let Some(parent) = obs::current() {
        child.fold_into(&parent);
    }
    let events = child.events();
    // Leaving the scope flushes the tail allocation delta into the budget,
    // so `charged_bytes` below is the request's full bill.
    drop(mem_scope);
    let expired = token.expired_now();
    if expired {
        shard.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
        obs::incr(Counter::ServeDeadlineExpired);
    }
    let (mem_exhausted, mem_bytes) = match &mem {
        Some(budget) => {
            sup.note_request_mem(budget.charged_bytes());
            obs::add(Counter::MemBytesCharged, budget.charged_bytes());
            if budget.exhausted() {
                shard.stats.mem_exhausted.fetch_add(1, Ordering::Relaxed);
                obs::incr(Counter::ServeMemExhausted);
            }
            (budget.exhausted(), budget.charged_bytes())
        }
        None => (false, 0),
    };
    match outcome {
        Ok(Ok(mut result)) => {
            let degradations: Vec<String> = result
                .get("degradations")
                .and_then(Value::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(|d| d.as_str().map(str::to_string))
                        .take(8)
                        .collect()
                })
                .unwrap_or_default();
            let cache_hits =
                result.get("summary_cache_hits").and_then(Value::as_u64).unwrap_or(0);
            let cache_recomputes =
                result.get("summaries_recomputed").and_then(Value::as_u64).unwrap_or(0);
            let degraded =
                result.get("degraded").and_then(Value::as_bool).unwrap_or(false);
            if let Value::Obj(map) = &mut result {
                map.insert("deadline_expired".to_string(), Value::Bool(expired));
                map.insert("mem_exhausted".to_string(), Value::Bool(mem_exhausted));
            }
            let outcome = if expired {
                Outcome::Deadline
            } else if mem_exhausted {
                Outcome::MemExhausted
            } else if degraded {
                Outcome::Degraded
            } else {
                Outcome::Ok
            };
            Served {
                response: proto::ok_response(req.id, req.op, trace, result),
                failed: mem_exhausted,
                outcome,
                degradations,
                mem_bytes,
                cache_hits,
                cache_recomputes,
                events,
            }
        }
        Ok(Err((kind, msg))) => {
            // Client errors (bad request etc.) are not project failures.
            let outcome = if kind == ErrorKind::BadRequest {
                Outcome::BadRequest
            } else {
                Outcome::Internal
            };
            Served {
                response: proto::err_response(req.id, Some(req.op), trace, kind, &msg, None),
                failed: mem_exhausted,
                outcome,
                degradations: Vec::new(),
                mem_bytes,
                cache_hits: 0,
                cache_recomputes: 0,
                events,
            }
        }
        Err(payload) => {
            // Contained panic: reset this project only; all other sessions
            // (and this worker) keep serving.
            shard.stats.panics.fetch_add(1, Ordering::Relaxed);
            obs::incr(Counter::ServePanics);
            shard.evict(&req.project);
            let msg = ipa::isolate::panic_message(payload.as_ref());
            let resp = proto::err_response(
                req.id,
                Some(req.op),
                trace,
                ErrorKind::Panic,
                &format!("request handler panicked (session reset): {msg}"),
                None,
            );
            Served {
                response: resp,
                failed: true,
                outcome: Outcome::Panic,
                degradations: Vec::new(),
                mem_bytes,
                cache_hits: 0,
                cache_recomputes: 0,
                events,
            }
        }
    }
}

type HandlerResult = Result<Value, (ErrorKind, String)>;

fn handle_request(shard: &mut Shard<'_>, req: &Request) -> HandlerResult {
    // Chaos instrumentation: a per-project panic point (arm
    // `serve::project::<name>:always` to make one project toxic while
    // others stay healthy) and a wedge point that sticks this worker
    // somewhere no checkpoint runs, exercising supervisor replacement.
    support::faultpoint::hit(&format!("serve::project::{}", req.project));
    if support::faultpoint::fires("serve::wedge") {
        loop {
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    match req.op {
        Op::Analyze | Op::Reanalyze => {
            if req.op == Op::Reanalyze && !shard.sessions.contains_key(&req.project) {
                return Err((
                    ErrorKind::BadRequest,
                    format!("reanalyze: unknown project `{}`", req.project),
                ));
            }
            let sources: Vec<SourceFile> = req
                .sources
                .iter()
                .map(|s| {
                    SourceFile::new(
                        &s.name,
                        &s.text,
                        if s.fortran { Lang::Fortran } else { Lang::C },
                    )
                })
                .collect();
            let session = shard.session(&req.project);
            let delta = session
                .update(sources)
                .map_err(|e| (ErrorKind::BadRequest, format!("analysis failed: {e}")))?;
            let analysis = session
                .analysis()
                .ok_or_else(|| (ErrorKind::Internal, "no analysis state".to_string()))?;
            let result = obj([
                ("procedures", Value::int(analysis.program.procedure_count() as u64)),
                ("rows", Value::int(analysis.rows.len() as u64)),
                ("degraded", Value::Bool(!analysis.degradations.is_empty())),
                (
                    "degradations",
                    Value::Arr(
                        analysis
                            .degradations
                            .iter()
                            .map(|d| Value::str(d.to_string()))
                            .collect(),
                    ),
                ),
                ("summaries_recomputed", Value::int(delta.summaries_recomputed.len() as u64)),
                ("summary_cache_hits", Value::int(delta.summary_cache_hits as u64)),
                ("files_reparsed", Value::int(delta.files_reparsed as u64)),
                ("rows_changed", Value::int(delta.rows_changed as u64)),
            ]);
            // Group commit: durable now (first commit, or window elapsed)
            // or within one debounce window via the idle flush / drain.
            shard.note_write(&req.project);
            Ok(result)
        }
        Op::Lint => {
            let Some(session) = shard.sessions.get(&req.project) else {
                return Err((
                    ErrorKind::BadRequest,
                    format!("lint: unknown project `{}` (analyze first)", req.project),
                ));
            };
            let analysis = session
                .analysis()
                .ok_or_else(|| {
                    (
                        ErrorKind::BadRequest,
                        format!("lint: project `{}` has no analysis yet", req.project),
                    )
                })?;
            let report = lint::run(analysis, &lint::LintOptions { threads: 1 });
            Ok(obj([
                ("definite", Value::int(report.definite_count() as u64)),
                ("possible", Value::int(report.possible_count() as u64)),
                ("degraded", Value::Bool(!report.degradations.is_empty())),
                (
                    "findings",
                    Value::Arr(
                        report
                            .findings
                            .iter()
                            .map(|f| {
                                obj([
                                    ("rule", Value::str(f.rule.id())),
                                    ("severity", Value::str(f.severity.name())),
                                    ("file", Value::str(&f.file)),
                                    ("line", Value::int(u64::from(f.line))),
                                    ("proc", Value::str(&f.proc)),
                                    ("array", Value::str(&f.array)),
                                    ("message", Value::str(&f.message)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        Op::QueryRgn => {
            let Some(session) = shard.sessions.get(&req.project) else {
                return Err((
                    ErrorKind::BadRequest,
                    format!("query-rgn: unknown project `{}`", req.project),
                ));
            };
            let analysis = session.analysis().ok_or_else(|| {
                (
                    ErrorKind::BadRequest,
                    format!("query-rgn: project `{}` has no analysis yet", req.project),
                )
            })?;
            Ok(obj([("rgn", Value::str(araa::rgn::write_rgn(&analysis.rows)))]))
        }
        // Handled inline by the connection thread; reaching a worker is a
        // routing bug.
        Op::Stats | Op::Health | Op::Shutdown | Op::Metrics | Op::QueryLog | Op::Profile => {
            Err((ErrorKind::Internal, "control op routed to worker".to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_stable_and_in_range() {
        for w in 1..8 {
            for p in ["default", "alpha", "a/b/c", "x"] {
                let s = shard_of(p, w);
                assert!(s < w);
                assert_eq!(s, shard_of(p, w), "deterministic");
            }
        }
    }

    #[test]
    fn project_dirs_are_filesystem_safe() {
        let root = Path::new("/tmp/araa");
        let d = project_dir(root, "weird/../name with spaces");
        let leaf = d.file_name().unwrap_or_default().to_string_lossy().into_owned();
        assert!(leaf.starts_with('p') && leaf.len() == 17, "got {leaf}");
        assert!(!leaf.contains('/') && !leaf.contains(' '));
    }

    #[test]
    fn scan_recovers_marker_dirs_only() {
        let root = std::env::temp_dir().join(format!("araa_scan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let a = project_dir(&root, "proj-a");
        std::fs::create_dir_all(&a).unwrap();
        std::fs::write(a.join("project.name"), "proj-a\n").unwrap();
        std::fs::create_dir_all(root.join("unrelated")).unwrap();
        assert_eq!(scan_projects(&root), vec!["proj-a".to_string()]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn effective_deadline_clamps() {
        let opts = ServeOptions::default();
        let mut req = proto::parse_request(r#"{"op":"stats"}"#).expect("parse");
        assert_eq!(effective_deadline_ms(&req, &opts), opts.default_deadline_ms);
        req.deadline_ms = Some(0);
        assert_eq!(effective_deadline_ms(&req, &opts), 1, "zero clamps up");
        req.deadline_ms = Some(u64::MAX);
        assert_eq!(effective_deadline_ms(&req, &opts), MAX_DEADLINE_MS, "huge clamps down");
    }
}
