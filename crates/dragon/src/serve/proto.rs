//! The serve wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response per line, over a Unix stream socket.
//! Every request gets exactly one response — including malformed ones
//! (`bad-request`), shed ones (`overloaded` with a `retry_after_ms` hint),
//! and ones whose handler panicked (`panic`). Connections are never
//! dropped as a flow-control signal.
//!
//! Request shape:
//!
//! ```json
//! {"id":1,"op":"analyze","project":"demo","deadline_ms":2000,
//!  "sources":[{"name":"a.f","text":"...","fortran":true}]}
//! ```
//!
//! Responses echo `id` and `op` and carry either `"ok":true` + `result` or
//! `"ok":false` + `error:{kind,message[,retry_after_ms]}`.

use support::json::{obj, Value};

/// Protocol operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Analyze the given sources under `project` (creates the session).
    Analyze,
    /// Like `analyze`, but requires the project session to already exist —
    /// the edit-loop fast path (a typo'd project name errors instead of
    /// silently cold-starting a new session).
    Reanalyze,
    /// Run the lint engine over the project's current analysis.
    Lint,
    /// Return the project's current `.rgn` document.
    QueryRgn,
    /// Daemon-wide statistics (sessions, requests, sheds, queue depth).
    Stats,
    /// Liveness probe: uptime, per-worker heartbeat ages, open circuits,
    /// and the memory high-water mark. Answered inline (never queued), so
    /// it works even when every worker is busy.
    Health,
    /// Graceful shutdown: drain in-flight requests, persist all sessions.
    Shutdown,
    /// Live metrics snapshot from the serve registry: per-op latency
    /// histograms, outcome counters, per-project gauges. `format` selects
    /// `"json"` (default) or `"prometheus"` text exposition. Answered
    /// inline — the control plane works even when every worker is busy.
    Metrics,
    /// Recent requests from the structured ring-buffer log, newest last;
    /// `limit` caps the count, an explicit `project` filters. Answered
    /// inline.
    QueryLog,
    /// Per-project hot-procedure rankings aggregated from sampled request
    /// span trees; `top` caps procedures per project, an explicit
    /// `project` filters. `format:"collapsed"` returns flamegraph
    /// collapsed-stack lines folded from slow-request traces. Answered
    /// inline.
    Profile,
}

impl Op {
    /// Every op in wire-catalog order (the metrics registry indexes by
    /// this).
    pub const ALL: &'static [Op] = &[
        Op::Analyze,
        Op::Reanalyze,
        Op::Lint,
        Op::QueryRgn,
        Op::Stats,
        Op::Health,
        Op::Shutdown,
        Op::Metrics,
        Op::QueryLog,
        Op::Profile,
    ];

    pub fn parse(s: &str) -> Option<Op> {
        Some(match s {
            "analyze" => Op::Analyze,
            "reanalyze" => Op::Reanalyze,
            "lint" => Op::Lint,
            "query-rgn" => Op::QueryRgn,
            "stats" => Op::Stats,
            "health" => Op::Health,
            "shutdown" => Op::Shutdown,
            "metrics" => Op::Metrics,
            "query-log" => Op::QueryLog,
            "profile" => Op::Profile,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            Op::Analyze => "analyze",
            Op::Reanalyze => "reanalyze",
            Op::Lint => "lint",
            Op::QueryRgn => "query-rgn",
            Op::Stats => "stats",
            Op::Health => "health",
            Op::Shutdown => "shutdown",
            Op::Metrics => "metrics",
            Op::QueryLog => "query-log",
            Op::Profile => "profile",
        }
    }

    /// Stable index into [`Op::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One source file carried in a request.
#[derive(Debug, Clone)]
pub struct WireSource {
    pub name: String,
    pub text: String,
    pub fortran: bool,
}

/// A parsed, validated request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    pub op: Op,
    pub project: String,
    pub sources: Vec<WireSource>,
    /// Per-request deadline; `None` means the server default applies.
    pub deadline_ms: Option<u64>,
    /// Per-request memory budget in mebibytes; `None` means the server
    /// default applies.
    pub mem_budget_mb: Option<u64>,
    /// Client-supplied trace id, echoed verbatim; `None` lets the server
    /// mint one. Either way every response carries a `trace` field.
    pub trace: Option<String>,
    /// Whether `project` was explicit in the request (vs the `"default"`
    /// fallback) — `query-log`/`profile` only filter on explicit projects.
    pub project_given: bool,
    /// Output format selector for `metrics` (`json`/`prometheus`) and
    /// `profile` (`json`/`collapsed`).
    pub format: Option<String>,
    /// Row cap for `query-log`.
    pub limit: Option<u64>,
    /// Per-project procedure cap for `profile`.
    pub top: Option<u64>,
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed or semantically invalid request.
    BadRequest,
    /// Admission control shed the request; retry after the hinted delay.
    Overloaded,
    /// The daemon is draining; retry against the restarted instance.
    ShuttingDown,
    /// The handler panicked; the project's session was reset from disk.
    Panic,
    /// The request frame exceeded the daemon's frame-size cap. The
    /// connection stays open; the oversized frame was discarded.
    FrameTooLarge,
    /// The project's circuit breaker is open after repeated failures;
    /// retry after the hinted delay (the remaining cool-down).
    CircuitOpen,
    /// The worker missed its deadline by more than the heartbeat grace and
    /// is being replaced; the request was abandoned. Retrying may succeed
    /// against the replacement worker, but is not safe to automate for
    /// non-idempotent ops.
    DeadlineExpired,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Panic => "panic",
            ErrorKind::FrameTooLarge => "frame-too-large",
            ErrorKind::CircuitOpen => "circuit-open",
            ErrorKind::DeadlineExpired => "deadline-expired",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Parses one request line. `Err(message)` is turned into a `bad-request`
/// response by the connection handler (with the line's `id` if one was
/// readable).
pub fn parse_request(line: &str) -> Result<Request, (u64, String)> {
    let v = Value::parse(line).map_err(|e| (0, format!("{e}")))?;
    let id = v.get("id").and_then(Value::as_u64).unwrap_or(0);
    let fail = |msg: &str| (id, msg.to_string());
    let op_str = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing string field `op`"))?;
    let op = Op::parse(op_str)
        .ok_or_else(|| (id, format!("unknown op `{op_str}`")))?;
    let project_given = v.get("project").is_some();
    let project = v
        .get("project")
        .map(|p| p.as_str().map(str::to_string).ok_or(()))
        .unwrap_or(Ok("default".to_string()))
        .map_err(|()| fail("`project` must be a string"))?;
    if project.is_empty() || project.len() > 256 {
        return Err(fail("`project` must be 1..=256 characters"));
    }
    let trace = match v.get("trace") {
        None | Some(Value::Null) => None,
        Some(t) => {
            let t = t.as_str().ok_or_else(|| fail("`trace` must be a string"))?;
            if t.is_empty() || t.len() > 64 || t.chars().any(|c| (c as u32) < 0x20) {
                return Err(fail("`trace` must be 1..=64 printable characters"));
            }
            Some(t.to_string())
        }
    };
    let format = match v.get("format") {
        None | Some(Value::Null) => None,
        Some(f) => Some(
            f.as_str()
                .ok_or_else(|| fail("`format` must be a string"))?
                .to_string(),
        ),
    };
    let limit = match v.get("limit") {
        None | Some(Value::Null) => None,
        Some(d) => {
            Some(d.as_u64().ok_or_else(|| fail("`limit` must be a non-negative integer"))?)
        }
    };
    let top = match v.get("top") {
        None | Some(Value::Null) => None,
        Some(d) => {
            Some(d.as_u64().ok_or_else(|| fail("`top` must be a non-negative integer"))?)
        }
    };
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(d) => Some(d.as_u64().ok_or_else(|| {
            fail("`deadline_ms` must be a non-negative integer")
        })?),
    };
    let mem_budget_mb = match v.get("mem_budget_mb") {
        None | Some(Value::Null) => None,
        Some(d) => Some(d.as_u64().ok_or_else(|| {
            fail("`mem_budget_mb` must be a non-negative integer")
        })?),
    };
    let mut sources = Vec::new();
    if let Some(arr) = v.get("sources") {
        let arr = arr
            .as_arr()
            .ok_or_else(|| fail("`sources` must be an array"))?;
        for s in arr {
            let name = s
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("source missing string `name`"))?;
            let text = s
                .get("text")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("source missing string `text`"))?;
            let fortran = match s.get("fortran") {
                None => !name.ends_with(".c"),
                Some(b) => b
                    .as_bool()
                    .ok_or_else(|| fail("`fortran` must be a boolean"))?,
            };
            sources.push(WireSource {
                name: name.to_string(),
                text: text.to_string(),
                fortran,
            });
        }
    }
    match op {
        Op::Analyze | Op::Reanalyze if sources.is_empty() => {
            return Err((id, format!("op `{}` requires non-empty `sources`", op.name())));
        }
        _ => {}
    }
    Ok(Request {
        id,
        op,
        project,
        sources,
        deadline_ms,
        mem_budget_mb,
        trace,
        project_given,
        format,
        limit,
        top,
    })
}

/// Renders a success response line (no trailing newline). Every response
/// echoes the request's trace id so client- and server-side records join.
pub fn ok_response(id: u64, op: Op, trace: &str, result: Value) -> String {
    obj([
        ("id", Value::int(id)),
        ("op", Value::str(op.name())),
        ("ok", Value::Bool(true)),
        ("trace", Value::str(trace)),
        ("result", result),
    ])
    .render()
}

/// Renders an error response line (no trailing newline). `trace` is empty
/// only for frames too malformed to have been admitted (no id either).
pub fn err_response(
    id: u64,
    op: Option<Op>,
    trace: &str,
    kind: ErrorKind,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut error = vec![
        ("kind", Value::str(kind.name())),
        ("message", Value::str(message)),
    ];
    if let Some(ms) = retry_after_ms {
        error.push(("retry_after_ms", Value::int(ms)));
    }
    obj([
        ("id", Value::int(id)),
        ("op", Value::str(op.map(Op::name).unwrap_or("?"))),
        ("ok", Value::Bool(false)),
        ("trace", Value::str(trace)),
        ("error", obj(error)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_analyze() {
        let r = parse_request(
            r#"{"op":"analyze","sources":[{"name":"a.f","text":"end"}]}"#,
        )
        .expect("parse");
        assert_eq!(r.op, Op::Analyze);
        assert_eq!(r.project, "default");
        assert_eq!(r.id, 0);
        assert!(r.sources[0].fortran, "language inferred from extension");
        assert_eq!(r.deadline_ms, None);
        assert_eq!(r.trace, None);
        assert!(!r.project_given);
    }

    #[test]
    fn parses_trace_and_control_fields() {
        let r = parse_request(
            r#"{"op":"metrics","trace":"cli-42","format":"prometheus","limit":5,"top":3}"#,
        )
        .expect("parse");
        assert_eq!(r.op, Op::Metrics);
        assert_eq!(r.trace.as_deref(), Some("cli-42"));
        assert_eq!(r.format.as_deref(), Some("prometheus"));
        assert_eq!(r.limit, Some(5));
        assert_eq!(r.top, Some(3));
        let r = parse_request(r#"{"op":"query-log","project":"demo"}"#).expect("parse");
        assert!(r.project_given);
        assert!(parse_request(r#"{"op":"metrics","trace":""}"#).is_err());
        assert!(parse_request(&format!(
            r#"{{"op":"metrics","trace":"{}"}}"#,
            "x".repeat(65)
        ))
        .is_err());
        assert!(parse_request(r#"{"op":"metrics","limit":-1}"#).is_err());
    }

    #[test]
    fn new_ops_parse_and_index() {
        for (s, op) in [
            ("metrics", Op::Metrics),
            ("query-log", Op::QueryLog),
            ("profile", Op::Profile),
        ] {
            assert_eq!(Op::parse(s), Some(op));
            assert_eq!(op.name(), s);
        }
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn rejects_bad_requests_with_id() {
        let (id, msg) = parse_request(r#"{"id":9,"op":"fly"}"#).unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("unknown op"));
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"op":"analyze","sources":[]}"#).is_err());
        assert!(parse_request(r#"{"op":"analyze"}"#).is_err());
        assert!(parse_request(r#"{"op":"stats","deadline_ms":-4}"#).is_err());
    }

    #[test]
    fn stats_needs_no_sources() {
        let r = parse_request(r#"{"id":3,"op":"stats"}"#).expect("parse");
        assert_eq!(r.op, Op::Stats);
        assert!(r.sources.is_empty());
    }

    #[test]
    fn health_needs_no_sources_and_parses_mem_budget() {
        let r = parse_request(r#"{"id":4,"op":"health"}"#).expect("parse");
        assert_eq!(r.op, Op::Health);
        assert_eq!(r.mem_budget_mb, None);
        let r = parse_request(
            r#"{"op":"analyze","mem_budget_mb":64,"sources":[{"name":"a.f","text":"end"}]}"#,
        )
        .expect("parse");
        assert_eq!(r.mem_budget_mb, Some(64));
        assert!(
            parse_request(r#"{"op":"stats","mem_budget_mb":-1}"#).is_err(),
            "negative budget rejected"
        );
        assert!(
            parse_request(r#"{"op":"stats","mem_budget_mb":"big"}"#).is_err(),
            "non-numeric budget rejected"
        );
    }

    #[test]
    fn new_error_kinds_have_stable_wire_names() {
        assert_eq!(ErrorKind::FrameTooLarge.name(), "frame-too-large");
        assert_eq!(ErrorKind::CircuitOpen.name(), "circuit-open");
        assert_eq!(ErrorKind::DeadlineExpired.name(), "deadline-expired");
        assert_eq!(Op::parse("health"), Some(Op::Health));
        assert_eq!(Op::Health.name(), "health");
    }

    #[test]
    fn responses_round_trip() {
        let ok = ok_response(7, Op::Lint, "t-000001", Value::int(1));
        let v = Value::parse(&ok).expect("parse");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("trace").and_then(Value::as_str), Some("t-000001"));
        let err =
            err_response(8, None, "t-2", ErrorKind::Overloaded, "queue full", Some(120));
        let v = Value::parse(&err).expect("parse");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("trace").and_then(Value::as_str), Some("t-2"));
        assert_eq!(
            v.get("error").and_then(|e| e.get("retry_after_ms")).and_then(Value::as_u64),
            Some(120)
        );
    }
}
