//! Shared helpers for the serve integration tests: a three-procedure
//! fixture program, a self-cleaning daemon process handle, and request
//! builders for the wire protocol.

#![allow(dead_code)] // each test binary uses its own subset

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dragon::serve::ClientOptions;
use support::json::{obj, Value};

// The three-procedure program the session tests use: one entry file per
// procedure in the cache, interprocedural flow through the common block.
pub const MAIN_F: &str = "\
program main
  real a(20)
  common /g/ a
  integer i
  do i = 1, 10
    a(i) = 0.0
  end do
  call mid
end
";
pub const MID_F: &str = "\
subroutine mid
  real a(20)
  common /g/ a
  a(11) = 1.0
  call leaf
end
";
pub const LEAF_F: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 12, 20
    a(i) = 2.0
  end do
end
";
pub const LEAF_F_EDITED: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 12, 18
    a(i) = 2.0
  end do
end
";

pub fn sources_v1() -> Vec<(&'static str, &'static str)> {
    vec![("main.f", MAIN_F), ("mid.f", MID_F), ("leaf.f", LEAF_F)]
}

pub fn sources_v2() -> Vec<(&'static str, &'static str)> {
    vec![("main.f", MAIN_F), ("mid.f", MID_F), ("leaf.f", LEAF_F_EDITED)]
}

pub fn dragon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dragon"))
}

/// A running daemon process bound to a socket inside a test dir. Killed on
/// drop so a failing assertion never leaks a process.
pub struct Daemon {
    pub child: Child,
    pub socket: PathBuf,
}

impl Daemon {
    pub fn start(socket: PathBuf, extra: &[&str], envs: &[(&str, String)]) -> Daemon {
        let mut cmd = dragon();
        cmd.arg("serve")
            .args(["--socket", socket.to_str().expect("utf8 socket path")])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let child = cmd.spawn().expect("spawn dragon serve");
        let mut d = Daemon { child, socket };
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(30) {
            if UnixStream::connect(&d.socket).is_ok() {
                return d;
            }
            if let Ok(Some(status)) = d.child.try_wait() {
                panic!("daemon exited before becoming ready: {status}");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = d.child.kill();
        panic!("daemon did not become ready on {}", d.socket.display());
    }

    /// Waits for the process to exit on its own (after a shutdown op or a
    /// chaos abort).
    pub fn wait_exit(&mut self, timeout: Duration) -> std::process::ExitStatus {
        let start = Instant::now();
        loop {
            if let Ok(Some(status)) = self.child.try_wait() {
                return status;
            }
            if start.elapsed() > timeout {
                let _ = self.child.kill();
                panic!("daemon did not exit within {timeout:?}");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Whether the process has exited, without blocking.
    pub fn exited(&mut self) -> Option<std::process::ExitStatus> {
        self.child.try_wait().ok().flatten()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

pub fn copts(socket: &Path) -> ClientOptions {
    ClientOptions {
        socket: socket.to_path_buf(),
        timeout: Duration::from_secs(60),
        retries: 2,
        backoff_base: Duration::from_millis(20),
        ..ClientOptions::default()
    }
}

pub fn analyze_req(
    id: u64,
    op: &str,
    project: &str,
    sources: &[(&str, &str)],
    deadline_ms: Option<u64>,
) -> Value {
    let srcs: Vec<Value> = sources
        .iter()
        .map(|(name, text)| {
            obj([
                ("name", Value::str(*name)),
                ("text", Value::str(*text)),
                ("fortran", Value::Bool(true)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("id", Value::int(id)),
        ("op", Value::str(op)),
        ("project", Value::str(project)),
        ("sources", Value::Arr(srcs)),
    ];
    if let Some(ms) = deadline_ms {
        fields.push(("deadline_ms", Value::int(ms)));
    }
    obj(fields)
}

pub fn plain_req(id: u64, op: &str, project: &str) -> Value {
    obj([
        ("id", Value::int(id)),
        ("op", Value::str(op)),
        ("project", Value::str(project)),
    ])
}

/// Calls and asserts `ok:true`, returning the `result` object.
pub fn call_ok(o: &ClientOptions, req: &Value) -> Value {
    let resp = dragon::serve::client::call(o, req).expect("call succeeds");
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "expected ok response, got {}",
        resp.render()
    );
    resp.get("result").cloned().expect("ok response carries result")
}

pub fn result_u64(result: &Value, key: &str) -> u64 {
    result
        .get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing integer `{key}` in {}", result.render()))
}

pub fn error_kind(resp: &Value) -> String {
    resp.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string()
}

/// One raw request/response exchange on an existing connection.
pub fn raw_roundtrip(stream: &mut UnixStream, line: &str) -> Value {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .expect("send");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    Value::parse(resp.trim()).expect("response parses")
}
