//! End-to-end tests of the `dragon` binary (the tool a user actually runs).

use std::path::PathBuf;
use std::process::Command;

fn dragon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dragon"))
}

fn write_temp(name: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dragon_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn demo_matrix_prints_fig9_table() {
    let out = dragon().args(["demo", "matrix"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("aarr"), "{stdout}");
    assert!(stdout.contains("55599870"), "{stdout}");
    assert!(stdout.contains("copyin(aarr[2:7])"), "{stdout}");
    assert!(stdout.contains("aarr[8]"), "{stdout}");
}

#[test]
fn demo_fig1_reports_parallel_pair() {
    let out = dragon().args(["demo", "fig1"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parallel: in `add`"), "{stdout}");
}

#[test]
fn analyze_writes_project_files() {
    let src = write_temp(
        "small.f",
        "program main\n  real a(5)\n  common /g/ a\n  integer i\n  do i = 1, 5\n    a(i) = 0.0\n  end do\nend\n",
    );
    let out_dir = std::env::temp_dir().join("dragon_cli_out");
    std::fs::create_dir_all(&out_dir).unwrap();
    let out = dragon()
        .args([
            "analyze",
            src.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--stem",
            "small",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    for ext in ["rgn", "dgn", "cfg"] {
        assert!(out_dir.join(format!("small.{ext}")).exists());
    }
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn callgraph_emits_dot() {
    let src = write_temp(
        "cg.f",
        "program main\n  call leaf\nend\nsubroutine leaf\n  return\nend\n",
    );
    let out = dragon().args(["callgraph", src.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph callgraph {"), "{stdout}");
    assert!(stdout.contains("->"), "{stdout}");
}

#[test]
fn view_scope_with_find() {
    let src = write_temp(
        "v.f",
        "program main\n  real xs(9)\n  common /g/ xs\n  integer i\n  do i = 1, 9\n    xs(i) = 1.0\n  end do\nend\n",
    );
    let out = dragon()
        .args(["view", "@", src.to_str().unwrap(), "--find", "xs"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("xs"), "{stdout}");
    assert!(stdout.contains("\u{1b}[32m"), "find matches render green: {stdout:?}");
}

#[test]
fn dynamic_subcommand_reports_regions() {
    let src = write_temp(
        "d.f",
        "program main\n  real a(9)\n  common /g/ a\n  integer i\n  do i = 1, 9\n    a(i) = 1.0\n  end do\nend\n",
    );
    let out = dragon()
        .args(["dynamic", "main", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("WRITE"), "{stdout}");
    assert!(stdout.contains("violations: 0"), "{stdout}");
}

#[test]
fn bad_source_fails_cleanly() {
    let src = write_temp("bad.f", "subroutine\n");
    let out = dragon().args(["advise", src.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("dragon:"), "{stderr}");
}

/// One broken procedure next to a healthy one: the analysis degrades rather
/// than failing, the report lands on stderr, and the exit code is 1.
const DEGRADED_SRC: &str = "program main\n  real a(5)\n  common /g/ a\n  integer i\n  do i = 1, 5\n    a(i) = 0.0\n  end do\nend\nsubroutine broken\n  integer i\n  i = = 1\nend\n";

#[test]
fn degraded_analysis_exits_one_with_report() {
    let src = write_temp("degraded.f", DEGRADED_SRC);
    let out = dragon().args(["callgraph", src.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("analysis degraded"), "{stderr}");
    assert!(stderr.contains("[parse]"), "{stderr}");
    // The healthy procedure still made it into the call graph.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MAIN__"), "{stdout}");
}

#[test]
fn strict_promotes_degradation_to_failure() {
    let src = write_temp("degraded_strict.f", DEGRADED_SRC);
    let out = dragon()
        .args(["--strict", "callgraph", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--strict"), "{stderr}");
}

/// End-to-end fault injection: a forced panic inside one procedure's IPL
/// summary must leave the run degraded (exit 1) with rows for everyone
/// else. Needs the binary built with the faultpoint registry:
/// `cargo test -p dragon --features fault-injection`.
#[cfg(feature = "fault-injection")]
#[test]
fn injected_panic_degrades_to_exit_one() {
    let out = dragon()
        .args(["demo", "lu"])
        .env("ARAA_FAULTPOINT", "ipl::summarize:3")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("analysis degraded"), "{stderr}");
    assert!(stderr.contains("[ipl]"), "{stderr}");
    assert!(stderr.contains("fault injected"), "{stderr}");
    // The other 23 mini-LU procedures still render.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("blts"), "{stdout}");
    assert!(stdout.contains("rhs"), "{stdout}");
}

#[test]
fn clean_analysis_exits_zero() {
    let src = write_temp(
        "clean_exit.f",
        "program main\n  real a(5)\n  common /g/ a\n  integer i\n  do i = 1, 5\n    a(i) = 0.0\n  end do\nend\n",
    );
    let out = dragon().args(["callgraph", src.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
}

// ---------------------------------------------------------------------------
// Persistent cache (--cache-dir / --no-cache / cache subcommand)
// ---------------------------------------------------------------------------

const CACHE_SRC: &str = "program main\n  real a(8)\n  common /g/ a\n  integer i\n  do i = 1, 8\n    a(i) = 0.0\n  end do\n  call leaf\nend\nsubroutine leaf\n  real a(8)\n  common /g/ a\n  a(3) = 1.0\nend\n";

#[test]
fn warm_cache_run_matches_cold_output() {
    let src = write_temp("cache_warm.f", CACHE_SRC);
    let dir = support::testdir::TestDir::new("dragon-cli-cache");
    let cache = dir.path().to_str().unwrap();
    let cold = dragon()
        .args(["--cache-dir", cache, "callgraph", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(cold.status.code(), Some(0), "{}", String::from_utf8_lossy(&cold.stderr));
    assert!(dir.join("manifest.araa").exists(), "persist must write a manifest");
    let warm = dragon()
        .args(["--cache-dir", cache, "callgraph", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(warm.status.code(), Some(0), "{}", String::from_utf8_lossy(&warm.stderr));
    assert_eq!(cold.stdout, warm.stdout, "warm-from-disk output must be identical");
}

#[test]
fn no_cache_skips_the_cache_dir() {
    let src = write_temp("cache_skip.f", CACHE_SRC);
    let dir = support::testdir::TestDir::new("dragon-cli-nocache");
    let cache = dir.path().to_str().unwrap();
    let out = dragon()
        .args(["--cache-dir", cache, "--no-cache", "callgraph", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(!dir.join("manifest.araa").exists(), "--no-cache must not write");
}

#[test]
fn corrupt_cache_quarantines_and_exits_one() {
    let src = write_temp("cache_corrupt.f", CACHE_SRC);
    let dir = support::testdir::TestDir::new("dragon-cli-corrupt");
    let cache = dir.path().to_str().unwrap();
    let cold = dragon()
        .args(["--cache-dir", cache, "callgraph", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(cold.status.code(), Some(0), "{}", String::from_utf8_lossy(&cold.stderr));
    // Flip one payload byte in the manifest.
    let mpath = dir.join("manifest.araa");
    let mut bytes = std::fs::read(&mpath).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&mpath, &bytes).unwrap();
    let warm = dragon()
        .args(["--cache-dir", cache, "callgraph", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(warm.status.code(), Some(1), "{}", String::from_utf8_lossy(&warm.stderr));
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(stderr.contains("cache incident"), "{stderr}");
    assert!(stderr.contains("quarantine"), "{stderr}");
    // Rows are unaffected by the cache damage.
    assert_eq!(cold.stdout, warm.stdout);
    // Strict promotes the incident to failure.
    let mut bytes = std::fs::read(&mpath).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&mpath, &bytes).unwrap();
    let strict = dragon()
        .args(["--strict", "--cache-dir", cache, "callgraph", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(strict.status.code(), Some(2), "{}", String::from_utf8_lossy(&strict.stderr));
}

#[test]
fn cache_stats_verify_and_clear_subcommands() {
    let src = write_temp("cache_sub.f", CACHE_SRC);
    let dir = support::testdir::TestDir::new("dragon-cli-sub");
    let cache = dir.path().to_str().unwrap();
    let out = dragon()
        .args(["--cache-dir", cache, "callgraph", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    let stats = dragon().args(["--cache-dir", cache, "cache", "stats"]).output().unwrap();
    assert_eq!(stats.status.code(), Some(0), "{}", String::from_utf8_lossy(&stats.stderr));
    let stdout = String::from_utf8_lossy(&stats.stdout);
    assert!(stdout.contains("manifest:        present"), "{stdout}");
    assert!(stdout.contains("procedures:      2"), "{stdout}");

    let verify = dragon().args(["--cache-dir", cache, "cache", "verify"]).output().unwrap();
    assert_eq!(verify.status.code(), Some(0), "{}", String::from_utf8_lossy(&verify.stderr));
    assert!(String::from_utf8_lossy(&verify.stdout).contains("valid"), "{verify:?}");

    // Damage an entry file: verify reports it and exits 1.
    let entry = std::fs::read_dir(dir.path())
        .unwrap()
        .flatten()
        .find(|e| {
            let n = e.file_name();
            let n = n.to_string_lossy();
            n.starts_with('e') && n.ends_with(".araa")
        })
        .expect("an entry file");
    let mut bytes = std::fs::read(entry.path()).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(entry.path(), &bytes).unwrap();
    let verify = dragon().args(["--cache-dir", cache, "cache", "verify"]).output().unwrap();
    assert_eq!(verify.status.code(), Some(1), "{}", String::from_utf8_lossy(&verify.stderr));
    assert!(String::from_utf8_lossy(&verify.stderr).contains("problem"), "{verify:?}");

    let clear = dragon().args(["--cache-dir", cache, "cache", "clear"]).output().unwrap();
    assert_eq!(clear.status.code(), Some(0), "{}", String::from_utf8_lossy(&clear.stderr));
    assert!(String::from_utf8_lossy(&clear.stdout).contains("removed"), "{clear:?}");
    assert!(!dir.join("manifest.araa").exists());
}

#[test]
fn cache_subcommand_requires_cache_dir() {
    let out = dragon().args(["cache", "stats"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("requires --cache-dir"), "{stderr}");
}

#[test]
fn no_args_prints_usage() {
    let out = dragon().output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

// ---------------------------------------------------------------------------
// Observability (--trace-out / --metrics / profile)
// ---------------------------------------------------------------------------

/// Pulls a `counter`/`gauge` value out of the metrics JSONL document.
fn metric_value(doc: &str, kind: &str, name: &str) -> Option<u64> {
    let prefix = format!("{{\"type\":\"{kind}\",\"name\":\"{name}\",\"value\":");
    doc.lines()
        .find(|l| l.starts_with(&prefix))
        .and_then(|l| l[prefix.len()..].trim_end_matches('}').parse().ok())
}

#[test]
fn trace_out_writes_valid_artifacts_with_invariants() {
    let dir = support::testdir::TestDir::new("dragon-cli-trace");
    let trace_dir = dir.join("obs");
    let out = dragon()
        .args(["--trace-out", trace_dir.to_str().unwrap(), "demo", "lu"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    let trace = std::fs::read_to_string(trace_dir.join("trace.json")).unwrap();
    assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
    assert!(trace.contains("\"name\":\"session.update\""), "{trace}");
    assert!(trace.contains("\"name\":\"ipa.ipl\""), "{trace}");
    support::persist::verify_text_checksum(&trace).expect("trace trailer verifies");

    let metrics = std::fs::read_to_string(trace_dir.join("metrics.jsonl")).unwrap();
    support::persist::verify_text_checksum(&metrics).expect("metrics trailer verifies");
    let hits = metric_value(&metrics, "counter", "cache.hits").unwrap();
    let recomputes = metric_value(&metrics, "counter", "cache.recomputes").unwrap();
    let procs = metric_value(&metrics, "gauge", "session.procedures").unwrap();
    assert!(procs > 0, "{metrics}");
    assert_eq!(hits + recomputes, procs, "cache accounting covers every procedure");
    assert!(metrics.contains("\"type\":\"proc\""), "{metrics}");
}

#[test]
fn metrics_file_records_structured_diagnostics() {
    let src = write_temp("obs_degraded.f", DEGRADED_SRC);
    let dir = support::testdir::TestDir::new("dragon-cli-metrics");
    let mfile = dir.join("m.jsonl");
    let out = dragon()
        .args(["--metrics", mfile.to_str().unwrap(), "callgraph", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let metrics = std::fs::read_to_string(&mfile).unwrap();
    support::persist::verify_text_checksum(&metrics).expect("metrics trailer verifies");
    // The degradation reported on stderr appears as a structured diag line
    // and in the counters — same sink, no drift.
    assert!(metrics.contains("\"type\":\"diag\",\"severity\":\"degraded\""), "{metrics}");
    assert!(metrics.contains("\"code\":\"analysis.degraded\""), "{metrics}");
    let degrades = metric_value(&metrics, "counter", "degrade.events").unwrap();
    assert!(degrades > 0, "{metrics}");
}

#[test]
fn logical_clock_cli_runs_are_byte_deterministic() {
    let dir = support::testdir::TestDir::new("dragon-cli-logical");
    let run = |n: u32| {
        let tdir = dir.join(&format!("t{n}"));
        let out = dragon()
            .args(["--trace-out", tdir.to_str().unwrap(), "demo", "fig1"])
            .env("ARAA_OBS_CLOCK", "logical")
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
        (
            std::fs::read(tdir.join("trace.json")).unwrap(),
            std::fs::read(tdir.join("metrics.jsonl")).unwrap(),
        )
    };
    let (trace1, metrics1) = run(1);
    let (trace2, metrics2) = run(2);
    assert_eq!(trace1, trace2, "logical-clock trace must be byte-identical");
    assert_eq!(metrics1, metrics2, "logical-clock metrics must be byte-identical");
}

#[test]
fn profile_ranks_procedures_and_shows_cache_source() {
    let src = write_temp("obs_profile.f", CACHE_SRC);
    let dir = support::testdir::TestDir::new("dragon-cli-profile");
    let cache = dir.path().to_str().unwrap();
    let cold = dragon()
        .args(["--cache-dir", cache, "profile", src.to_str().unwrap(), "--top", "5"])
        .output()
        .unwrap();
    assert_eq!(cold.status.code(), Some(0), "{}", String::from_utf8_lossy(&cold.stderr));
    let stdout = String::from_utf8_lossy(&cold.stdout);
    assert!(stdout.contains("== hot procedures =="), "{stdout}");
    assert!(stdout.contains("== counters =="), "{stdout}");
    assert!(stdout.contains("== phase totals =="), "{stdout}");
    assert!(stdout.contains("session.update"), "{stdout}");
    assert!(stdout.contains("recomputed"), "{stdout}");

    // Warm from disk: the same report now attributes procedures to the
    // cache instead of recomputation.
    let warm = dragon()
        .args(["--cache-dir", cache, "profile", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(warm.status.code(), Some(0), "{}", String::from_utf8_lossy(&warm.stderr));
    let stdout = String::from_utf8_lossy(&warm.stdout);
    assert!(stdout.contains("| primed"), "{stdout}");
    assert!(!stdout.contains("| recomputed"), "warm run must not recompute: {stdout}");
}

#[test]
fn cache_stats_uses_snapshot_then_falls_back_to_live_scan() {
    let src = write_temp("obs_stats.f", CACHE_SRC);
    let dir = support::testdir::TestDir::new("dragon-cli-stats-src");
    let cache = dir.path().to_str().unwrap();
    let out = dragon()
        .args(["--cache-dir", cache, "callgraph", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("stats.araa").exists(), "save must write the stats snapshot");

    let stats = dragon().args(["--cache-dir", cache, "cache", "stats"]).output().unwrap();
    assert_eq!(stats.status.code(), Some(0), "{}", String::from_utf8_lossy(&stats.stderr));
    let snap_out = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(snap_out.contains("source:          snapshot"), "{snap_out}");

    // Without the snapshot the command falls back to scanning the
    // directory — and reports the same numbers.
    std::fs::remove_file(dir.join("stats.araa")).unwrap();
    let stats = dragon().args(["--cache-dir", cache, "cache", "stats"]).output().unwrap();
    assert_eq!(stats.status.code(), Some(0), "{}", String::from_utf8_lossy(&stats.stderr));
    let live_out = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(live_out.contains("source:          live scan"), "{live_out}");
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("source:") && !l.starts_with("total bytes:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&snap_out), strip(&live_out), "snapshot and scan must agree");
}

// ---------------------------------------------------------------------------
// `dragon lint` (findings, exit codes, SARIF artifact, fault containment)

/// A dead store (`buf` written, never read) next to a clean procedure.
const LINT_DEFECT_SRC: &str = "\
program main
  real buf(16)
  integer i
  do i = 1, 16
    buf(i) = 0.0
  end do
end
";

const LINT_CLEAN_SRC: &str = "\
program main
  real a(5)
  common /g/ a
  integer i
  do i = 1, 5
    a(i) = 0.0
  end do
end
";

#[test]
fn lint_definite_finding_exits_one() {
    let src = write_temp("lint_defect.f", LINT_DEFECT_SRC);
    let out = dragon().args(["lint", src.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DST-03"), "{stdout}");
    assert!(stdout.contains("buf"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("definite finding"), "{stderr}");
}

#[test]
fn lint_strict_promotes_findings_to_exit_two() {
    let src = write_temp("lint_defect_strict.f", LINT_DEFECT_SRC);
    let out = dragon().args(["--strict", "lint", src.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn lint_clean_source_exits_zero() {
    let src = write_temp("lint_clean.f", LINT_CLEAN_SRC);
    let out = dragon().args(["lint", src.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn lint_writes_sealed_sarif() {
    let src = write_temp("lint_sarif.f", LINT_DEFECT_SRC);
    let dir = support::testdir::TestDir::new("dragon-cli-lint-sarif");
    let sarif = dir.join("findings.sarif");
    let out = dragon()
        .args(["lint", src.to_str().unwrap(), "--sarif", sarif.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = std::fs::read_to_string(&sarif).expect("SARIF artifact written");
    assert!(doc.contains("\"ruleId\": \"DST-03\""), "{doc}");
    support::persist::verify_text_checksum(&doc).expect("artifact is sealed");
}

/// A panic while linting one procedure must not silence the others: run
/// the two-defect program with `lint::contain` armed on the second hit
/// (procedures lint in program order) and expect the other overrun to
/// still print alongside the degradation notice.
#[cfg(feature = "fault-injection")]
#[test]
fn lint_contain_fault_degrades_one_procedure_end_to_end() {
    let src = write_temp(
        "lint_fault.f",
        "program main\n  call one\n  call two\nend\n\
         subroutine one\n  real a(10)\n  integer i\n  do i = 1, 12\n    a(i) = a(i) + 1.0\n  end do\nend\n\
         subroutine two\n  real b(10)\n  integer i\n  do i = 1, 12\n    b(i) = b(i) + 1.0\n  end do\nend\n",
    );
    let out = dragon()
        .args(["lint", src.to_str().unwrap()])
        .env("ARAA_FAULTPOINT", "lint::contain:2")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OOB-01"), "{stdout}");
    assert!(stdout.contains("`b`"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("lint degraded"), "{stderr}");
    assert!(stderr.contains("fault injected"), "{stderr}");
}

/// A panic during SARIF emission loses the artifact, never the findings.
#[cfg(feature = "fault-injection")]
#[test]
fn lint_sarif_fault_keeps_findings_end_to_end() {
    let src = write_temp("lint_sarif_fault.f", LINT_DEFECT_SRC);
    let dir = support::testdir::TestDir::new("dragon-cli-lint-sarif-fault");
    let sarif = dir.join("findings.sarif");
    let out = dragon()
        .args(["lint", src.to_str().unwrap(), "--sarif", sarif.to_str().unwrap()])
        .env("ARAA_FAULTPOINT", "lint::sarif")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DST-03"), "findings must survive: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("SARIF emission failed"), "{stderr}");
    assert!(!sarif.exists(), "no partial artifact may land");
}

// ---------------------------------------------------------------------------
// Global `--timeout` (wall-clock deadline for any command)

#[test]
fn timeout_far_in_the_future_changes_nothing() {
    let out = dragon().args(["--timeout", "300", "demo", "matrix"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("aarr"));
}

#[test]
fn timeout_rejects_nonpositive_values() {
    let out = dragon().args(["--timeout", "0", "demo", "matrix"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "zero timeout is a usage error");
    let out = dragon().args(["--timeout", "nope", "demo", "matrix"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// The headline `--timeout` contract: a wedged analysis (the `stall::ipl`
/// faultpoint spins ~8 s inside one summarize) degrades to exit 1 within
/// the deadline instead of hanging — and says why on stderr.
#[cfg(feature = "fault-injection")]
#[test]
fn timeout_degrades_wedged_analysis_instead_of_hanging() {
    let src = write_temp(
        "stall.f",
        "program main\n  real a(6)\n  common /g/ a\n  integer i\n  do i = 1, 6\n    a(i) = 0.0\n  end do\nend\n",
    );
    let dir = support::testdir::TestDir::new("dragon-cli-timeout");
    let t0 = std::time::Instant::now();
    let out = dragon()
        .env("ARAA_FAULTPOINT", "stall::ipl:1")
        .args([
            "--timeout",
            "1",
            "analyze",
            src.to_str().unwrap(),
            "--out",
            dir.path().to_str().unwrap(),
            "--stem",
            "stall",
        ])
        .output()
        .unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(6),
        "--timeout 1 must cut the ~8 s stall short, took {elapsed:?}"
    );
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--timeout: deadline expired"), "{stderr}");
    // Degraded, not dead: the artifacts still land.
    assert!(dir.join("stall.rgn").exists(), "degraded run still writes artifacts");
}
