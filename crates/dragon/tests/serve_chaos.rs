//! Chaos matrix: kill the daemon at every persistence faultpoint, restart
//! it, and prove full recovery.
//!
//! With `ARAA_SERVE_CHAOS_ABORT=1` the daemon aborts the moment an armed
//! faultpoint fires — before unwinding, so no `Drop` runs: the `LOCK`
//! file, temp litter, and half-committed state survive exactly as in a
//! real crash (power loss, OOM-kill). The test then restarts the daemon
//! over the same cache root and asserts the three recovery invariants:
//!
//! 1. the restarted daemon serves, and its `.rgn` answer is byte-identical
//!    to a cold in-process oracle over the same sources;
//! 2. no temp litter and no stale lock survives a recovery + clean drain;
//! 3. nothing corrupt was left behind (`SessionStore::verify` is clean and
//!    the quarantine stays empty — crashes lose work, they never forge it).
//!
//! Run with `cargo test -p dragon --features fault-injection --test serve_chaos`.
#![cfg(feature = "fault-injection")]

mod serve_common;

use araa::{Analysis, AnalysisOptions, SessionStore};
use serve_common::*;
use std::path::Path;
use std::time::{Duration, Instant};
use support::json::Value;
use support::testdir::TestDir;
use workloads::GenSource;

/// Every faultpoint on the persistence write path: the four inside the
/// atomic-write primitive, and the four at the store's commit protocol.
const KILL_POINTS: &[&str] = &[
    "persist::torn_write",
    "persist::pre_sync",
    "persist::pre_rename",
    "persist::post_rename",
    "persist::entry_write",
    "persist::pre_manifest",
    "persist::post_manifest",
    "persist::gc",
];

const PROJECT: &str = "chaos";

fn gen_sources(files: &[(&str, &str)]) -> Vec<GenSource> {
    files.iter().map(|(n, t)| GenSource::fortran(*n, *t)).collect()
}

/// The ground truth: a cold, in-process analysis of the final sources.
fn oracle_rgn() -> String {
    let a = Analysis::analyze(&gen_sources(&sources_v2()), AnalysisOptions::default())
        .expect("cold oracle");
    araa::rgn::write_rgn(&a.rows)
}

/// Recursively collects files under `root` whose name contains `needle`.
fn files_containing(root: &Path, needle: &str) -> Vec<String> {
    let mut hits = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if entry.file_name().to_string_lossy().contains(needle) {
                hits.push(path.display().to_string());
            }
        }
    }
    hits
}

/// One cell of the matrix: arm `point`, drive the daemon until the abort
/// kills it, then restart and verify recovery.
fn kill_and_recover(point: &str, oracle: &str) {
    let dir = TestDir::new("serve-chaos");
    let cache = dir.join("cache");
    let cache_str = cache.to_str().expect("utf8").to_string();
    let cache_args = ["--cache-root", cache_str.as_str(), "--workers", "1"];

    let mut d = Daemon::start(
        dir.join("d.sock"),
        &cache_args,
        &[
            ("ARAA_FAULTPOINT", format!("{point}:1")),
            ("ARAA_SERVE_CHAOS_ABORT", "1".to_string()),
        ],
    );
    let o = dragon::serve::ClientOptions {
        retries: 0,
        timeout: Duration::from_secs(30),
        ..copts(&d.socket)
    };

    // First analyze: its commit trips most points (the abort races the
    // response, so any outcome of the call itself is acceptable).
    let _ = dragon::serve::client::call(&o, &analyze_req(1, "analyze", PROJECT, &sources_v1(), None));
    // `persist::gc` only fires once a commit has entries to collect: if
    // the daemon survived the first commit, push an edit that supersedes
    // one entry.
    let start = Instant::now();
    while d.exited().is_none() && start.elapsed() < Duration::from_secs(2) {
        std::thread::sleep(Duration::from_millis(20));
    }
    if d.exited().is_none() {
        let _ = dragon::serve::client::call(
            &o,
            &analyze_req(2, "analyze", PROJECT, &sources_v2(), None),
        );
    }
    let status = d.wait_exit(Duration::from_secs(15));
    assert!(
        !status.success(),
        "daemon must die at {point}, got clean exit {status}"
    );
    drop(d);

    // The crash site may hold temp litter and a stale LOCK — that is the
    // point. Restart over the same root (and the same now-stale socket
    // file), bring the project to its final state, and compare bytes.
    let mut d = Daemon::start(dir.join("d.sock"), &cache_args, &[]);
    let o = copts(&d.socket);
    let r = call_ok(&o, &analyze_req(10, "analyze", PROJECT, &sources_v2(), None));
    assert!(result_u64(&r, "rows") > 0, "after {point}: {}", r.render());
    let r = call_ok(&o, &plain_req(11, "query-rgn", PROJECT));
    let rgn = r.get("rgn").and_then(Value::as_str).expect("rgn");
    assert_eq!(
        rgn, oracle,
        "post-crash results must be byte-identical to the cold oracle (killed at {point})"
    );
    call_ok(&o, &plain_req(12, "shutdown", PROJECT));
    assert!(
        d.wait_exit(Duration::from_secs(30)).success(),
        "recovered daemon must drain cleanly after {point}"
    );

    // Invariant 2: recovery + drain leaves no temp litter and no lock.
    let tmp = files_containing(&cache, ".araa-tmp");
    assert!(tmp.is_empty(), "temp litter after {point}: {tmp:?}");
    let locks = files_containing(&cache, support::persist::LOCK_FILE);
    assert!(locks.is_empty(), "stale lock after {point}: {locks:?}");

    // Invariant 3: nothing corrupt, nothing quarantined — the store
    // validates completely.
    let pdir = cache.join(format!("p{:016x}", support::hash::fnv1a(PROJECT.as_bytes())));
    let report = SessionStore::new(&pdir, &AnalysisOptions::default())
        .verify()
        .expect("verify runs");
    assert!(report.clean(), "corruption after {point}: {:?}", report.problems);
    let quarantined = files_containing(&pdir.join("quarantine"), "");
    assert!(quarantined.is_empty(), "crash must not forge corruption: {quarantined:?}");
}

#[test]
fn kill_at_every_persistence_faultpoint_then_recover_identically() {
    let oracle = oracle_rgn();
    for point in KILL_POINTS {
        kill_and_recover(point, &oracle);
    }
}
