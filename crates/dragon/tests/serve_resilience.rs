//! Resource-exhaustion resilience, end to end: hostile inputs (oversized
//! frames, pathological nesting, memory-hungry requests) and misbehaving
//! projects (sticky panics, wedged workers) must each produce *structured*
//! errors or degradations — while concurrent well-behaved clients complete
//! normally and the daemon's memory high-water stays bounded under the
//! CountingAllocator's accounting.

mod serve_common;

use serve_common::*;
use std::os::unix::net::UnixStream;
use std::time::Duration;
use support::json::Value;
use support::testdir::TestDir;

/// Two project names guaranteed to land on different workers of a
/// two-worker daemon (sharding is by fnv1a of the project name).
fn split_projects() -> (String, String) {
    let first = "healthy-a".to_string();
    let shard = support::hash::fnv1a(first.as_bytes()) % 2;
    for i in 0..64 {
        let cand = format!("healthy-b{i}");
        if support::hash::fnv1a(cand.as_bytes()) % 2 != shard {
            return (first, cand);
        }
    }
    unreachable!("some candidate hashes to the other shard");
}

/// Attaches a per-request memory budget to a request built by the shared
/// helpers.
fn with_mem_budget(mut req: Value, mb: u64) -> Value {
    if let Value::Obj(map) = &mut req {
        map.insert("mem_budget_mb".to_string(), Value::int(mb));
    }
    req
}

#[test]
fn hostile_inputs_are_contained_while_healthy_traffic_flows() {
    let dir = TestDir::new("serve-resilience");
    let mut d = Daemon::start(
        dir.join("d.sock"),
        &[
            "--workers",
            "2",
            "--max-frame-bytes",
            "4096",
            "--circuit-threshold",
            "2",
        ],
        &[],
    );
    let o = copts(&d.socket);

    // Well-behaved clients on both shards, running for the whole test.
    let (pa, pb) = split_projects();
    let healthy: Vec<_> = [(pa, 100u64), (pb, 200u64)]
        .into_iter()
        .map(|(project, base_id)| {
            let socket = d.socket.clone();
            std::thread::spawn(move || {
                let o = copts(&socket);
                for round in 0..3u64 {
                    let r = call_ok(
                        &o,
                        &analyze_req(
                            base_id + 2 * round,
                            "analyze",
                            &project,
                            &sources_v1(),
                            None,
                        ),
                    );
                    assert_eq!(
                        r.get("degraded").and_then(Value::as_bool),
                        Some(false),
                        "healthy project degraded by hostile neighbors: {}",
                        r.render()
                    );
                    let r = call_ok(&o, &plain_req(base_id + 2 * round + 1, "query-rgn", &project));
                    assert!(r.get("rgn").and_then(Value::as_str).is_some(), "{}", r.render());
                }
            })
        })
        .collect();

    // Hostile input #1: an oversized frame. Structured `frame-too-large`,
    // and the same connection keeps serving.
    let mut stream = UnixStream::connect(&d.socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let resp = raw_roundtrip(
        &mut stream,
        &format!(r#"{{"id":1,"op":"stats","project":"evil","pad":"{}"}}"#, "x".repeat(8192)),
    );
    assert_eq!(error_kind(&resp), "frame-too-large", "{}", resp.render());

    // Hostile input #2: a deeply nested body. The parser's depth cap turns
    // it into `bad-request` instead of unbounded recursion.
    let nested = format!(
        r#"{{"id":2,"op":"stats","project":"evil","j":{}{}}}"#,
        "[".repeat(200),
        "]".repeat(200)
    );
    let resp = raw_roundtrip(&mut stream, &nested);
    assert_eq!(error_kind(&resp), "bad-request", "{}", resp.render());
    assert!(
        resp.get("error")
            .and_then(|e| e.get("message"))
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains("deep")),
        "{}",
        resp.render()
    );

    // Hostile input #3: a request whose memory budget cannot cover its own
    // analysis. It degrades — conservative answer, structured degradation —
    // rather than dying or lying.
    let r = call_ok(
        &o,
        &with_mem_budget(analyze_req(3, "analyze", "hungry", &sources_v1(), None), 0),
    );
    assert_eq!(r.get("mem_exhausted").and_then(Value::as_bool), Some(true), "{}", r.render());
    assert_eq!(r.get("degraded").and_then(Value::as_bool), Some(true), "{}", r.render());
    let degradations = r.get("degradations").and_then(Value::as_arr).expect("degradations");
    assert!(
        degradations
            .iter()
            .any(|v| v.as_str().is_some_and(|s| s.contains("memory"))),
        "memory exhaustion must be recorded as a degradation: {}",
        r.render()
    );

    // The same project with a real budget succeeds cleanly — exhaustion is
    // per-request state, and the success closes its failure streak.
    let r = call_ok(
        &o,
        &with_mem_budget(analyze_req(4, "analyze", "hungry", &sources_v1(), None), 512),
    );
    assert_eq!(r.get("mem_exhausted").and_then(Value::as_bool), Some(false), "{}", r.render());
    assert_eq!(r.get("degraded").and_then(Value::as_bool), Some(false), "{}", r.render());

    let () = healthy
        .into_iter()
        .for_each(|t| t.join().expect("healthy client thread panicked"));

    // The high-water mark moved (budgeted requests are accounted) and is
    // bounded: no request charged past the largest configured budget.
    let h = call_ok(&o, &plain_req(5, "health", "hungry"));
    let high_water = h
        .get("mem_high_water_bytes")
        .and_then(Value::as_u64)
        .expect("mem_high_water_bytes");
    assert!(high_water > 0, "{}", h.render());
    assert!(
        high_water <= 512 * 1024 * 1024,
        "high-water must stay bounded by the budget: {}",
        h.render()
    );
    assert_eq!(
        h.get("open_circuits").and_then(Value::as_arr).map(<[Value]>::len),
        Some(0),
        "one exhaustion then a success must not open the circuit: {}",
        h.render()
    );

    let s = call_ok(&o, &plain_req(6, "stats", "hungry"));
    assert!(result_u64(&s, "frame_too_large") >= 1, "{}", s.render());
    assert!(result_u64(&s, "mem_exhausted") >= 1, "{}", s.render());
    assert_eq!(result_u64(&s, "panics"), 0, "{}", s.render());

    call_ok(&o, &plain_req(7, "shutdown", "hungry"));
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

// ---------------------------------------------------------------------------
// The misbehaving-project scenarios need deterministic faults: a sticky
// per-project panic point and an off-checkpoint wedge loop.

#[cfg(feature = "fault-injection")]
mod faulty {
    use super::serve_common::*;
    use dragon::serve::{client, ClientOptions};
    use std::time::{Duration, Instant};
    use support::json::Value;
    use support::testdir::TestDir;

    #[test]
    fn toxic_project_opens_its_circuit_while_neighbors_serve() {
        let dir = TestDir::new("serve-toxic");
        // Long cool-down: the circuit must still be open when asserted.
        let mut d = Daemon::start(
            dir.join("d.sock"),
            &[
                "--workers",
                "2",
                "--circuit-threshold",
                "2",
                "--circuit-cooldown-ms",
                "60000",
            ],
            &[("ARAA_FAULTPOINT", "serve::project::toxic:always".to_string())],
        );
        let o = copts(&d.socket);
        // Retries would honor the 60 s circuit-open hint; these calls must
        // observe the raw responses instead.
        let no_retry = ClientOptions { retries: 0, ..o.clone() };

        let toxic_shard = support::hash::fnv1a(b"toxic") % 2;
        let neighbor = (0..64)
            .map(|i| format!("neighbor-{i}"))
            .find(|c| support::hash::fnv1a(c.as_bytes()) % 2 != toxic_shard)
            .expect("some candidate hashes to the other shard");

        // Every request to the toxic project panics; each panic is
        // contained and reported.
        for id in [1u64, 2] {
            let resp = client::call(
                &no_retry,
                &analyze_req(id, "analyze", "toxic", &sources_v1(), None),
            )
            .expect("contained panic still answers");
            assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false), "{}", resp.render());
            assert_eq!(error_kind(&resp), "panic", "{}", resp.render());
        }

        // Two consecutive failures reach the threshold: the breaker now
        // sheds before the request ever touches a worker.
        let resp = client::call(
            &no_retry,
            &analyze_req(3, "analyze", "toxic", &sources_v1(), None),
        )
        .expect("rejected at admission");
        assert_eq!(error_kind(&resp), "circuit-open", "{}", resp.render());
        assert!(
            resp.get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Value::as_u64)
                .is_some_and(|ms| ms > 0),
            "circuit rejections carry the cool-down hint: {}",
            resp.render()
        );

        // A neighbor project is untouched by the breaker.
        let r = call_ok(&o, &analyze_req(4, "analyze", &neighbor, &sources_v1(), None));
        assert_eq!(r.get("degraded").and_then(Value::as_bool), Some(false), "{}", r.render());

        let h = call_ok(&o, &plain_req(5, "health", &neighbor));
        let circuits = h.get("open_circuits").and_then(Value::as_arr).expect("open_circuits");
        assert!(
            circuits.iter().any(|v| v.as_str() == Some("toxic")),
            "{}",
            h.render()
        );

        let s = call_ok(&o, &plain_req(6, "stats", &neighbor));
        assert!(result_u64(&s, "panics") >= 2, "{}", s.render());
        assert!(result_u64(&s, "circuit_open") >= 1, "{}", s.render());

        call_ok(&o, &plain_req(7, "shutdown", &neighbor));
        assert!(d.wait_exit(Duration::from_secs(30)).success());
    }

    #[test]
    fn wedged_worker_is_replaced_and_requests_fail_structurally() {
        let dir = TestDir::new("serve-wedge-replace");
        let mut d = Daemon::start(
            dir.join("d.sock"),
            &["--workers", "1", "--heartbeat-grace-ms", "400"],
            &[("ARAA_FAULTPOINT", "serve::wedge:1".to_string())],
        );
        let o = copts(&d.socket);
        let no_retry = ClientOptions { retries: 0, ..o.clone() };

        // The first request spins off-checkpoint forever: no deadline token
        // can save it. The dispatcher abandons it shortly after
        // deadline + grace and answers structurally.
        let t0 = Instant::now();
        let resp = client::call(
            &no_retry,
            &analyze_req(1, "analyze", "stuck", &sources_v1(), Some(800)),
        )
        .expect("abandoned request still answers");
        let elapsed = t0.elapsed();
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false), "{}", resp.render());
        assert_eq!(error_kind(&resp), "deadline-expired", "{}", resp.render());
        assert!(
            resp.get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Value::as_u64)
                .is_some(),
            "{}",
            resp.render()
        );
        assert!(
            elapsed < Duration::from_secs(10),
            "abandonment must be prompt, not a hang: {elapsed:?}"
        );

        // The supervisor replaced the wedged thread: the (sole) worker slot
        // serves again, on a fresh generation.
        let r = call_ok(&o, &analyze_req(2, "analyze", "fresh", &sources_v1(), None));
        assert!(result_u64(&r, "rows") > 0, "{}", r.render());

        let h = call_ok(&o, &plain_req(3, "health", "fresh"));
        assert!(
            h.get("worker_replacements").and_then(Value::as_u64).is_some_and(|n| n >= 1),
            "{}",
            h.render()
        );
        let workers = h.get("workers").and_then(Value::as_arr).expect("workers");
        assert!(
            workers[0].get("generation").and_then(Value::as_u64).is_some_and(|g| g >= 1),
            "{}",
            h.render()
        );

        let s = call_ok(&o, &plain_req(4, "stats", "fresh"));
        assert!(result_u64(&s, "deadline_expired") >= 1, "{}", s.render());

        call_ok(&o, &plain_req(5, "shutdown", "fresh"));
        assert!(d.wait_exit(Duration::from_secs(30)).success());
    }
}
