//! Deterministic byte-level fuzzing of the `dragon serve` wire protocol.
//!
//! A seeded xorshift PRNG drives several generators — raw bytes, mutated
//! valid requests, truncations, deep nesting, near-cap and over-cap
//! strings — against a live daemon. The invariant under test is the
//! protocol-hardening contract: **every complete frame gets exactly one
//! structured JSON response on the same connection**, the daemon never
//! closes mid-conversation, never kills a worker, and still answers the
//! control plane after the storm. Same seed, same byte stream: a failure
//! here reproduces exactly.

mod serve_common;

use serve_common::*;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;
use support::json::Value;
use support::testdir::TestDir;

/// Deterministic xorshift64 stream; the whole fuzz run derives from SEED.
struct Rng(u64);

const SEED: u64 = 0x5eed_da7a_0b5e_55ed;
const CONNECTIONS: usize = 6;
const FRAMES_PER_CONNECTION: usize = 40;
const FRAME_CAP: usize = 65_536;

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One fuzz frame: arbitrary bytes, newline-free, never whitespace-only
/// (a whitespace-only line is legitimately ignored by the server, which
/// would break the one-response-per-frame accounting this test relies on).
fn gen_frame(rng: &mut Rng, valid: &str) -> Vec<u8> {
    let mut payload: Vec<u8> = match rng.below(8) {
        // Raw bytes, including invalid UTF-8 and control characters.
        0 => (0..1 + rng.below(256)).map(|_| (rng.next() & 0xff) as u8).collect(),
        // Printable ASCII garbage.
        1 => (0..1 + rng.below(256)).map(|_| b' ' + (rng.next() % 95) as u8).collect(),
        // A valid request with a few random bytes flipped.
        2 => {
            let mut bytes = valid.as_bytes().to_vec();
            for _ in 0..1 + rng.below(4) {
                let i = rng.below(bytes.len());
                bytes[i] = b' ' + (rng.next() % 95) as u8;
            }
            bytes
        }
        // A valid request truncated mid-frame.
        3 => valid.as_bytes()[..1 + rng.below(valid.len())].to_vec(),
        // A valid request with trailing garbage.
        4 => {
            let mut bytes = valid.as_bytes().to_vec();
            bytes.extend((0..rng.below(64)).map(|_| b' ' + (rng.next() % 95) as u8));
            bytes
        }
        // Deep nesting: some depths exceed the parser's cap.
        5 => {
            let depth = 1 + rng.below(100);
            let mut s = String::from(r#"{"id":1,"op":"stats","project":"fuzz","j":"#);
            s.extend(std::iter::repeat_n('[', depth));
            s.extend(std::iter::repeat_n(']', depth));
            s.push('}');
            s.into_bytes()
        }
        // A huge string field straddling the frame cap from either side.
        6 => {
            let pad = FRAME_CAP - 1024 + rng.below(4096);
            format!(r#"{{"id":2,"op":"stats","project":"fuzz","pad":"{}"}}"#, "x".repeat(pad))
                .into_bytes()
        }
        // The valid request verbatim: the daemon must still say yes.
        _ => valid.as_bytes().to_vec(),
    };
    for b in &mut payload {
        if *b == b'\n' {
            *b = b' ';
        }
    }
    if !payload.iter().any(|b| (b'!'..=b'~').contains(b)) {
        payload.push(b'x');
    }
    payload
}

#[test]
fn fuzzed_frames_always_get_one_structured_response() {
    let dir = TestDir::new("serve-fuzz");
    let mut d = Daemon::start(
        dir.join("d.sock"),
        &[
            "--workers",
            "2",
            "--max-frame-bytes",
            &FRAME_CAP.to_string(),
            "--deadline-ms",
            "10000",
        ],
        &[],
    );
    let mut rng = Rng(SEED);
    let valid = plain_req(1, "stats", "fuzz").render();
    // A real job sprinkled into the storm: the worker path must stay
    // healthy while the connection layer absorbs garbage.
    let analyze = analyze_req(
        7,
        "analyze",
        "fuzz",
        &[("tiny.f", "program main\n  real a(2)\n  a(1) = 0.0\nend\n")],
        Some(10_000),
    )
    .render();

    let mut oks = 0u64;
    let mut errors = 0u64;
    for _ in 0..CONNECTIONS {
        let stream = UnixStream::connect(&d.socket).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(60))))
            .expect("timeouts");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        for i in 0..FRAMES_PER_CONNECTION {
            let payload = if i % 10 == 9 {
                analyze.as_bytes().to_vec()
            } else {
                gen_frame(&mut rng, &valid)
            };
            writer
                .write_all(&payload)
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .expect("daemon keeps accepting frames");
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("daemon answers every frame");
            assert!(n > 0, "daemon must not close the connection mid-conversation");
            let resp = Value::parse(line.trim())
                .unwrap_or_else(|e| panic!("non-JSON response to fuzz frame: {e}\n{line}"));
            match resp.get("ok").and_then(Value::as_bool) {
                Some(true) => oks += 1,
                Some(false) => {
                    errors += 1;
                    let kind = error_kind(&resp);
                    assert!(
                        matches!(
                            kind.as_str(),
                            "bad-request" | "frame-too-large" | "overloaded"
                        ),
                        "unexpected error kind under fuzz: {}",
                        resp.render()
                    );
                }
                None => panic!("response without an `ok` field: {}", resp.render()),
            }
        }
    }
    // The generators guarantee both outcomes occur: verbatim/analyze frames
    // succeed, garbage frames fail structurally.
    assert!(oks > 0, "no fuzz frame succeeded — generator drift?");
    assert!(errors > 0, "no fuzz frame was rejected — generator drift?");

    // After the storm: control plane intact, no worker ever needed
    // replacing, and a normal client round-trip still works.
    let o = copts(&d.socket);
    let h = call_ok(&o, &plain_req(900, "health", "fuzz"));
    assert_eq!(
        h.get("worker_replacements").and_then(Value::as_u64),
        Some(0),
        "fuzzing the protocol must never wedge a worker: {}",
        h.render()
    );
    assert_eq!(
        h.get("open_circuits").and_then(Value::as_arr).map(<[Value]>::len),
        Some(0),
        "{}",
        h.render()
    );
    let r = call_ok(&o, &analyze_req(901, "analyze", "post-storm", &sources_v1(), None));
    assert_eq!(r.get("degraded").and_then(Value::as_bool), Some(false), "{}", r.render());

    call_ok(&o, &plain_req(902, "shutdown", "fuzz"));
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}
