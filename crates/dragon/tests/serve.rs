//! End-to-end tests of the `dragon serve` daemon and its client: the full
//! request lifecycle, restart recovery, protocol robustness, and — under
//! `--features fault-injection` — deadline enforcement, admission control,
//! and panic containment with a *live* wedged worker.

mod serve_common;

use serve_common::*;
use std::os::unix::net::UnixStream;
use std::time::Duration;
use support::json::Value;
use support::testdir::TestDir;

// ---------------------------------------------------------------------------
// Lifecycle and recovery

#[test]
fn serve_lifecycle_analyze_lint_query_stats_shutdown() {
    let dir = TestDir::new("serve-e2e");
    let cache = dir.join("cache");
    let mut d = Daemon::start(
        dir.join("d.sock"),
        &["--cache-root", cache.to_str().expect("utf8"), "--workers", "2"],
        &[],
    );
    let o = copts(&d.socket);

    let r = call_ok(&o, &analyze_req(1, "analyze", "alpha", &sources_v1(), None));
    assert_eq!(result_u64(&r, "procedures"), 3, "{}", r.render());
    assert!(result_u64(&r, "rows") > 0, "{}", r.render());
    assert_eq!(r.get("degraded").and_then(Value::as_bool), Some(false));
    assert_eq!(r.get("deadline_expired").and_then(Value::as_bool), Some(false));

    // Reanalyze the edit: the warm session reuses the unchanged summaries.
    let r = call_ok(&o, &analyze_req(2, "reanalyze", "alpha", &sources_v2(), None));
    assert!(result_u64(&r, "summary_cache_hits") >= 1, "{}", r.render());

    let r = call_ok(&o, &plain_req(3, "lint", "alpha"));
    assert!(r.get("findings").and_then(Value::as_arr).is_some(), "{}", r.render());

    let r = call_ok(&o, &plain_req(4, "query-rgn", "alpha"));
    let rgn = r.get("rgn").and_then(Value::as_str).expect("rgn string");
    assert!(rgn.contains('a') && !rgn.is_empty());

    let r = call_ok(&o, &plain_req(5, "stats", "alpha"));
    assert!(result_u64(&r, "requests") >= 5, "{}", r.render());
    assert!(result_u64(&r, "sessions") >= 1, "{}", r.render());
    assert_eq!(result_u64(&r, "workers"), 2, "{}", r.render());
    assert_eq!(result_u64(&r, "panics"), 0, "{}", r.render());

    // Reanalyze of a project the daemon has never seen must not silently
    // cold-start a session.
    let resp = dragon::serve::client::call(
        &o,
        &analyze_req(6, "reanalyze", "typo", &sources_v1(), None),
    )
    .expect("call");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(error_kind(&resp), "bad-request");

    let r = call_ok(&o, &plain_req(7, "shutdown", "alpha"));
    assert_eq!(r.get("draining").and_then(Value::as_bool), Some(true));
    let status = d.wait_exit(Duration::from_secs(30));
    assert!(status.success(), "graceful shutdown exits cleanly: {status}");

    // The drain persisted the session and removed the socket.
    let pdir = cache.join(format!("p{:016x}", support::hash::fnv1a(b"alpha")));
    assert!(pdir.join("manifest.araa").exists(), "session persisted at drain");
    assert!(pdir.join("project.name").exists());
    assert!(!d.socket.exists(), "socket removed on clean exit");
}

#[test]
fn restart_recovers_sessions_and_serves_identical_bytes() {
    let dir = TestDir::new("serve-recover");
    let cache = dir.join("cache");
    let cache_str = cache.to_str().expect("utf8").to_string();
    let cache_args = ["--cache-root", cache_str.as_str()];

    let rgn_before;
    {
        let mut d = Daemon::start(dir.join("d.sock"), &cache_args, &[]);
        let o = copts(&d.socket);
        call_ok(&o, &analyze_req(1, "analyze", "beta", &sources_v1(), None));
        let r = call_ok(&o, &plain_req(2, "query-rgn", "beta"));
        rgn_before = r.get("rgn").and_then(Value::as_str).expect("rgn").to_string();
        call_ok(&o, &plain_req(3, "shutdown", "beta"));
        assert!(d.wait_exit(Duration::from_secs(30)).success());
    }

    // A fresh daemon over the same cache root warms the session at startup:
    // the very first request is a query against recovered state, and the
    // answer is byte-identical to the pre-restart one.
    let mut d = Daemon::start(dir.join("d.sock"), &cache_args, &[]);
    let o = copts(&d.socket);
    let r = call_ok(&o, &plain_req(10, "query-rgn", "beta"));
    let rgn_after = r.get("rgn").and_then(Value::as_str).expect("rgn");
    assert_eq!(rgn_after, rgn_before, "recovered session must serve identical bytes");
    let r = call_ok(&o, &plain_req(11, "stats", "beta"));
    assert!(result_u64(&r, "sessions") >= 1, "{}", r.render());
    call_ok(&o, &plain_req(12, "shutdown", "beta"));
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

// ---------------------------------------------------------------------------
// Protocol robustness

#[test]
fn malformed_requests_get_responses_not_disconnects() {
    let dir = TestDir::new("serve-proto");
    let mut d = Daemon::start(dir.join("d.sock"), &[], &[]);
    let mut stream = UnixStream::connect(&d.socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");

    let resp = raw_roundtrip(&mut stream, "this is not json");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(error_kind(&resp), "bad-request");

    let resp = raw_roundtrip(&mut stream, r#"{"id":5,"op":"levitate"}"#);
    assert_eq!(resp.get("id").and_then(Value::as_u64), Some(5), "id echoed");
    assert_eq!(error_kind(&resp), "bad-request");

    let resp = raw_roundtrip(&mut stream, r#"{"id":6,"op":"analyze","sources":[]}"#);
    assert_eq!(error_kind(&resp), "bad-request");

    // Three bad requests later, the same connection still serves.
    let resp = raw_roundtrip(&mut stream, &plain_req(7, "stats", "x").render());
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));

    let o = copts(&d.socket);
    call_ok(&o, &plain_req(8, "shutdown", "x"));
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn stale_socket_is_reclaimed_and_live_socket_refused() {
    let dir = TestDir::new("serve-sock");
    let socket = dir.join("d.sock");
    // Litter from a crashed daemon: a path with no listener behind it.
    std::fs::write(&socket, b"stale").expect("write litter");
    let mut d = Daemon::start(socket.clone(), &[], &[]);

    // A second daemon against the *live* socket must refuse, fast.
    let out = dragon()
        .args(["serve", "--socket", socket.to_str().expect("utf8")])
        .output()
        .expect("run second daemon");
    assert!(!out.status.success(), "second daemon must refuse to start");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("live daemon"), "{stderr}");

    let o = copts(&d.socket);
    call_ok(&o, &plain_req(1, "shutdown", "x"));
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn client_subcommand_round_trips() {
    let dir = TestDir::new("serve-cli");
    let mut d = Daemon::start(dir.join("d.sock"), &[], &[]);
    let socket = d.socket.to_str().expect("utf8").to_string();
    let src = dir.join("small.f");
    std::fs::write(
        &src,
        "program main\n  real a(5)\n  common /g/ a\n  integer i\n  do i = 1, 5\n    a(i) = 0.0\n  end do\nend\n",
    )
    .expect("write source");
    let out = dragon()
        .args([
            "client",
            "--socket",
            &socket,
            "analyze",
            "--project",
            "cli-demo",
            src.to_str().expect("utf8"),
        ])
        .output()
        .expect("run client");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let resp = Value::parse(stdout.trim()).expect("client prints the response JSON");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{stdout}");

    let out = dragon()
        .args(["client", "--socket", &socket, "levitate"])
        .output()
        .expect("run client");
    assert!(!out.status.success(), "unknown op must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown op"));

    let out = dragon()
        .args(["client", "--socket", &socket, "shutdown"])
        .output()
        .expect("run client");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn health_op_frame_cap_and_client_ping() {
    let dir = TestDir::new("serve-health");
    let mut d = Daemon::start(
        dir.join("d.sock"),
        &["--workers", "2", "--max-frame-bytes", "4096"],
        &[],
    );
    let o = copts(&d.socket);

    // Warm one session so health has something to report.
    call_ok(&o, &analyze_req(1, "analyze", "alpha", &sources_v1(), None));

    let h = call_ok(&o, &plain_req(2, "health", "alpha"));
    assert!(h.get("uptime_ms").and_then(Value::as_u64).is_some(), "{}", h.render());
    let workers = h.get("workers").and_then(Value::as_arr).expect("workers array");
    assert_eq!(workers.len(), 2, "{}", h.render());
    assert!(
        workers[0].get("heartbeat_age_ms").and_then(Value::as_u64).is_some(),
        "{}",
        h.render()
    );
    assert_eq!(
        h.get("open_circuits").and_then(Value::as_arr).map(<[Value]>::len),
        Some(0),
        "{}",
        h.render()
    );
    assert_eq!(h.get("worker_replacements").and_then(Value::as_u64), Some(0));
    // No server-wide budget configured: the field reports null.
    assert!(matches!(h.get("mem_budget_mb"), Some(Value::Null)), "{}", h.render());
    assert!(result_u64(&h, "sessions") >= 1, "{}", h.render());

    // An oversized frame gets a structured error, and the stream resyncs
    // at its newline: the next frame on the same connection still serves.
    let mut stream = UnixStream::connect(&d.socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let resp = raw_roundtrip(
        &mut stream,
        &format!(
            r#"{{"id":3,"op":"stats","project":"alpha","pad":"{}"}}"#,
            "x".repeat(8192)
        ),
    );
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false), "{}", resp.render());
    assert_eq!(error_kind(&resp), "frame-too-large", "{}", resp.render());
    let resp = raw_roundtrip(&mut stream, &plain_req(4, "stats", "alpha").render());
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{}", resp.render());
    assert!(
        result_u64(resp.get("result").expect("result"), "frame_too_large") >= 1,
        "{}",
        resp.render()
    );

    // `dragon client ping` renders the one-line human summary.
    let socket = d.socket.to_str().expect("utf8").to_string();
    let out = dragon()
        .args(["client", "--socket", &socket, "ping"])
        .output()
        .expect("run ping");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("daemon ok:"), "{stdout}");

    call_ok(&o, &plain_req(5, "shutdown", "alpha"));
    assert!(d.wait_exit(Duration::from_secs(30)).success());
}

// ---------------------------------------------------------------------------
// Deadlines, admission control, and panic containment need a way to wedge
// a worker deterministically: the armable `stall::ipl` faultpoint.

#[cfg(feature = "fault-injection")]
mod faulty {
    use super::serve_common::*;
    use dragon::serve::{client, ClientOptions};
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};
    use support::json::Value;
    use support::testdir::TestDir;

    /// Two project names guaranteed to land on different workers of a
    /// two-worker daemon (sharding is by fnv1a of the project name).
    fn split_projects() -> (String, String) {
        let first = "wedge".to_string();
        let shard = support::hash::fnv1a(first.as_bytes()) % 2;
        for i in 0..64 {
            let cand = format!("steady-{i}");
            if support::hash::fnv1a(cand.as_bytes()) % 2 != shard {
                return (first, cand);
            }
        }
        unreachable!("some candidate hashes to the other shard");
    }

    #[test]
    fn wedged_request_degrades_within_deadline_and_peers_are_unaffected() {
        let dir = TestDir::new("serve-wedge");
        let mut d = Daemon::start(
            dir.join("d.sock"),
            &["--workers", "2"],
            &[("ARAA_FAULTPOINT", "stall::ipl:1".to_string())],
        );
        let (wedge, steady) = split_projects();
        let o = copts(&d.socket);

        // The wedge: its first summarize stalls in a budget-charging loop
        // (~8 s at the default budget). Its 1500 ms deadline must cut that
        // short with a *degraded answer*, never a hang or an error.
        let wo = ClientOptions { retries: 0, ..o.clone() };
        let wedge_req = analyze_req(1, "analyze", &wedge, &sources_v1(), Some(1500));
        let wedge_thread = std::thread::spawn(move || {
            let t0 = Instant::now();
            let resp = client::call(&wo, &wedge_req).expect("wedged call still answers");
            (resp, t0.elapsed())
        });

        // Meanwhile the other worker keeps serving at full speed.
        std::thread::sleep(Duration::from_millis(400));
        let t0 = Instant::now();
        let r = call_ok(&o, &analyze_req(2, "analyze", &steady, &sources_v1(), None));
        let steady_elapsed = t0.elapsed();
        assert_eq!(r.get("degraded").and_then(Value::as_bool), Some(false), "{}", r.render());
        assert_eq!(r.get("deadline_expired").and_then(Value::as_bool), Some(false));
        assert!(
            steady_elapsed < Duration::from_secs(5),
            "peer project must be unaffected by the wedge: {steady_elapsed:?}"
        );

        let (resp, wedge_elapsed) = wedge_thread.join().expect("wedge thread");
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "deadline expiry degrades, it does not error: {}",
            resp.render()
        );
        let result = resp.get("result").expect("result");
        assert_eq!(
            result.get("deadline_expired").and_then(Value::as_bool),
            Some(true),
            "{}",
            resp.render()
        );
        assert_eq!(result.get("degraded").and_then(Value::as_bool), Some(true));
        assert!(
            wedge_elapsed < Duration::from_secs(6),
            "deadline must cut the ~8 s stall short: {wedge_elapsed:?}"
        );

        let r = call_ok(&o, &plain_req(3, "stats", &steady));
        assert!(result_u64(&r, "deadline_expired") >= 1, "{}", r.render());
        call_ok(&o, &plain_req(4, "shutdown", &steady));
        assert!(d.wait_exit(Duration::from_secs(30)).success());
    }

    #[test]
    fn overload_sheds_with_structured_responses_never_drops() {
        let dir = TestDir::new("serve-shed");
        let mut d = Daemon::start(
            dir.join("d.sock"),
            &["--workers", "1", "--queue-depth", "1"],
            &[("ARAA_FAULTPOINT", "stall::ipl:1".to_string())],
        );
        let o = copts(&d.socket);

        // Occupy the only worker for ~2.5 s.
        let wo = ClientOptions { retries: 0, ..o.clone() };
        let wedge_req = analyze_req(1, "analyze", "busy", &sources_v1(), Some(2500));
        let wedge = std::thread::spawn(move || client::call(&wo, &wedge_req));

        // Fill the single queue slot with a request that will eventually
        // complete once the wedge clears.
        std::thread::sleep(Duration::from_millis(500));
        let qo = ClientOptions { retries: 0, ..o.clone() };
        let queued_req = analyze_req(2, "analyze", "busy", &sources_v1(), Some(30_000));
        let queued = std::thread::spawn(move || client::call(&qo, &queued_req));

        // Now the queue is full: the next request must get a structured
        // `overloaded` response with a retry hint — on a connection that
        // stays open and keeps serving control-plane ops.
        std::thread::sleep(Duration::from_millis(500));
        let mut stream = UnixStream::connect(&d.socket).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let resp = raw_roundtrip(
            &mut stream,
            &analyze_req(3, "analyze", "busy", &sources_v1(), None).render(),
        );
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false), "{}", resp.render());
        assert_eq!(error_kind(&resp), "overloaded", "{}", resp.render());
        assert!(
            resp.get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Value::as_u64)
                .is_some(),
            "shed responses carry a retry hint: {}",
            resp.render()
        );
        let stats = raw_roundtrip(&mut stream, &plain_req(4, "stats", "busy").render());
        assert_eq!(stats.get("ok").and_then(Value::as_bool), Some(true));
        assert!(
            result_u64(stats.get("result").expect("result"), "shed") >= 1,
            "{}",
            stats.render()
        );

        // Both in-flight requests complete: shedding never cancels
        // accepted work.
        let wedged = wedge.join().expect("join").expect("wedge answered");
        assert_eq!(wedged.get("ok").and_then(Value::as_bool), Some(true));
        let queued = queued.join().expect("join").expect("queued answered");
        assert_eq!(queued.get("ok").and_then(Value::as_bool), Some(true), "{}", queued.render());

        call_ok(&o, &plain_req(5, "shutdown", "busy"));
        assert!(d.wait_exit(Duration::from_secs(30)).success());
    }

    #[test]
    fn persist_panic_is_contained_and_session_resets() {
        let dir = TestDir::new("serve-panic");
        let cache = dir.join("cache");
        let mut d = Daemon::start(
            dir.join("d.sock"),
            &["--cache-root", cache.to_str().expect("utf8")],
            &[("ARAA_FAULTPOINT", "persist::pre_manifest:1".to_string())],
        );
        let o = copts(&d.socket);

        // The commit panics mid-flight; the response reports it and the
        // session is reset — and crucially the daemon is still up.
        let resp = client::call(&o, &analyze_req(1, "analyze", "gamma", &sources_v1(), None))
            .expect("call");
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false), "{}", resp.render());
        assert_eq!(error_kind(&resp), "panic", "{}", resp.render());
        assert!(
            resp.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Value::as_str)
                .is_some_and(|m| m.contains("session reset")),
            "{}",
            resp.render()
        );

        let r = call_ok(&o, &plain_req(2, "stats", "gamma"));
        assert_eq!(result_u64(&r, "panics"), 1, "{}", r.render());

        // The faultpoint fired once and disarmed: the retried request runs
        // on a rewarmed session and succeeds end to end.
        let r = call_ok(&o, &analyze_req(3, "analyze", "gamma", &sources_v1(), None));
        assert!(result_u64(&r, "rows") > 0, "{}", r.render());
        let r = call_ok(&o, &plain_req(4, "query-rgn", "gamma"));
        assert!(r.get("rgn").and_then(Value::as_str).is_some());

        call_ok(&o, &plain_req(5, "shutdown", "gamma"));
        assert!(d.wait_exit(Duration::from_secs(30)).success());
    }
}
