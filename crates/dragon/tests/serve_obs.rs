//! End-to-end tests of the serve observability plane: request-scoped
//! trace ids across the wire, the `metrics` / `query-log` / `profile`
//! ops, byte-deterministic logical-clock snapshots, and the sealed
//! periodic snapshot file.

mod serve_common;

use serve_common::*;
use std::time::Duration;
use support::json::{obj, Value};
use support::testdir::TestDir;

fn traced_req(id: u64, op: &str, project: &str, trace: &str) -> Value {
    obj([
        ("id", Value::int(id)),
        ("op", Value::str(op)),
        ("project", Value::str(project)),
        ("trace", Value::str(trace)),
    ])
}

fn resp_trace(resp: &Value) -> String {
    resp.get("trace")
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("response lacks trace: {}", resp.render()))
        .to_string()
}

#[test]
fn every_response_echoes_the_request_trace() {
    let dir = TestDir::new("serve-obs-trace");
    let mut _d = Daemon::start(
        dir.join("d.sock"),
        &["--cache-root", dir.join("cache").to_str().expect("utf8")],
        &[],
    );
    let o = copts(&dir.join("d.sock"));

    // Client-supplied trace ids echo back on worker ops, control ops, and
    // error responses alike.
    let mut req = analyze_req(1, "analyze", "alpha", &sources_v1(), None);
    if let Value::Obj(map) = &mut req {
        map.insert("trace".to_string(), Value::str("trace-analyze-1"));
    }
    let resp = dragon::serve::client::call(&o, &req).expect("analyze");
    assert_eq!(resp_trace(&resp), "trace-analyze-1", "{}", resp.render());

    let resp = dragon::serve::client::call(&o, &traced_req(2, "stats", "alpha", "trace-stats"))
        .expect("stats");
    assert_eq!(resp_trace(&resp), "trace-stats");

    // A request rejected at parse time (reanalyze without sources) still
    // echoes the salvageable client trace.
    let resp = dragon::serve::client::call(
        &o,
        &traced_req(3, "reanalyze", "no-such-project", "trace-parse-err"),
    )
    .expect("reanalyze parse error");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(resp_trace(&resp), "trace-parse-err", "parse errors echo the trace too");

    // A worker-side error (unknown project with well-formed sources) does
    // the same.
    let mut req = analyze_req(4, "reanalyze", "no-such-project", &sources_v1(), None);
    if let Value::Obj(map) = &mut req {
        map.insert("trace".to_string(), Value::str("trace-worker-err"));
    }
    let resp = dragon::serve::client::call(&o, &req).expect("reanalyze worker error");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(resp_trace(&resp), "trace-worker-err", "worker errors echo the trace too");

    // Without a client trace the daemon mints one.
    let resp = dragon::serve::client::call(&o, &plain_req(4, "health", "alpha")).expect("health");
    let minted = resp_trace(&resp);
    assert!(minted.starts_with("t-"), "minted trace {minted:?}");
}

#[test]
fn concurrent_clients_never_observe_a_foreign_trace() {
    let dir = TestDir::new("serve-obs-concurrent");
    let socket = dir.join("d.sock");
    let mut _d = Daemon::start(
        socket.clone(),
        &["--cache-root", dir.join("cache").to_str().expect("utf8"), "--workers", "2"],
        &[],
    );
    let o = copts(&socket);
    call_ok(&o, &analyze_req(1, "analyze", "shared", &sources_v1(), None));

    let handles: Vec<_> = (0..4)
        .map(|c| {
            let o = copts(&socket);
            std::thread::spawn(move || {
                for i in 0..10 {
                    let mine = format!("cli-{c}-{i}");
                    let resp = dragon::serve::client::call(
                        &o,
                        &traced_req(i, "query-rgn", "shared", &mine),
                    )
                    .expect("query-rgn");
                    assert_eq!(
                        resp_trace(&resp),
                        mine,
                        "interleaved client saw a foreign trace: {}",
                        resp.render()
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
}

#[test]
fn query_log_joins_server_records_with_client_traffic() {
    let dir = TestDir::new("serve-obs-log");
    let mut _d = Daemon::start(
        dir.join("d.sock"),
        &["--cache-root", dir.join("cache").to_str().expect("utf8")],
        &[],
    );
    let o = copts(&dir.join("d.sock"));

    let mut req = analyze_req(1, "analyze", "alpha", &sources_v1(), None);
    if let Value::Obj(map) = &mut req {
        map.insert("trace".to_string(), Value::str("join-me"));
    }
    let t = std::time::Instant::now();
    let resp = dragon::serve::client::call(&o, &req).expect("analyze");
    let client_ns = t.elapsed().as_nanos() as u64;
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    call_ok(&o, &plain_req(2, "query-rgn", "alpha"));

    let log = call_ok(&o, &plain_req(3, "query-log", "alpha"));
    let entries = log.get("entries").and_then(Value::as_arr).expect("entries");
    assert!(entries.len() >= 2, "{}", log.render());
    let joined = entries
        .iter()
        .find(|e| e.get("trace").and_then(Value::as_str) == Some("join-me"))
        .unwrap_or_else(|| panic!("log lacks trace join-me: {}", log.render()));
    assert_eq!(joined.get("op").and_then(Value::as_str), Some("analyze"));
    assert_eq!(joined.get("outcome").and_then(Value::as_str), Some("ok"));
    let server_ns = joined.get("latency_units").and_then(Value::as_u64).expect("latency");
    // The server-side latency includes queue wait but not client-side
    // connect/serialize time, so it must sit inside the client's window.
    assert!(server_ns > 0);
    assert!(
        server_ns <= client_ns,
        "server latency {server_ns} ns exceeds the client-observed {client_ns} ns"
    );
    assert!(joined.get("worker").and_then(Value::as_u64).is_some(), "{}", joined.render());
    assert!(joined.get("generation").and_then(Value::as_u64).is_some());

    // Project filtering: an unrelated project sees none of alpha's rows.
    let other = call_ok(&o, &plain_req(4, "query-log", "beta"));
    let none = other.get("entries").and_then(Value::as_arr).expect("entries");
    assert!(none.is_empty(), "{}", other.render());
}

#[test]
fn metrics_op_serves_json_and_prometheus() {
    let dir = TestDir::new("serve-obs-metrics");
    let mut _d = Daemon::start(
        dir.join("d.sock"),
        &["--cache-root", dir.join("cache").to_str().expect("utf8")],
        &[],
    );
    let o = copts(&dir.join("d.sock"));
    call_ok(&o, &analyze_req(1, "analyze", "alpha", &sources_v1(), None));
    call_ok(&o, &analyze_req(2, "reanalyze", "alpha", &sources_v2(), None));
    call_ok(&o, &plain_req(3, "query-rgn", "alpha"));

    let m = call_ok(&o, &plain_req(4, "metrics", "alpha"));
    assert!(m.get("requests_total").and_then(Value::as_u64).unwrap_or(0) >= 3);
    let ops = m.get("ops").and_then(Value::as_obj).expect("ops");
    let analyze = ops.get("analyze").expect("analyze op");
    assert_eq!(analyze.get("count").and_then(Value::as_u64), Some(1));
    let lat = analyze.get("latency").expect("latency");
    let p50 = lat.get("p50_units").and_then(Value::as_u64).expect("p50");
    let p99 = lat.get("p99_units").and_then(Value::as_u64).expect("p99");
    assert!(p50 > 0 && p50 <= p99, "p50 {p50} p99 {p99}");
    let bounds = lat.get("bounds").and_then(Value::as_arr).expect("bounds");
    let counts = lat.get("counts").and_then(Value::as_arr).expect("counts");
    assert_eq!(bounds.len(), counts.len(), "bucket vectors stay aligned");
    let projects = m.get("projects").and_then(Value::as_arr).expect("projects");
    assert!(
        projects
            .iter()
            .any(|p| p.get("project").and_then(Value::as_str) == Some("alpha")),
        "{}",
        m.render()
    );

    let mut req = plain_req(5, "metrics", "alpha");
    if let Value::Obj(map) = &mut req {
        map.insert("format".to_string(), Value::str("prometheus"));
    }
    let p = call_ok(&o, &req);
    let body = p.get("body").and_then(Value::as_str).expect("prometheus body");
    assert!(body.contains("# TYPE araa_serve_requests_total counter"), "{body}");
    assert!(body.contains("araa_serve_requests_total{op=\"analyze\",outcome=\"ok\"} 1"), "{body}");
    assert!(body.contains("# TYPE araa_serve_latency_units histogram"), "{body}");
    assert!(body.contains("le=\"+Inf\""), "{body}");

    // An unknown format is a structured bad-request, not a hang or a drop.
    if let Value::Obj(map) = &mut req {
        map.insert("format".to_string(), Value::str("xml"));
    }
    let resp = dragon::serve::client::call(&o, &req).expect("call");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(error_kind(&resp), "bad-request");
}

#[test]
fn profile_op_ranks_hot_procedures() {
    let dir = TestDir::new("serve-obs-profile");
    let mut _d = Daemon::start(
        dir.join("d.sock"),
        &["--cache-root", dir.join("cache").to_str().expect("utf8")],
        &[],
    );
    let o = copts(&dir.join("d.sock"));
    // The first request per project is always sampled.
    call_ok(&o, &analyze_req(1, "analyze", "alpha", &sources_v1(), None));

    let prof = call_ok(&o, &plain_req(2, "profile", "alpha"));
    let projects = prof.get("projects").and_then(Value::as_arr).expect("projects");
    let alpha = projects
        .iter()
        .find(|p| p.get("project").and_then(Value::as_str) == Some("alpha"))
        .unwrap_or_else(|| panic!("no alpha profile: {}", prof.render()));
    assert!(alpha.get("samples").and_then(Value::as_u64).unwrap_or(0) >= 1);
    let procs = alpha.get("procs").and_then(Value::as_arr).expect("procs");
    assert!(!procs.is_empty(), "sampled analyze produced no procedure spans");
    // The fixture's procedures are main/mid/leaf; the ranking must name
    // real procedures with nonzero time.
    for p in procs {
        let name = p.get("proc").and_then(Value::as_str).expect("proc name");
        assert!(
            ["main", "mid", "leaf"].contains(&name),
            "unexpected procedure {name:?}"
        );
        assert!(p.get("total_units").and_then(Value::as_u64).unwrap_or(0) > 0);
    }
}

/// Runs one fixed traffic script against a fresh logical-clock daemon and
/// returns the rendered `metrics` snapshot (with the per-run trace id of
/// the metrics request itself stripped).
fn logical_metrics_run(dir: &TestDir, name: &str) -> String {
    let socket = dir.join(&format!("{name}.sock"));
    let cache = dir.join(&format!("{name}-cache"));
    let mut _d = Daemon::start(
        socket.clone(),
        &[
            "--cache-root",
            cache.to_str().expect("utf8"),
            "--workers",
            "2",
        ],
        &[("ARAA_OBS_CLOCK", "logical".to_string())],
    );
    let o = copts(&socket);
    call_ok(&o, &analyze_req(1, "analyze", "alpha", &sources_v1(), None));
    call_ok(&o, &analyze_req(2, "reanalyze", "alpha", &sources_v2(), None));
    call_ok(&o, &plain_req(3, "query-rgn", "alpha"));
    call_ok(&o, &analyze_req(4, "analyze", "beta", &sources_v1(), None));
    // An error is part of the script too: its outcome counter must land
    // in the same bucket both runs.
    let resp = dragon::serve::client::call(
        &o,
        &plain_req(5, "lint", "never-analyzed"),
    )
    .expect("lint error");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    call_ok(&o, &plain_req(6, "metrics", "alpha")).render()
}

#[test]
fn logical_clock_metrics_snapshots_are_byte_identical() {
    let dir = TestDir::new("serve-obs-determinism");
    let a = logical_metrics_run(&dir, "a");
    let b = logical_metrics_run(&dir, "b");
    assert!(a.contains("\"clock\":\"logical\""), "{a}");
    assert_eq!(a, b, "two identical logical-clock replays diverged");
    // Wall-clock and memory fields are zeroed under the logical clock.
    assert!(a.contains("\"uptime_ms\":0"), "{a}");
    assert!(a.contains("\"mem_high_water_bytes\":0"), "{a}");
}

#[test]
fn periodic_snapshot_file_is_checksum_sealed() {
    let dir = TestDir::new("serve-obs-snapshot");
    let snap = dir.join("metrics.snapshot");
    let mut d = Daemon::start(
        dir.join("d.sock"),
        &[
            "--cache-root",
            dir.join("cache").to_str().expect("utf8"),
            "--metrics-interval-ms",
            "50",
            "--metrics-snapshot",
            snap.to_str().expect("utf8"),
        ],
        &[],
    );
    let o = copts(&dir.join("d.sock"));
    call_ok(&o, &analyze_req(1, "analyze", "alpha", &sources_v1(), None));
    // Let at least one periodic snapshot land, then drain (which writes a
    // final one).
    std::thread::sleep(Duration::from_millis(200));
    let resp = dragon::serve::client::call(&o, &plain_req(2, "shutdown", "alpha"))
        .expect("shutdown");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    d.wait_exit(Duration::from_secs(30));

    let text = std::fs::read_to_string(&snap).expect("snapshot file exists");
    // verify_text_checksum accepts trailer-less documents, so assert the
    // seal is actually present before verifying it.
    assert!(
        text.contains(support::persist::TEXT_CHECKSUM_PREFIX),
        "snapshot is not checksum-sealed:\n{text}"
    );
    support::persist::verify_text_checksum(&text)
        .unwrap_or_else(|e| panic!("snapshot checksum: {e}\n{text}"));
    let body = text.lines().next().expect("snapshot body line");
    let doc = Value::parse(body).expect("snapshot parses");
    assert!(doc.get("requests_total").and_then(Value::as_u64).unwrap_or(0) >= 1);
}
