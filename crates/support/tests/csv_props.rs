//! Property tests for the CSV layer: arbitrary field content must survive a
//! write→parse round trip (the `.rgn` files depend on it).

use proptest::prelude::*;
use support::csv::{parse, CsvWriter};

proptest! {
    #[test]
    fn round_trip_arbitrary_fields(rows in proptest::collection::vec(
        proptest::collection::vec("[ -~\\n\"]*", 1..6), 1..8)
    ) {
        let mut w = CsvWriter::new();
        for row in &rows {
            w.write_row(row.iter().map(String::as_str));
        }
        let doc = w.finish();
        let parsed = parse(&doc).unwrap();
        prop_assert_eq!(parsed, rows);
    }

    #[test]
    fn parse_never_panics(doc in "\\PC*") {
        let _ = parse(&doc);
    }

    #[test]
    fn unicode_fields_round_trip(rows in proptest::collection::vec(
        proptest::collection::vec("\\PC*", 1..4), 1..4)
    ) {
        let mut w = CsvWriter::new();
        for row in &rows {
            w.write_row(row.iter().map(String::as_str));
        }
        let parsed = parse(w.as_str()).unwrap();
        prop_assert_eq!(parsed, rows);
    }
}
