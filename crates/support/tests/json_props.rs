//! Adversarial-input tests for `support::json`: the parser sits on the
//! serve daemon's untrusted socket boundary, so it must be *total* —
//! arbitrary input may be rejected but must never panic, recurse
//! unboundedly, or allocate past its caps.
//!
//! (Invalid UTF-8 *bytes* cannot reach `Value::parse`, which takes `&str`;
//! the serve frame reader lossy-decodes first, and the byte-level protocol
//! fuzzer in `dragon` covers that path. Here "invalid UTF-8" means what
//! survives decoding: replacement characters, lone-surrogate escapes,
//! truncated multi-byte tails.)

use proptest::prelude::*;
use support::json::{obj, ParseLimits, Value, MAX_BYTES, MAX_DEPTH};

proptest! {
    #[test]
    fn parse_never_panics(doc in "\\PC*") {
        let _ = Value::parse(&doc);
    }

    #[test]
    fn parse_with_tight_limits_never_panics(doc in "[\\[\\]{}\":,0-9a-z\\\\ ]*") {
        let limits = ParseLimits { max_depth: 8, max_bytes: 256 };
        let _ = Value::parse_with_limits(&doc, limits);
    }

    #[test]
    fn constructed_values_round_trip(
        keys in proptest::collection::vec("[a-z_]*", 1..6),
        nums in proptest::collection::vec(0u64..1_000_000, 1..6),
        text in "\\PC*",
    ) {
        // Build a nested value from the generated leaves: an object holding
        // a string, an array of integers, and a nested object per key.
        let arr = Value::Arr(nums.iter().copied().map(Value::int).collect());
        let mut v = obj([("text", Value::str(text.clone())), ("nums", arr)]);
        for key in &keys {
            v = Value::Obj([(key.clone(), v)].into_iter().collect());
        }
        let rendered = v.render();
        let back = Value::parse(&rendered).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn numbers_round_trip_or_reject(
        mantissa in 0u64..u64::MAX,
        digit_reps in 1usize..80,
        exp in 0u32..6000,
        neg in proptest::collection::vec(0u64..2, 2..3),
    ) {
        // Huge numbers (hundreds of digits, 4-digit exponents) must parse
        // to an f64 or reject — never panic, never hang.
        let sign = if neg[0] == 1 { "-" } else { "" };
        let esign = if neg[1] == 1 { "-" } else { "+" };
        let digits = mantissa.to_string().repeat(digit_reps);
        let num = format!("{sign}{digits}e{esign}{exp}");
        if let Ok(v) = Value::parse(&num) {
            let rendered = v.render();
            prop_assert!(Value::parse(&rendered).is_ok(), "render must reparse: {}", rendered);
        }
    }
}

/// Hand-picked malformed corpus: every entry must be *rejected* (not
/// panicked on), and the error must be a clean `Error::Format`.
#[test]
fn malformed_corpus_rejects_cleanly() {
    let deep_open = "[".repeat(10_000);
    let deep_mixed = "[{\"a\":".repeat(5_000);
    let corpus: Vec<String> = vec![
        // Truncated escapes.
        r#""\"#.to_string(),
        r#""\u"#.to_string(),
        r#""\u12"#.to_string(),
        r#""\ud83d"#.to_string(),
        r#""\ud83dA""#.to_string(),
        r#""\x41""#.to_string(),
        // Deep nesting far beyond the cap (would overflow the stack if the
        // depth counter failed).
        deep_open,
        deep_mixed,
        // Raw control characters and replacement-character abuse.
        "\"\u{0}\"".to_string(),
        "\"\u{1b}[31m\"".to_string(),
        // Structural garbage.
        "{\"a\":1".to_string(),
        "[1,2,,3]".to_string(),
        "{\"a\" 1}".to_string(),
        "\u{FEFF}{}".to_string(), // BOM is not whitespace
        "{},{}".to_string(),
        "+1".to_string(),
        ".5".to_string(),
        "0x10".to_string(),
        "Infinity".to_string(),
        "NaN".to_string(),
    ];
    for bad in &corpus {
        let got = Value::parse(bad);
        assert!(got.is_err(), "must reject {:?}, got {:?}", &bad[..bad.len().min(40)], got);
    }
}

/// Inputs that stress the caps specifically: each must trip the cap with a
/// descriptive error rather than allocating or recursing.
#[test]
fn caps_trip_cleanly() {
    // Depth cap: opening k arrays parses the innermost at depth k-1, so
    // the boundary sits at MAX_DEPTH + 1 opens.
    let at_cap = "[".repeat(MAX_DEPTH as usize + 1) + &"]".repeat(MAX_DEPTH as usize + 1);
    assert!(Value::parse(&at_cap).is_ok());
    let past_cap = "[".repeat(MAX_DEPTH as usize + 2) + &"]".repeat(MAX_DEPTH as usize + 2);
    let err = Value::parse(&past_cap).expect_err("depth cap");
    assert!(err.to_string().contains("nesting too deep"), "got: {err}");

    // Size cap: checked before any parsing work happens.
    let huge = format!("\"{}\"", "x".repeat(MAX_BYTES));
    let err = Value::parse(&huge).expect_err("size cap");
    assert!(err.to_string().contains("exceeds"), "got: {err}");

    // Tightened caps bind before the defaults.
    let limits = ParseLimits { max_depth: 2, max_bytes: 64 };
    assert!(Value::parse_with_limits("[[[1]]]", limits).is_err());
    assert!(Value::parse_with_limits("[[1]]", limits).is_ok());
}

/// Valid-but-nasty inputs must *succeed* and round-trip: the hardening
/// must not reject legitimate protocol traffic.
#[test]
fn nasty_but_valid_round_trips() {
    for good in [
        r#"{"a":"😀","b":[1e3,-0.0,2.5e-3],"c":{"":null}}"#,
        "  [\t1,\n2\r]  ",
        r#""Aé中""#,
        "1e308",
        "{\"dup\":1,\"dup\":2}",
    ] {
        let v = Value::parse(good).unwrap_or_else(|e| panic!("must accept {good:?}: {e}"));
        let back = Value::parse(&v.render()).expect("round trip");
        assert_eq!(v, back);
    }
}
