//! Fault-injection points for testing the analysis pipeline's isolation
//! guarantees.
//!
//! Pipeline stages call [`hit`] with a stable point name. In normal builds
//! that is a no-op compiled to nothing. Under the `fault-injection` cargo
//! feature a test (or the `ARAA_FAULTPOINT` environment variable) can
//! `arm` a point (only compiled under that feature) so that its Nth hit
//! panics — which is exactly the kind
//! of unexpected failure the driver's per-procedure `catch_unwind`
//! isolation must contain.
//!
//! Named points in the pipeline:
//!
//! | name                    | fires in                                      |
//! |-------------------------|-----------------------------------------------|
//! | `ipl::summarize`        | `ipa::local::summarize_procedure`             |
//! | `stall::ipl`            | `summarize_procedure` (spins until budget or  |
//! |                         | deadline denies charges — a data fault)       |
//! | `ipa::translate`        | `ipa::propagate::translate_record`            |
//! | `fm::eliminate`         | `regions::fourier_motzkin::eliminate`         |
//! | `extract::rows`         | `araa::extract` per-procedure rows            |
//! | `persist::torn_write`   | `support::persist::atomic_write`, mid-payload |
//! | `persist::pre_sync`     | `atomic_write`, before the temp-file fsync    |
//! | `persist::pre_rename`   | `atomic_write`, before the commit rename      |
//! | `persist::post_rename`  | `atomic_write`, after the commit rename       |
//! | `persist::entry_write`  | `SessionStore::persist`, between cache entries|
//! | `persist::pre_manifest` | `SessionStore::persist`, before the manifest  |
//! | `persist::post_manifest`| `SessionStore::persist`, after the manifest   |
//! | `persist::gc`           | `SessionStore::persist`, during old-entry GC  |
//! | `persist::short_read`   | `read_file_validated` (truncates the buffer)  |
//! | `persist::bit_flip`     | `read_file_validated` (flips one bit)         |
//! | `lint::contain`         | `lint` per-procedure rule evaluation          |
//! | `lint::sarif`           | `lint::sarif` document emission               |
//! | `memory::charge`        | `support::memory::checkpoint` (denies the     |
//! |                         | charge — forces memory-budget exhaustion)     |
//! | `serve::project::<name>`| `dragon serve` request dispatch, per project  |
//! | `serve::wedge`          | `dragon serve` worker (spins off-checkpoint   |
//! |                         | until the supervisor replaces the thread)     |
//!
//! The `persist::short_read` / `persist::bit_flip` points are *data*
//! faults: they fire through [`fires`] (mutating the read buffer) rather
//! than panicking. So are `memory::charge` and `serve::wedge`.
//!
//! `ARAA_FAULTPOINT=name[:n]` arms `name` to fire on its `n`th hit
//! (default 1) at first use, so the dragon binary can be fault-tested
//! end-to-end without a test harness. `ARAA_FAULTPOINT=name:always` arms
//! the point *sticky*: it fires on every hit and never disarms — the knob
//! behind "this project panics every single time" chaos scenarios.

/// Marks a potential fault site. No-op unless the `fault-injection`
/// feature is enabled and the point was armed.
#[inline]
pub fn hit(name: &str) {
    #[cfg(feature = "fault-injection")]
    imp::hit(name);
    #[cfg(not(feature = "fault-injection"))]
    let _ = name;
}

/// Non-panicking variant of [`hit`]: returns `true` when the armed point
/// fires (and disarms/decrements it), letting the call site inject a *data*
/// fault — a truncated buffer, a flipped bit — instead of a crash. Always
/// `false` without the `fault-injection` feature.
#[inline]
pub fn fires(name: &str) -> bool {
    #[cfg(feature = "fault-injection")]
    {
        imp::fires(name)
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = name;
        false
    }
}

#[cfg(feature = "fault-injection")]
pub use imp::{arm, arm_sticky, disarm_all};

#[cfg(feature = "fault-injection")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// Armed points: name → remaining hits before firing.
    static ARMED: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();

    fn registry() -> &'static Mutex<HashMap<String, u64>> {
        ARMED.get_or_init(|| {
            let mut map = HashMap::new();
            // `ARAA_FAULTPOINT=name[:n]` arms a point from the environment.
            if let Ok(spec) = std::env::var("ARAA_FAULTPOINT") {
                // Point names contain `::`, so only a trailing `:<number>`
                // is a hit count — `ipl::summarize:3` arms `ipl::summarize`.
                let (name, n) = match spec.rsplit_once(':') {
                    Some((head, "always")) => (head, STICKY),
                    Some((head, tail)) => match tail.parse() {
                        Ok(n) => (head, n),
                        Err(_) => (spec.as_str(), 1),
                    },
                    None => (spec.as_str(), 1),
                };
                if !name.is_empty() {
                    map.insert(name.to_string(), n.max(1));
                }
            }
            Mutex::new(map)
        })
    }

    /// Remaining-hit sentinel meaning "fires on every hit, never disarms".
    const STICKY: u64 = u64::MAX;

    /// Arms `name` to panic on its `nth` hit (1 = next hit).
    pub fn arm(name: &str, nth: u64) {
        let mut map = registry().lock().unwrap_or_else(|p| p.into_inner());
        map.insert(name.to_string(), nth.max(1).min(STICKY - 1));
    }

    /// Arms `name` sticky: it fires on every hit until [`disarm_all`].
    pub fn arm_sticky(name: &str) {
        let mut map = registry().lock().unwrap_or_else(|p| p.into_inner());
        map.insert(name.to_string(), STICKY);
    }

    /// Disarms every point (tests should call this in cleanup).
    pub fn disarm_all() {
        let mut map = registry().lock().unwrap_or_else(|p| p.into_inner());
        map.clear();
    }

    pub fn fires(name: &str) -> bool {
        let fired = {
            let mut map = registry().lock().unwrap_or_else(|p| p.into_inner());
            match map.get_mut(name) {
                Some(left) if *left == STICKY => true,
                Some(left) if *left <= 1 => {
                    map.remove(name);
                    true
                }
                Some(left) => {
                    *left -= 1;
                    false
                }
                None => false,
            }
        };
        if fired {
            crate::obs::incr(crate::obs::Counter::FaultpointTrips);
        }
        fired
    }

    pub fn hit(name: &str) {
        if fires(name) {
            panic!("fault injected: {name}");
        }
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_are_silent() {
        disarm_all();
        hit("tests::never-armed");
    }

    #[test]
    fn armed_point_fires_on_nth_hit() {
        arm("tests::third", 3);
        hit("tests::third");
        hit("tests::third");
        let err = std::panic::catch_unwind(|| hit("tests::third"))
            .expect_err("third hit must fire");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("fault injected: tests::third"), "got: {msg}");
        // Fired points disarm themselves.
        hit("tests::third");
    }

    #[test]
    fn disarm_all_clears_pending() {
        arm("tests::pending", 1);
        disarm_all();
        hit("tests::pending");
    }

    #[test]
    fn sticky_point_fires_every_hit() {
        arm_sticky("tests::sticky");
        assert!(fires("tests::sticky"));
        assert!(fires("tests::sticky"), "sticky points never disarm");
        assert!(fires("tests::sticky"));
        disarm_all();
        assert!(!fires("tests::sticky"));
    }
}
