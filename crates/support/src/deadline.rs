//! Cooperative deadlines: a cancellation token the analysis checks at its
//! existing budget checkpoints.
//!
//! Budgets ([`crate::budget`]) bound *work*; deadlines bound *wall time*.
//! The two compose: [`crate::budget::charge_steps`] and friends consult the
//! thread's active [`DeadlineToken`] before charging, so the moment a
//! deadline passes (or the token is cancelled from another thread), every
//! budgeted phase behaves exactly as if its budget ran dry — Fourier–
//! Motzkin drops constraints, propagation widens to `MESSY`, parsers stop
//! recursing — and the analysis completes *degraded within the deadline*
//! instead of hanging. Nothing is torn down mid-state; cancellation is
//! purely cooperative and every intermediate result stays sound
//! (regions only grow).
//!
//! ```
//! use support::deadline::{self, DeadlineToken};
//! use std::time::Duration;
//!
//! let token = DeadlineToken::after(Duration::from_secs(0));
//! let _scope = deadline::enter(token.clone());
//! assert!(deadline::expired());
//! assert!(!support::budget::charge_steps(1), "budget checkpoints observe it");
//! ```
//!
//! Tokens are `Arc`-shared and cheap to clone; a server hands the same
//! token to every worker thread of one request ([`current`] + [`enter`])
//! so a fan-out analysis observes one shared clock. Checking is cheap: the
//! fast path is one relaxed atomic load, and the actual `Instant::now()`
//! comparison runs only once per [`CHECK_INTERVAL`] calls per thread (an
//! expired check latches the atomic, so every later check takes the fast
//! path).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many fast-path checks elapse between real clock reads, per thread.
/// At the budget checkpoints' call granularity this bounds deadline
/// overshoot to well under a millisecond of extra work.
pub const CHECK_INTERVAL: u32 = 64;

/// A shareable deadline + cancellation flag. Created once per request (or
/// per CLI invocation under `--timeout`) and installed on every thread
/// doing that request's work via [`enter`].
#[derive(Debug)]
pub struct DeadlineToken {
    /// Absolute expiry instant; `None` for a cancel-only token.
    deadline: Option<Instant>,
    /// Latched once the deadline is observed expired, or on [`cancel`].
    /// Checking this is the fast path shared by every thread.
    cancelled: AtomicBool,
}

impl DeadlineToken {
    /// A token expiring `after` from now.
    pub fn after(after: Duration) -> Arc<DeadlineToken> {
        Arc::new(DeadlineToken {
            deadline: Some(Instant::now() + after),
            cancelled: AtomicBool::new(false),
        })
    }

    /// A token expiring at `at`.
    pub fn at(at: Instant) -> Arc<DeadlineToken> {
        Arc::new(DeadlineToken { deadline: Some(at), cancelled: AtomicBool::new(false) })
    }

    /// A token with no deadline, expired only by [`cancel`](Self::cancel)
    /// (e.g. a server drain aborting queued work).
    pub fn manual() -> Arc<DeadlineToken> {
        Arc::new(DeadlineToken { deadline: None, cancelled: AtomicBool::new(false) })
    }

    /// Expires the token immediately, from any thread.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token is expired, reading the real clock. Latches: once
    /// expired, always expired.
    pub fn expired_now(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Time left before expiry: `None` for a cancel-only token that has not
    /// been cancelled, `Some(ZERO)` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(Duration::ZERO);
        }
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<DeadlineToken>>> =
        const { std::cell::RefCell::new(None) };
    /// Countdown to the next real clock read on this thread.
    static UNTIL_CHECK: Cell<u32> = const { Cell::new(0) };
}

/// An installed deadline scope; dropping it restores the previously active
/// token (scopes nest, innermost wins — matching [`crate::budget`] scopes).
#[derive(Debug)]
pub struct DeadlineScope {
    prev: Option<Arc<DeadlineToken>>,
}

impl Drop for DeadlineScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `token` as this thread's active deadline.
pub fn enter(token: Arc<DeadlineToken>) -> DeadlineScope {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token));
    UNTIL_CHECK.with(|u| u.set(0));
    DeadlineScope { prev }
}

/// The thread's active token, for handing to worker threads (which call
/// [`enter`] with it so the whole fan-out shares one deadline).
pub fn current() -> Option<Arc<DeadlineToken>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the active deadline (if any) has expired, reading the real
/// clock. Use at natural pause points (between pipeline phases, between
/// requests).
pub fn expired() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|t| t.expired_now()))
}

/// Throttled expiry check for hot paths (the budget checkpoints): one
/// relaxed atomic load per call, a real clock read every
/// [`CHECK_INTERVAL`] calls. Latches like [`expired`].
pub fn expired_fast() -> bool {
    CURRENT.with(|c| {
        let b = c.borrow();
        let Some(t) = b.as_ref() else { return false };
        if t.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if t.deadline.is_none() {
            return false;
        }
        UNTIL_CHECK.with(|u| {
            let left = u.get();
            if left == 0 {
                u.set(CHECK_INTERVAL);
                t.expired_now()
            } else {
                u.set(left - 1);
                false
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scope_never_expires() {
        assert!(!expired());
        assert!(!expired_fast());
    }

    #[test]
    fn zero_deadline_expires_immediately_and_latches() {
        let t = DeadlineToken::after(Duration::ZERO);
        let _s = enter(t.clone());
        assert!(expired());
        assert!(expired_fast(), "latched expiry takes the fast path");
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_does_not_expire() {
        let _s = enter(DeadlineToken::after(Duration::from_secs(3600)));
        for _ in 0..(CHECK_INTERVAL * 3) {
            assert!(!expired_fast());
        }
        assert!(!expired());
    }

    #[test]
    fn cancel_expires_from_another_thread() {
        let t = DeadlineToken::manual();
        let _s = enter(t.clone());
        assert!(!expired());
        let t2 = t.clone();
        std::thread::spawn(move || t2.cancel()).join().ok();
        assert!(expired());
        assert!(expired_fast());
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = DeadlineToken::after(Duration::from_secs(3600));
        let s1 = enter(outer);
        {
            let _s2 = enter(DeadlineToken::after(Duration::ZERO));
            assert!(expired());
        }
        assert!(!expired(), "outer token restored");
        drop(s1);
        assert!(current().is_none());
    }

    #[test]
    fn budget_checkpoints_observe_deadline() {
        let _s = enter(DeadlineToken::after(Duration::ZERO));
        let _b = crate::budget::enter(crate::budget::BudgetConfig::default());
        assert!(!crate::budget::charge_steps(1));
        assert!(!crate::budget::charge_translation());
        assert_eq!(crate::budget::exhaustion(), Some("deadline"));
        assert!(crate::budget::recursion_guard().is_none());
    }

    #[test]
    fn without_budget_scope_deadline_still_denies_charges() {
        let _s = enter(DeadlineToken::after(Duration::ZERO));
        assert!(!crate::budget::charge_steps(1), "deadline wins even unbudgeted");
    }
}
