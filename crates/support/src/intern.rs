//! String interning.
//!
//! Identifiers (array names, procedure names, file names) appear thousands of
//! times across the WHIRL tree, the region summaries, and the `.rgn` rows, so
//! the whole pipeline passes around a small copyable [`Symbol`] instead of
//! owned strings. Interning happens through a per-compilation [`Interner`];
//! symbols are only meaningful relative to the interner that created them.

use std::collections::HashMap;
use std::fmt;

/// A handle to an interned string. Cheap to copy, hash, and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol inside its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a symbol from a raw index, for the persistence codec.
    ///
    /// Only meaningful when `index` came from [`Symbol::index`] of a symbol
    /// in the *same* (deterministically reconstructed) interner; using it
    /// with any other interner yields a dangling handle.
    pub fn from_index(index: usize) -> Result<Symbol, crate::error::Error> {
        u32::try_from(index)
            .map(Symbol)
            .map_err(|_| crate::error::Error::Format(format!("symbol index {index} out of range")))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Deduplicating string store. Lookup by string is O(1) amortized; lookup by
/// [`Symbol`] is a bounds-checked array access.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let Ok(raw) = u32::try_from(self.strings.len()) else {
            panic!("interner overflow");
        };
        let sym = Symbol(raw);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Returns the symbol for `s` if it has already been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let mut i = Interner::new();
        let a = i.intern("xcr");
        let b = i.intern("xce");
        let a2 = i.intern("xcr");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("verify");
        assert_eq!(i.resolve(s), "verify");
    }

    #[test]
    fn get_finds_only_existing() {
        let mut i = Interner::new();
        assert!(i.get("u").is_none());
        let s = i.intern("u");
        assert_eq!(i.get("u"), Some(s));
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let names: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn empty_interner_reports_empty() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
