//! A minimal JSON value type with a total parser and deterministic writer.
//!
//! The serve protocol is line-delimited JSON-RPC and the bench reports are
//! JSON files; with no external dependencies available, this module is the
//! one JSON implementation the workspace shares. Design points:
//!
//! - **Total**: [`Value::parse`] never panics; malformed input yields
//!   [`crate::Error::Format`]. Nesting depth is capped ([`MAX_DEPTH`]) so a
//!   hostile client can't overflow the stack, document size is capped
//!   ([`MAX_BYTES`]) so it can't balloon the heap either, and the parser is
//!   recursion-free on the unwind path (iterative-friendly depth counter).
//!   Callers facing untrusted sockets can tighten both caps with
//!   [`Value::parse_with_limits`].
//! - **Deterministic**: objects are `BTreeMap`s, so [`Value::render`]
//!   produces byte-identical output for equal values — which is what the
//!   serve chaos test's "byte-identical results after restart" assertion
//!   leans on.
//! - **Honest numbers**: numbers are kept as `f64` with integer-preserving
//!   rendering for values that round-trip exactly (covers every length,
//!   count, and millisecond field the protocol uses).
//!
//! ```
//! use support::json::Value;
//!
//! let v = Value::parse(r#"{"op":"analyze","deadline_ms":250}"#).unwrap();
//! assert_eq!(v.get("op").and_then(Value::as_str), Some("analyze"));
//! assert_eq!(v.get("deadline_ms").and_then(Value::as_u64), Some(250));
//! ```

use crate::error::Error;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser. Deep enough for any real
/// protocol message, shallow enough to never threaten the stack.
pub const MAX_DEPTH: u32 = 64;

/// Maximum document size accepted by the parser, in bytes. Generous enough
/// for any bench report or batched analyze request; a hard stop for a
/// hostile multi-hundred-megabyte body.
pub const MAX_BYTES: usize = 16 << 20;

/// Parser resource caps; see [`Value::parse_with_limits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum nesting depth (arrays + objects).
    pub max_depth: u32,
    /// Maximum document size in bytes, checked before parsing starts.
    pub max_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits { max_depth: MAX_DEPTH, max_bytes: MAX_BYTES }
    }
}

/// A parsed JSON value. Objects use [`BTreeMap`] for stable key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, Error> {
        Self::parse_with_limits(text, ParseLimits::default())
    }

    /// [`parse`](Self::parse) with explicit resource caps — the entry point
    /// for untrusted input (the serve daemon ties these to its frame-size
    /// cap). Exceeding either cap is a clean [`crate::Error::Format`],
    /// never a panic or an unbounded allocation.
    pub fn parse_with_limits(text: &str, limits: ParseLimits) -> Result<Value, Error> {
        if text.len() > limits.max_bytes {
            return Err(Error::Format(format!(
                "json: document of {} bytes exceeds the {}-byte cap",
                text.len(),
                limits.max_bytes
            )));
        }
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, limits };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Renders compact JSON (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&crate::obs::json_escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&crate::obs::json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // --- typed accessors (all total; wrong shape → None) ---

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, only when it is a non-negative integer that
    /// round-trips exactly through `f64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

/// Builds an object from key/value pairs (a tiny `json!`-alike).
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; degrade to null rather than emit garbage.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    limits: ParseLimits,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Format(format!("json: {msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, Error> {
        if depth > self.limits.max_depth {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_lit("null").map(|()| Value::Null),
            Some(b't') => self.expect_lit("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_lit("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, Error> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, Error> {
        self.pos += 1; // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            let val = self.value(depth + 1)?;
            // Duplicate keys: last one wins (matches common parsers).
            map.insert(key, val);
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Obj(map));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}` in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a low surrogate pair.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid codepoint")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid; find the next char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | u32::from(d);
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let src = r#"{"id":7,"op":"analyze","sources":[{"name":"a.c","text":"int x;"}],"deadline_ms":250,"flags":{"strict":false,"ratio":0.5},"note":null}"#;
        let v = Value::parse(src).expect("parse");
        let rendered = v.render();
        let v2 = Value::parse(&rendered).expect("reparse");
        assert_eq!(v, v2);
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("op").and_then(Value::as_str), Some("analyze"));
        assert_eq!(v.get("flags").and_then(|f| f.get("ratio")).and_then(Value::as_f64), Some(0.5));
        assert!(matches!(v.get("note"), Some(Value::Null)));
    }

    #[test]
    fn render_is_deterministic_regardless_of_insertion_order() {
        let a = obj([("zeta", Value::int(1)), ("alpha", Value::int(2))]);
        let b = obj([("alpha", Value::int(2)), ("zeta", Value::int(1))]);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.render(), r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::str("line\nquote\"tab\tslash\\u{1F} \u{1F600}");
        let back = Value::parse(&v.render()).expect("parse");
        assert_eq!(v, back);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Value::parse(r#""😀""#).expect("parse");
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(Value::parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "", "{", "}", "[1,", r#"{"a"}"#, r#"{"a":}"#, "01x", "tru", "\"\u{1}\"",
            "nulll", "[1]2", "-", "1e", r#"{"a":1,}"#,
        ] {
            assert!(Value::parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH as usize + 8) + &"]".repeat(MAX_DEPTH as usize + 8);
        assert!(Value::parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn size_cap_trips_before_parsing() {
        let limits = ParseLimits { max_bytes: 16, ..Default::default() };
        let small = r#"{"a":1}"#;
        assert!(Value::parse_with_limits(small, limits).is_ok());
        let big = format!(r#"{{"a":"{}"}}"#, "x".repeat(64));
        let err = Value::parse_with_limits(&big, limits).expect_err("cap must trip");
        assert!(err.to_string().contains("exceeds"), "got: {err}");
    }

    #[test]
    fn custom_depth_cap_overrides_default() {
        let limits = ParseLimits { max_depth: 4, ..Default::default() };
        let deep = "[".repeat(8) + &"]".repeat(8);
        assert!(Value::parse_with_limits(&deep, limits).is_err());
        assert!(Value::parse(&deep).is_ok(), "default cap is deeper");
        let shallow = "[[[1]]]";
        assert!(Value::parse_with_limits(shallow, limits).is_ok());
    }

    #[test]
    fn numbers_render_integers_exactly() {
        assert_eq!(Value::int(2_226_506).render(), "2226506");
        assert_eq!(Value::Num(-3.0).render(), "-3");
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::parse("1e3").unwrap().as_u64(), Some(1000));
    }
}
