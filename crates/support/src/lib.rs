//! Shared infrastructure for the ARAA workspace.
//!
//! This crate hosts the small, dependency-free building blocks every other
//! crate leans on: a string interner ([`intern::Interner`]), strongly-typed
//! index newtypes ([`idx`]), a CSV reader/writer pair used for the `.rgn`
//! exchange format ([`csv`]), an ASCII table renderer used by the Dragon
//! text UI ([`table`]), and the workspace-wide error type ([`error`]).

pub mod budget;
pub mod csv;
pub mod deadline;
pub mod error;
pub mod faultpoint;
pub mod hash;
pub mod idx;
pub mod intern;
pub mod json;
pub mod memory;
pub mod obs;
pub mod persist;
pub mod table;
pub mod testdir;

pub use error::{Error, Pos, Result};
pub use intern::{Interner, Symbol};
