//! Unique, collision-free temporary directories for tests.
//!
//! Several tests used to share fixed paths like
//! `std::env::temp_dir().join("dragon_project_test")`, which collide when
//! two test processes (or two checkouts on one CI runner) run
//! concurrently. [`unique_dir`] hands out a directory whose name embeds
//! the pid and a per-process counter, so every call in every process gets
//! its own; [`TestDir`] adds RAII cleanup.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static SEQ: AtomicU64 = AtomicU64::new(0);

/// Creates and returns a fresh empty directory under the system temp dir,
/// named `araa-<tag>-<pid>-<seq>`. The caller owns cleanup (or use
/// [`TestDir`]).
///
/// # Panics
/// Panics if the directory cannot be created — acceptable in the test
/// contexts this is meant for.
pub fn unique_dir(tag: &str) -> PathBuf {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("araa-{tag}-{}-{seq}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        panic!("failed to create test dir {}: {e}", dir.display());
    }
    dir
}

/// A unique test directory removed on drop.
#[derive(Debug)]
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Creates a fresh unique directory (see [`unique_dir`]).
    pub fn new(tag: &str) -> TestDir {
        TestDir { path: unique_dir(tag) }
    }

    /// The directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// A path inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_unique_and_created() {
        let a = unique_dir("t");
        let b = unique_dir("t");
        assert_ne!(a, b);
        assert!(a.is_dir() && b.is_dir());
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn testdir_cleans_up_on_drop() {
        let kept;
        {
            let d = TestDir::new("drop");
            kept = d.path().to_path_buf();
            std::fs::write(d.join("f"), b"x").unwrap();
            assert!(kept.exists());
        }
        assert!(!kept.exists());
    }
}
