//! Minimal CSV reader/writer for the `.rgn` exchange format.
//!
//! The paper's extended IPA phase writes "a comma separated plain file
//! `.rgn`, where each row maintains information about each region per access
//! mode", later consumed by the Dragon tool. This module implements the
//! subset of RFC-4180 we need: comma separation, double-quote quoting when a
//! field contains a comma/quote/newline, and `""` escaping inside quoted
//! fields.

use crate::error::Error;

/// Writes rows of string fields into an in-memory CSV document.
#[derive(Debug, Default)]
pub struct CsvWriter {
    buf: String,
}

impl CsvWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one row, quoting fields as needed.
    pub fn write_row<I, S>(&mut self, fields: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut first = true;
        for field in fields {
            if !first {
                self.buf.push(',');
            }
            first = false;
            self.push_field(field.as_ref());
        }
        self.buf.push('\n');
    }

    fn push_field(&mut self, field: &str) {
        let needs_quote = field.contains([',', '"', '\n', '\r']);
        if needs_quote {
            self.buf.push('"');
            for ch in field.chars() {
                if ch == '"' {
                    self.buf.push('"');
                }
                self.buf.push(ch);
            }
            self.buf.push('"');
        } else {
            self.buf.push_str(field);
        }
    }

    /// Consumes the writer and returns the document.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Borrows the document built so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

/// Parses a CSV document into rows of fields.
///
/// Handles quoted fields, escaped quotes, and both `\n` and `\r\n` line
/// endings. Returns an error for an unterminated quoted field.
pub fn parse(input: &str) -> Result<Vec<Vec<String>>, Error> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut saw_any = false;

    while let Some(ch) = chars.next() {
        saw_any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match ch {
            '"' => in_quotes = true,
            ',' => {
                row.push(std::mem::take(&mut field));
            }
            '\r' => {
                // Swallow the `\n` of a CRLF pair; bare `\r` also ends a row.
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            other => field.push(other),
        }
    }

    if in_quotes {
        return Err(Error::Format("unterminated quoted CSV field".into()));
    }
    // A final row without a trailing newline.
    if saw_any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_simple_rows() {
        let mut w = CsvWriter::new();
        w.write_row(["aarr", "matrix.o", "DEF", "2"]);
        w.write_row(["u", "rhs.o", "USE", "110"]);
        assert_eq!(w.finish(), "aarr,matrix.o,DEF,2\nu,rhs.o,USE,110\n");
    }

    #[test]
    fn quotes_fields_with_commas_and_quotes() {
        let mut w = CsvWriter::new();
        w.write_row(["64|65|65|5", "say \"hi\"", "a,b"]);
        assert_eq!(w.finish(), "64|65|65|5,\"say \"\"hi\"\"\",\"a,b\"\n");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = CsvWriter::new();
        w.write_row(["x", "with,comma", "with\"quote", "multi\nline"]);
        let doc = w.finish();
        let rows = parse(&doc).unwrap();
        assert_eq!(
            rows,
            vec![vec![
                "x".to_string(),
                "with,comma".to_string(),
                "with\"quote".to_string(),
                "multi\nline".to_string()
            ]]
        );
    }

    #[test]
    fn parse_handles_crlf_and_missing_final_newline() {
        let rows = parse("a,b\r\nc,d").unwrap();
        assert_eq!(rows, vec![vec!["a".to_string(), "b".to_string()], vec![
            "c".to_string(),
            "d".to_string()
        ]]);
    }

    #[test]
    fn parse_rejects_unterminated_quote() {
        assert!(parse("\"oops").is_err());
    }

    #[test]
    fn parse_empty_document_yields_no_rows() {
        assert!(parse("").unwrap().is_empty());
    }

    #[test]
    fn empty_fields_survive() {
        let mut w = CsvWriter::new();
        w.write_row(["", "x", ""]);
        let rows = parse(w.as_str()).unwrap();
        assert_eq!(rows, vec![vec!["".to_string(), "x".to_string(), "".to_string()]]);
    }
}
