//! Crash-safe persistence primitives: atomic writes, a checksummed
//! container format, a tiny binary codec, and a cross-process advisory
//! lock.
//!
//! Everything the tool persists to disk goes through this module so the
//! same guarantees hold everywhere:
//!
//! - **Atomic visibility** ([`atomic_write`]): bytes are written to a
//!   temporary file *in the target directory*, fsync'd, and renamed over
//!   the destination, then the directory is fsync'd. A reader (or a crash
//!   at any instant) observes either the complete old file or the complete
//!   new file, never a half-written one.
//! - **Self-describing integrity** ([`write_container`] /
//!   [`read_container`]): every persisted artifact carries a magic number,
//!   a format version, a kind tag, a caller-supplied fingerprint
//!   (toolchain and options), the payload length, and a trailing FNV-1a checksum over
//!   the whole preceding byte stream. Any torn write, truncation, bit
//!   flip, version skew, or foreign file fails validation with a typed
//!   [`ContainerError`] — never a panic, never silently-wrong data.
//! - **Cross-process exclusion** ([`DirLock`]): an advisory lock file with
//!   the owner's pid, stale-lock detection (dead owner ⇒ takeover), and
//!   bounded waiting, so concurrent invocations sharing a cache directory
//!   serialize their load/store critical sections.
//!
//! Under the `fault-injection` cargo feature the write and read paths host
//! armable faultpoints (see [`faultpoint`]) simulating
//! torn writes, short reads, and bit flips; the crash-consistency tests in
//! `crates/core/tests/session_persist.rs` kill the writer at every one of
//! them and assert the cache stays loadable.

use crate::error::{Error, Result};
use crate::faultpoint;
use crate::hash::{fnv1a, StableHasher};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Magic bytes opening every container file.
pub const MAGIC: &[u8; 8] = b"ARAAPRS\0";

/// Current container format version. Bump on any layout change; readers
/// reject other versions (the cache then quarantines and recomputes).
/// Version 2: `RgnRow` entries carry a per-row source-line range.
/// Version 3: access records carry `precision`/`via_index`, summaries carry
/// index-array facts.
/// Version 4: index-array facts carry `init_end_pos` (the flow gate for
/// same-procedure consumers).
pub const FORMAT_VERSION: u32 = 4;

/// Write-path faultpoints registered inside [`atomic_write`] and the
/// store layers above it, in the order they fire. CI arms each one in turn
/// against the cache round-trip test.
pub const WRITE_FAULTPOINTS: &[&str] = &[
    "persist::torn_write",
    "persist::pre_sync",
    "persist::pre_rename",
    "persist::post_rename",
];

/// Read-path faultpoints applied by [`read_file_validated`] to the
/// in-memory buffer *before* validation — proving the checksum catches
/// short reads and bit flips.
pub const READ_FAULTPOINTS: &[&str] = &["persist::short_read", "persist::bit_flip"];

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// Append-only byte buffer with typed little-endian writers — the encoding
/// half of the persistence codec.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to 64 bits.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }
}

/// Bounds-checked cursor over encoded bytes — the decoding half of the
/// codec. Every read returns a typed [`Error::Format`] on truncation or
/// malformed data; nothing here panics on hostile input.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn truncated(&self, what: &str) -> Error {
        Error::Format(format!(
            "truncated persisted data: wanted {what} at byte {}, {} left",
            self.pos,
            self.remaining()
        ))
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.truncated(&format!("{n} bytes")));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool, rejecting anything but 0/1.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::Format(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Reads a `usize`, rejecting values beyond the remaining buffer when
    /// used as a length (callers combine with [`take`](Self::take)).
    pub fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| Error::Format(format!("length {v} overflows usize")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(self.truncated(&format!("string of {len} bytes")));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Format("persisted string is not UTF-8".to_string()))
    }

    /// Errors unless every byte was consumed — trailing garbage means the
    /// payload does not match the format that was claimed for it.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::Format(format!(
                "{} trailing bytes after persisted payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Types that can round-trip through the persistence codec. Implementations
/// must be total on the encode side and return [`Error::Format`] (never
/// panic) on any malformed decode input.
pub trait Persist: Sized {
    /// Encodes `self` onto `w`.
    fn save(&self, w: &mut ByteWriter);
    /// Decodes one value from `r`.
    fn load(r: &mut ByteReader<'_>) -> Result<Self>;
}

impl Persist for u64 {
    fn save(&self, w: &mut ByteWriter) {
        w.u64(*self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        r.u64()
    }
}

impl Persist for i64 {
    fn save(&self, w: &mut ByteWriter) {
        w.i64(*self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        r.i64()
    }
}

impl Persist for u32 {
    fn save(&self, w: &mut ByteWriter) {
        w.u32(*self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        r.u32()
    }
}

impl Persist for u8 {
    fn save(&self, w: &mut ByteWriter) {
        w.u8(*self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        r.u8()
    }
}

impl Persist for bool {
    fn save(&self, w: &mut ByteWriter) {
        w.bool(*self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        r.bool()
    }
}

impl Persist for String {
    fn save(&self, w: &mut ByteWriter) {
        w.str(self);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        r.str()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            other => Err(Error::Format(format!("invalid Option tag {other}"))),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut ByteWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        let len = r.usize()?;
        // Pre-size conservatively: a corrupt length must not OOM before the
        // per-element reads run out of bytes.
        let mut out = Vec::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, w: &mut ByteWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

// ---------------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------------

/// Why a container failed validation. Stores use the variant to pick a
/// quarantine suffix and a degradation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The file is too short to hold even the fixed header + footer.
    Truncated,
    /// The magic bytes are wrong — not one of our files.
    BadMagic,
    /// A different (older/newer) format version.
    BadVersion(u32),
    /// A container of a different kind (e.g. a proc entry where the
    /// manifest was expected).
    BadKind(String),
    /// Written by a different toolchain version or with different analysis
    /// options.
    BadFingerprint { expected: u64, found: u64 },
    /// The checksum over the byte stream does not match the footer.
    BadChecksum,
    /// Structurally invalid header fields.
    Malformed(String),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::Truncated => write!(f, "truncated container"),
            ContainerError::BadMagic => write!(f, "bad magic (not an ARAA container)"),
            ContainerError::BadVersion(v) => {
                write!(f, "unsupported container version {v} (want {FORMAT_VERSION})")
            }
            ContainerError::BadKind(k) => write!(f, "unexpected container kind `{k}`"),
            ContainerError::BadFingerprint { expected, found } => write!(
                f,
                "toolchain/options fingerprint mismatch (want {expected:016x}, found {found:016x})"
            ),
            ContainerError::BadChecksum => write!(f, "checksum mismatch (corrupt container)"),
            ContainerError::Malformed(m) => write!(f, "malformed container: {m}"),
        }
    }
}

impl From<ContainerError> for Error {
    fn from(e: ContainerError) -> Error {
        Error::Format(e.to_string())
    }
}

/// A short quarantine-file suffix naming the failure class.
pub fn quarantine_suffix(e: &ContainerError) -> &'static str {
    match e {
        ContainerError::Truncated => "truncated",
        ContainerError::BadMagic => "badmagic",
        ContainerError::BadVersion(_) => "version",
        ContainerError::BadKind(_) => "kind",
        ContainerError::BadFingerprint { .. } => "fingerprint",
        ContainerError::BadChecksum => "checksum",
        ContainerError::Malformed(_) => "malformed",
    }
}

/// Wraps `payload` in the versioned, checksummed container format:
/// magic, version, kind, fingerprint, length, payload, FNV-1a footer.
pub fn write_container(kind: &str, fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(MAGIC);
    w.u32(FORMAT_VERSION);
    w.str(kind);
    w.u64(fingerprint);
    w.usize(payload.len());
    w.bytes(payload);
    let checksum = fnv1a(&w.buf);
    w.u64(checksum);
    w.into_bytes()
}

/// Validates a container's structural integrity — minimum length, trailing
/// checksum, magic, version, payload length — and returns its `(kind,
/// fingerprint, payload)` *without* checking kind or fingerprint. The tool
/// for inspection paths (`dragon cache verify`) that must classify any
/// valid container regardless of who wrote it.
pub fn read_container_loose(
    bytes: &[u8],
) -> std::result::Result<(String, u64, Vec<u8>), ContainerError> {
    // Fixed overhead: magic(8) + version(4) + kind len(8) + fp(8) +
    // payload len(8) + checksum(8).
    if bytes.len() < 44 {
        return Err(ContainerError::Truncated);
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    let mut fb = [0u8; 8];
    fb.copy_from_slice(footer);
    if fnv1a(body) != u64::from_le_bytes(fb) {
        return Err(ContainerError::BadChecksum);
    }
    let mut r = ByteReader::new(body);
    let magic = r.take(8).map_err(|_| ContainerError::Truncated)?;
    if magic != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let version = r.u32().map_err(|_| ContainerError::Truncated)?;
    if version != FORMAT_VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let found_kind = r
        .str()
        .map_err(|e| ContainerError::Malformed(e.to_string()))?;
    let found_fp = r.u64().map_err(|_| ContainerError::Truncated)?;
    let len = r
        .usize()
        .map_err(|e| ContainerError::Malformed(e.to_string()))?;
    if len != r.remaining() {
        return Err(ContainerError::Malformed(format!(
            "payload length {len} disagrees with container size {}",
            r.remaining()
        )));
    }
    let payload = r
        .take(len)
        .map_err(|_| ContainerError::Truncated)?;
    Ok((found_kind, found_fp, payload.to_vec()))
}

/// Validates a container byte-for-byte and returns its payload. Checks, in
/// order: minimum length, the trailing checksum over everything before the
/// footer, magic, version, kind, fingerprint, and payload length.
pub fn read_container(
    bytes: &[u8],
    kind: &str,
    fingerprint: u64,
) -> std::result::Result<Vec<u8>, ContainerError> {
    let (found_kind, found_fp, payload) = read_container_loose(bytes)?;
    if found_kind != kind {
        return Err(ContainerError::BadKind(found_kind));
    }
    if found_fp != fingerprint {
        return Err(ContainerError::BadFingerprint { expected: fingerprint, found: found_fp });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Text-artifact checksum trailers
// ---------------------------------------------------------------------------

/// Prefix of the checksum trailer line appended to text artifacts
/// (`.rgn`, `.dgn`, `.cfg`). `#` opens a comment in both our CSV dialect's
/// consumers (the trailer is stripped before parsing) and Graphviz DOT.
pub const TEXT_CHECKSUM_PREFIX: &str = "#checksum,";

/// Appends a `#checksum,<fnv1a hex>` trailer line covering everything
/// currently in `doc`.
pub fn append_text_checksum(doc: &mut String) {
    let sum = fnv1a(doc.as_bytes());
    if !doc.is_empty() && !doc.ends_with('\n') {
        doc.push('\n');
    }
    doc.push_str(TEXT_CHECKSUM_PREFIX);
    doc.push_str(&format!("{sum:016x}\n"));
}

/// Verifies and strips a trailing `#checksum,<hex>` line, returning the
/// document body. Documents without a trailer pass through unchanged
/// (artifacts written by older versions, or hand-edited files that dropped
/// the line — absence is tolerated, corruption is not). A trailer that is
/// present but wrong is an [`Error::Format`].
pub fn verify_text_checksum(doc: &str) -> Result<&str> {
    // The trailer is the final (newline-terminated) line.
    let t = doc.strip_suffix('\n').unwrap_or(doc);
    let (body_end, last) = match t.rfind('\n') {
        Some(i) => (i + 1, &t[i + 1..]),
        None => (0, t),
    };
    let Some(hex) = last.strip_prefix(TEXT_CHECKSUM_PREFIX) else {
        return Ok(doc);
    };
    let expected = u64::from_str_radix(hex.trim(), 16)
        .map_err(|_| Error::Format(format!("malformed checksum trailer `{last}`")))?;
    // Only the canonical form the writer emits is accepted: otherwise a
    // mutated trailer byte (e.g. a hex digit's case flipped) could still
    // parse to the recorded value and slip through undetected.
    if hex != format!("{expected:016x}") {
        return Err(Error::Format(format!(
            "non-canonical checksum trailer `{last}`"
        )));
    }
    let body = &doc[..body_end];
    let actual = fnv1a(body.as_bytes());
    if actual != expected {
        return Err(Error::Format(format!(
            "artifact checksum mismatch (recorded {expected:016x}, computed {actual:016x}) — \
             the file was corrupted or partially written"
        )));
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// Atomic file operations
// ---------------------------------------------------------------------------

/// Per-process sequence number keeping temp-file names unique.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The suffix marking this module's temporary files; stale ones (left by a
/// crashed writer) are swept by [`cleanup_stale_tmp`].
const TMP_MARKER: &str = ".araa-tmp";

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the destination, fsync the directory. A crash (or an
/// injected fault) at any instant leaves `path` either absent/old or fully
/// new — never torn.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| Error::Format(format!("atomic_write: bad path {}", path.display())))?;
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(
        "{file_name}{TMP_MARKER}.{}.{seq}",
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let ctx = |what: &str| format!("{what} {}", tmp.display());
    let res = (|| -> Result<()> {
        let mut f = std::fs::File::create(&tmp).map_err(|e| Error::io(ctx("creating"), e))?;
        // Torn-write injection: half the bytes land, then the "process
        // dies" (the armed faultpoint panics). The destination must stay
        // untouched and the torn temp file must never validate.
        let half = bytes.len() / 2;
        f.write_all(&bytes[..half]).map_err(|e| Error::io(ctx("writing"), e))?;
        faultpoint::hit("persist::torn_write");
        f.write_all(&bytes[half..]).map_err(|e| Error::io(ctx("writing"), e))?;
        faultpoint::hit("persist::pre_sync");
        f.sync_all().map_err(|e| Error::io(ctx("syncing"), e))?;
        drop(f);
        faultpoint::hit("persist::pre_rename");
        std::fs::rename(&tmp, path)
            .map_err(|e| Error::io(format!("renaming {} over {}", tmp.display(), path.display()), e))?;
        faultpoint::hit("persist::post_rename");
        // Persist the rename itself. Directory fsync is best-effort: some
        // filesystems reject opening directories for sync.
        if let Some(d) = dir {
            if let Ok(dh) = std::fs::File::open(d) {
                let _ = dh.sync_all();
            }
        }
        Ok(())
    })();
    if res.is_err() {
        // Best-effort cleanup on failure; a leak is swept later.
        let _ = std::fs::remove_file(&tmp);
    }
    res
}

/// Reads a file's raw bytes, with read-side fault injection: under the
/// `fault-injection` feature the returned buffer may be truncated
/// (`persist::short_read`) or bit-flipped (`persist::bit_flip`) — the
/// container checksum downstream must catch both.
pub fn read_file_raw(path: &Path) -> std::io::Result<Vec<u8>> {
    let mut bytes = std::fs::read(path)?;
    if faultpoint::fires("persist::short_read") {
        bytes.truncate(bytes.len() / 2);
    }
    if faultpoint::fires("persist::bit_flip") {
        let mid = bytes.len() / 2;
        if let Some(b) = bytes.get_mut(mid) {
            *b ^= 0x10;
        }
    }
    Ok(bytes)
}

/// Reads `path` ([`read_file_raw`], so fault injection applies) and
/// validates it as a container of `kind` with `fingerprint`.
pub fn read_file_validated(
    path: &Path,
    kind: &str,
    fingerprint: u64,
) -> std::result::Result<Vec<u8>, ReadFailure> {
    let bytes = read_file_raw(path).map_err(ReadFailure::Io)?;
    read_container(&bytes, kind, fingerprint).map_err(ReadFailure::Container)
}

/// Why [`read_file_validated`] failed: the file could not be read at all,
/// or it was read but is not a valid container.
#[derive(Debug)]
pub enum ReadFailure {
    /// Filesystem-level failure (missing file, permissions, ...).
    Io(std::io::Error),
    /// The bytes were read but failed container validation.
    Container(ContainerError),
}

impl ReadFailure {
    /// True when the failure is simply "no such file" — an empty cache
    /// slot, not corruption.
    pub fn is_not_found(&self) -> bool {
        matches!(self, ReadFailure::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
    }
}

impl std::fmt::Display for ReadFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadFailure::Io(e) => write!(f, "io: {e}"),
            ReadFailure::Container(e) => write!(f, "{e}"),
        }
    }
}

/// Removes temporary files a crashed writer left behind in `dir`. Returns
/// how many were swept. Only files carrying this module's temp marker are
/// touched; never user data.
pub fn cleanup_stale_tmp(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.contains(TMP_MARKER) && std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    if swept > 0 {
        crate::obs::add(crate::obs::Counter::TmpSwept, swept as u64);
    }
    swept
}

/// Maximum number of files kept in a `quarantine/` directory. Quarantine
/// exists so corrupt artifacts stay inspectable, not as an archive: once
/// the cap is exceeded, [`quarantine_file`] evicts oldest-first (by mtime,
/// then name). Callers already hold the store's [`DirLock`], so the GC
/// never races another process on the same cache.
pub const QUARANTINE_MAX_FILES: usize = 64;

/// Byte-size ceiling for a `quarantine/` directory, enforced alongside the
/// file-count cap with the same oldest-first policy.
pub const QUARANTINE_MAX_BYTES: u64 = 16 * 1024 * 1024;

/// Count and total byte size of a store's `quarantine/` directory (for
/// `dragon cache stats`). `(0, 0)` when there is no quarantine yet.
pub fn quarantine_usage(store_dir: &Path) -> (usize, u64) {
    let qdir = store_dir.join("quarantine");
    let Ok(entries) = std::fs::read_dir(&qdir) else { return (0, 0) };
    let mut count = 0usize;
    let mut bytes = 0u64;
    for entry in entries.flatten() {
        let Ok(meta) = entry.metadata() else { continue };
        if meta.is_file() {
            count += 1;
            bytes += meta.len();
        }
    }
    (count, bytes)
}

/// Evicts oldest quarantined files until `qdir` is back under both caps.
/// Returns how many files were removed.
fn quarantine_gc(qdir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(qdir) else { return 0 };
    // (mtime, name, path, len) — name as tie-break keeps eviction order
    // deterministic on coarse-mtime filesystems.
    let mut files: Vec<(std::time::SystemTime, std::ffi::OsString, PathBuf, u64)> = Vec::new();
    for entry in entries.flatten() {
        let Ok(meta) = entry.metadata() else { continue };
        if !meta.is_file() {
            continue;
        }
        let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
        files.push((mtime, entry.file_name(), entry.path(), meta.len()));
    }
    files.sort();
    let mut total: u64 = files.iter().map(|f| f.3).sum();
    let mut count = files.len();
    let mut evicted = 0;
    for (_, _, path, len) in files {
        if count <= QUARANTINE_MAX_FILES && total <= QUARANTINE_MAX_BYTES {
            break;
        }
        if std::fs::remove_file(&path).is_ok() {
            evicted += 1;
            count -= 1;
            total = total.saturating_sub(len);
        }
    }
    if evicted > 0 {
        crate::obs::add(crate::obs::Counter::QuarantineEvicted, evicted as u64);
    }
    evicted
}

/// Moves `path` aside into `<dir>/quarantine/<name>.<suffix>[.N]` instead
/// of deleting it, so corrupt artifacts stay inspectable. Returns the
/// quarantine destination.
pub fn quarantine_file(path: &Path, suffix: &str) -> Result<PathBuf> {
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let qdir = dir.join("quarantine");
    std::fs::create_dir_all(&qdir)
        .map_err(|e| Error::io(format!("creating {}", qdir.display()), e))?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| Error::Format(format!("quarantine: bad path {}", path.display())))?;
    let mut dest = qdir.join(format!("{name}.{suffix}"));
    let mut n = 0u32;
    while dest.exists() {
        n += 1;
        dest = qdir.join(format!("{name}.{suffix}.{n}"));
    }
    std::fs::rename(path, &dest).map_err(|e| {
        Error::io(format!("quarantining {} to {}", path.display(), dest.display()), e)
    })?;
    crate::obs::incr(crate::obs::Counter::QuarantineEvents);
    // Keep quarantine bounded: evict oldest entries beyond the caps. The
    // just-quarantined file is the newest, so it always survives its own GC.
    quarantine_gc(&qdir);
    Ok(dest)
}

// ---------------------------------------------------------------------------
// Advisory directory lock
// ---------------------------------------------------------------------------

/// Directories locked by *this* process — `create_new` on a lock file
/// cannot arbitrate between two sessions inside one process, so an
/// in-process registry backs the on-disk file.
static HELD: Mutex<Option<BTreeSet<PathBuf>>> = Mutex::new(None);

fn held() -> std::sync::MutexGuard<'static, Option<BTreeSet<PathBuf>>> {
    HELD.lock().unwrap_or_else(|p| p.into_inner())
}

/// True when `pid` names a live process. On Linux this consults `/proc`;
/// elsewhere it conservatively answers `true` (never steal a lock we
/// cannot prove stale).
fn process_alive(pid: u32) -> bool {
    if pid == 0 {
        return false;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        true
    }
}

/// How a [`DirLock`] acquisition went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquired {
    /// The lock was free.
    Fresh,
    /// A dead owner's stale lock file was taken over.
    TookOverStale,
}

/// A held advisory lock on a directory. Released (file removed) on drop —
/// including on panic unwind, so an injected fault inside a store
/// operation does not wedge the directory.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
    dir: PathBuf,
    /// How the lock was obtained (fresh vs. stale takeover).
    pub acquired: Acquired,
}

/// Name of the lock file inside a locked directory.
pub const LOCK_FILE: &str = "LOCK";

impl DirLock {
    /// Acquires the advisory lock for `dir`, waiting up to `wait` (polling
    /// every 10 ms) for a live owner to release it. A lock file whose owner
    /// pid is provably dead is quarantine-free stale state and is taken
    /// over immediately. Errors with [`Error::Io`] (`WouldBlock`) when the
    /// wait budget runs out.
    pub fn acquire(dir: &Path, wait: Duration) -> Result<DirLock> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::io(format!("creating {}", dir.display()), e))?;
        let canon = std::fs::canonicalize(dir).unwrap_or_else(|_| dir.to_path_buf());
        let path = dir.join(LOCK_FILE);
        let deadline = std::time::Instant::now() + wait;
        let mut acquired = Acquired::Fresh;
        loop {
            // In-process arbitration first: the file cannot distinguish two
            // sessions of one pid.
            let in_process_free = {
                let mut g = held();
                let set = g.get_or_insert_with(BTreeSet::new);
                if set.contains(&canon) {
                    false
                } else {
                    set.insert(canon.clone());
                    true
                }
            };
            if in_process_free {
                match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                    Ok(mut f) => {
                        let _ = writeln!(f, "{}", std::process::id());
                        let _ = f.sync_all();
                        // A fresh lock also sweeps temp litter from any
                        // previous crashed writer.
                        cleanup_stale_tmp(dir);
                        return Ok(DirLock { path, dir: canon, acquired });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                        held().get_or_insert_with(BTreeSet::new).remove(&canon);
                        let owner: Option<u32> = std::fs::read_to_string(&path)
                            .ok()
                            .and_then(|s| s.trim().parse().ok());
                        let stale = match owner {
                            // Our own pid on disk but not in the in-process
                            // registry: a previous incarnation crashed hard.
                            Some(pid) if pid == std::process::id() => true,
                            Some(pid) => !process_alive(pid),
                            // Unreadable/empty lock file: racing with the
                            // owner writing it, or garbage. Retry; treat as
                            // stale only if still unreadable near deadline.
                            None => std::time::Instant::now() >= deadline,
                        };
                        if stale {
                            let _ = std::fs::remove_file(&path);
                            acquired = Acquired::TookOverStale;
                            // The dead owner may have crashed mid-write:
                            // sweep its temp litter right at takeover, not
                            // just on the (racy) re-acquire that follows.
                            cleanup_stale_tmp(dir);
                            continue;
                        }
                    }
                    Err(e) => {
                        held().get_or_insert_with(BTreeSet::new).remove(&canon);
                        return Err(Error::io(format!("locking {}", path.display()), e));
                    }
                }
            }
            if std::time::Instant::now() >= deadline {
                let owner = std::fs::read_to_string(&path).unwrap_or_default();
                return Err(Error::io(
                    format!(
                        "cache directory {} is locked by pid {}",
                        dir.display(),
                        owner.trim()
                    ),
                    std::io::Error::new(std::io::ErrorKind::WouldBlock, "lock held"),
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        if let Some(set) = held().as_mut() {
            set.remove(&self.dir);
        }
    }
}

/// Mixes the crate version and container format version into a toolchain
/// fingerprint; callers fold in their own options salt. Any toolchain
/// upgrade invalidates (quarantines) old caches instead of trusting them.
pub fn toolchain_fingerprint() -> u64 {
    let mut h = StableHasher::new();
    h.write_str("araa-toolchain");
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_u32(FORMAT_VERSION);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        crate::testdir::unique_dir(tag)
    }

    #[test]
    fn container_round_trips() {
        let payload = b"hello world".to_vec();
        let bytes = write_container("test", 42, &payload);
        assert_eq!(read_container(&bytes, "test", 42).unwrap(), payload);
    }

    #[test]
    fn container_rejects_every_single_byte_mutation() {
        let bytes = write_container("test", 7, b"payload bytes here");
        for i in 0..bytes.len() {
            for mask in [0x01u8, 0x80] {
                let mut m = bytes.clone();
                m[i] ^= mask;
                assert!(
                    read_container(&m, "test", 7).is_err(),
                    "mutation at byte {i} mask {mask:#x} was accepted"
                );
            }
        }
    }

    #[test]
    fn container_rejects_truncation_and_garbage() {
        let bytes = write_container("test", 7, b"data");
        for cut in 0..bytes.len() {
            assert!(read_container(&bytes[..cut], "test", 7).is_err());
        }
        let mut appended = bytes.clone();
        appended.extend_from_slice(b"junk");
        assert!(read_container(&appended, "test", 7).is_err());
        assert_eq!(read_container(&[], "test", 7), Err(ContainerError::Truncated));
    }

    #[test]
    fn container_checks_kind_and_fingerprint() {
        let bytes = write_container("manifest", 1, b"x");
        assert!(matches!(
            read_container(&bytes, "entry", 1),
            Err(ContainerError::BadKind(k)) if k == "manifest"
        ));
        assert!(matches!(
            read_container(&bytes, "manifest", 2),
            Err(ContainerError::BadFingerprint { .. })
        ));
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = tmp_dir("persist_atomic");
        let path = dir.join("file.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second version");
        // No temp litter.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cleanup_sweeps_only_tmp_files() {
        let dir = tmp_dir("persist_sweep");
        std::fs::write(dir.join(format!("a{TMP_MARKER}.1.2")), b"x").unwrap();
        std::fs::write(dir.join("keep.bin"), b"y").unwrap();
        assert_eq!(cleanup_stale_tmp(&dir), 1);
        assert!(dir.join("keep.bin").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_moves_not_deletes() {
        let dir = tmp_dir("persist_quar");
        let p = dir.join("bad.bin");
        std::fs::write(&p, b"corrupt").unwrap();
        let dest = quarantine_file(&p, "checksum").unwrap();
        assert!(!p.exists());
        assert_eq!(std::fs::read(&dest).unwrap(), b"corrupt");
        // A second quarantine of the same name gets a numbered slot.
        std::fs::write(&p, b"corrupt2").unwrap();
        let dest2 = quarantine_file(&p, "checksum").unwrap();
        assert_ne!(dest, dest2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_cap_evicts_oldest_first() {
        let dir = tmp_dir("persist_quar_cap");
        std::fs::create_dir_all(&dir).unwrap();
        let qdir = dir.join("quarantine");
        std::fs::create_dir_all(&qdir).unwrap();
        // Pre-fill the quarantine to exactly the cap with files whose
        // mtimes tick upward, oldest = old000.
        for i in 0..QUARANTINE_MAX_FILES {
            let p = qdir.join(format!("old{i:03}.bin"));
            std::fs::write(&p, b"stale").unwrap();
            let t = std::time::SystemTime::now() - Duration::from_secs(1000 - i as u64);
            let f = std::fs::File::open(&p).unwrap();
            f.set_modified(t).unwrap();
        }
        // One more quarantine pushes it over: the oldest goes, the newest
        // (just-quarantined) file survives.
        let victim = dir.join("fresh.bin");
        std::fs::write(&victim, b"corrupt").unwrap();
        let dest = quarantine_file(&victim, "checksum").unwrap();
        let (count, bytes) = quarantine_usage(&dir);
        assert_eq!(count, QUARANTINE_MAX_FILES, "back at the cap after GC");
        assert!(bytes <= QUARANTINE_MAX_BYTES);
        assert!(dest.exists(), "newest entry survives its own GC");
        assert!(!qdir.join("old000.bin").exists(), "oldest evicted");
        assert!(qdir.join("old001.bin").exists(), "only the overflow evicted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_byte_cap_evicts_oldest_first() {
        let dir = tmp_dir("persist_quar_bytes");
        std::fs::create_dir_all(&dir).unwrap();
        let qdir = dir.join("quarantine");
        std::fs::create_dir_all(&qdir).unwrap();
        // Two huge old files put the directory over the byte cap even
        // though the count is tiny.
        let big = vec![0u8; (QUARANTINE_MAX_BYTES / 2 + 1024) as usize];
        for (i, name) in ["huge_a.bin", "huge_b.bin"].iter().enumerate() {
            let p = qdir.join(name);
            std::fs::write(&p, &big).unwrap();
            let t = std::time::SystemTime::now() - Duration::from_secs(100 - i as u64);
            std::fs::File::open(&p).unwrap().set_modified(t).unwrap();
        }
        let victim = dir.join("small.bin");
        std::fs::write(&victim, b"corrupt").unwrap();
        let dest = quarantine_file(&victim, "checksum").unwrap();
        let (_, bytes) = quarantine_usage(&dir);
        assert!(bytes <= QUARANTINE_MAX_BYTES, "byte cap enforced, got {bytes}");
        assert!(dest.exists());
        assert!(!qdir.join("huge_a.bin").exists(), "oldest big file evicted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_usage_empty_when_missing() {
        let dir = tmp_dir("persist_quar_none");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(quarantine_usage(&dir), (0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_takeover_sweeps_crashed_writer_tmp() {
        let dir = tmp_dir("persist_takeover_sweep");
        std::fs::create_dir_all(&dir).unwrap();
        // Simulate a writer that died mid-commit: stale lock + temp litter.
        std::fs::write(dir.join(LOCK_FILE), b"4000000000\n").unwrap();
        std::fs::write(dir.join(format!("entry{TMP_MARKER}.123.7")), b"partial").unwrap();
        std::fs::write(dir.join("manifest.araa"), b"committed").unwrap();
        let lock = DirLock::acquire(&dir, Duration::from_millis(200)).unwrap();
        assert_eq!(lock.acquired, Acquired::TookOverStale);
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(TMP_MARKER))
            .collect();
        assert!(litter.is_empty(), "takeover must sweep temp litter: {litter:?}");
        assert!(dir.join("manifest.araa").exists(), "committed data untouched");
        drop(lock);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lock_excludes_second_acquirer_and_releases_on_drop() {
        let dir = tmp_dir("persist_lock");
        let lock = DirLock::acquire(&dir, Duration::from_millis(50)).unwrap();
        assert_eq!(lock.acquired, Acquired::Fresh);
        let err = DirLock::acquire(&dir, Duration::from_millis(30));
        assert!(err.is_err(), "second acquisition must time out");
        drop(lock);
        let again = DirLock::acquire(&dir, Duration::from_millis(50)).unwrap();
        drop(again);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_of_dead_pid_is_taken_over() {
        let dir = tmp_dir("persist_stale");
        std::fs::create_dir_all(&dir).unwrap();
        // A pid beyond any realistic pid_max: provably dead on /proc.
        std::fs::write(dir.join(LOCK_FILE), b"4000000000\n").unwrap();
        let lock = DirLock::acquire(&dir, Duration::from_millis(200)).unwrap();
        assert_eq!(lock.acquired, Acquired::TookOverStale);
        drop(lock);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_foreign_lock_times_out() {
        let dir = tmp_dir("persist_live");
        std::fs::create_dir_all(&dir).unwrap();
        // pid 1 is always alive in the container/host.
        std::fs::write(dir.join(LOCK_FILE), b"1\n").unwrap();
        let err = DirLock::acquire(&dir, Duration::from_millis(40));
        assert!(err.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn codec_round_trips_compound_values() {
        let mut w = ByteWriter::new();
        let v: Vec<(String, Option<u64>)> =
            vec![("a".into(), Some(1)), ("b".into(), None)];
        v.save(&mut w);
        true.save(&mut w);
        (-5i64).save(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back: Vec<(String, Option<u64>)> = Persist::load(&mut r).unwrap();
        assert_eq!(back, v);
        assert!(bool::load(&mut r).unwrap());
        assert_eq!(i64::load(&mut r).unwrap(), -5);
        r.finish().unwrap();
    }

    #[test]
    fn text_checksum_round_trips_and_catches_corruption() {
        let mut doc = String::from("proc,array\nverify,xcr\n");
        append_text_checksum(&mut doc);
        assert!(doc.lines().last().unwrap().starts_with(TEXT_CHECKSUM_PREFIX));
        let body = verify_text_checksum(&doc).unwrap();
        assert_eq!(body, "proc,array\nverify,xcr\n");
        // No trailer: passes through untouched (backward compatibility).
        assert_eq!(verify_text_checksum("a,b\n").unwrap(), "a,b\n");
        assert_eq!(verify_text_checksum("").unwrap(), "");
        // Any body mutation fails verification.
        let corrupted = doc.replace("xcr", "xce");
        assert!(verify_text_checksum(&corrupted).is_err());
        // A mangled trailer fails too.
        let bad_trailer = format!("a,b\n{TEXT_CHECKSUM_PREFIX}nothex\n");
        assert!(verify_text_checksum(&bad_trailer).is_err());
    }

    #[test]
    fn loose_read_reports_kind_and_fingerprint() {
        let bytes = write_container("entry", 99, b"pp");
        let (kind, fp, payload) = read_container_loose(&bytes).unwrap();
        assert_eq!((kind.as_str(), fp, payload.as_slice()), ("entry", 99, b"pp".as_slice()));
    }

    #[test]
    fn reader_rejects_hostile_lengths() {
        // A Vec length far beyond the buffer must error, not OOM or panic.
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let res: Result<Vec<u8>> = Persist::load(&mut r);
        assert!(res.is_err());
        let mut r2 = ByteReader::new(&bytes);
        assert!(r2.str().is_err());
    }
}
