//! Analysis budgets: hard ceilings that turn runaway computations into
//! graceful precision loss.
//!
//! Fourier–Motzkin elimination is worst-case exponential and the parsers are
//! recursive, so an adversarial (or merely broken) input could otherwise pin
//! a core or blow the stack. Instead of failing, every expensive phase
//! charges work against a thread-local [`BudgetScope`]; when a budget runs
//! dry the phase *widens* — it returns a conservative over-approximation
//! (ultimately the whole declared array, `[0:N-1:1]`) and records why. The
//! result is still sound for every consumer: regions only grow.
//!
//! Usage:
//!
//! ```
//! use support::budget::{self, BudgetConfig};
//!
//! let _scope = budget::enter(BudgetConfig { fm_steps: 10, ..Default::default() });
//! assert!(budget::charge_steps(4));
//! assert!(!budget::charge_steps(100), "budget exhausted");
//! assert!(budget::exhausted());
//! ```
//!
//! With no scope active every charge succeeds (unlimited), so library code
//! can charge unconditionally.

use std::cell::RefCell;

/// Budget knobs. All limits are per [`enter`] scope (the driver opens one
/// scope per analyzed procedure, so these are per-procedure ceilings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetConfig {
    /// Fourier–Motzkin work steps (variable eliminations + constraint
    /// pairings) before projections start dropping constraints.
    pub fm_steps: u64,
    /// Constraint-count cap per system during elimination; beyond it the
    /// most complex inequalities are dropped (a sound widening).
    pub max_constraints: usize,
    /// Interprocedural record translations before propagation degrades the
    /// remaining regions to `MESSY`.
    pub translations: u64,
    /// Recursion-depth ceiling for [`recursion_guard`] (parsers, tree
    /// walks). Exceeding it is reported as an error, not a stack overflow.
    pub recursion_limit: u32,
}

impl Default for BudgetConfig {
    fn default() -> Self {
        BudgetConfig {
            fm_steps: 2_000_000,
            max_constraints: DEFAULT_MAX_CONSTRAINTS,
            translations: 5_000_000,
            recursion_limit: DEFAULT_RECURSION_LIMIT,
        }
    }
}

impl BudgetConfig {
    /// A deliberately tiny budget, useful for exercising degradation paths.
    pub fn tiny() -> Self {
        BudgetConfig {
            fm_steps: 8,
            max_constraints: 4,
            translations: 4,
            recursion_limit: 16,
        }
    }
}

/// Constraint cap used when no scope is active (the historical
/// `STEP_BUDGET` of the Fourier–Motzkin module).
pub const DEFAULT_MAX_CONSTRAINTS: usize = 96;

/// Recursion ceiling used when no scope is active. Deep enough for any real
/// source, shallow enough that a pathological input errors out long before
/// the thread stack is at risk.
pub const DEFAULT_RECURSION_LIMIT: u32 = 200;

#[derive(Debug)]
struct State {
    config: BudgetConfig,
    fm_steps_left: u64,
    translations_left: u64,
    /// Sticky description of the first budget that ran dry.
    exhausted: Option<&'static str>,
}

thread_local! {
    static ACTIVE: RefCell<Option<State>> = const { RefCell::new(None) };
    static DEPTH: RefCell<u32> = const { RefCell::new(0) };
}

/// An active budget scope; dropping it restores the previous scope (scopes
/// nest, innermost wins).
#[derive(Debug)]
pub struct BudgetScope {
    prev: Option<State>,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        let closed =
            ACTIVE.with(|a| std::mem::replace(&mut *a.borrow_mut(), self.prev.take()));
        if let Some(state) = closed {
            // Report consumed units (limit minus remainder) to the
            // observability layer; no-ops when nothing is collecting.
            crate::obs::add(
                crate::obs::Counter::BudgetFmSteps,
                state.config.fm_steps.saturating_sub(state.fm_steps_left),
            );
            crate::obs::add(
                crate::obs::Counter::BudgetTranslations,
                state.config.translations.saturating_sub(state.translations_left),
            );
            if state.exhausted.is_some() {
                crate::obs::incr(crate::obs::Counter::BudgetExhausted);
            }
        }
    }
}

/// Opens a budget scope on this thread.
pub fn enter(config: BudgetConfig) -> BudgetScope {
    let state = State {
        config,
        fm_steps_left: config.fm_steps,
        translations_left: config.translations,
        exhausted: None,
    };
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(state));
    BudgetScope { prev }
}

fn charge(n: u64, pick: impl Fn(&mut State) -> &mut u64, label: &'static str) -> bool {
    // Wall-clock deadlines and memory budgets piggyback on the work
    // checkpoints: an expired deadline or exhausted allocation budget
    // denies every further charge, so the phase widens exactly as if its
    // step budget ran dry. Checked first so they work without a scope too.
    if crate::deadline::expired_fast() {
        note_exhausted("deadline");
        return false;
    }
    if !crate::memory::checkpoint() {
        note_exhausted("memory");
        return false;
    }
    ACTIVE.with(|a| {
        let mut b = a.borrow_mut();
        let Some(state) = b.as_mut() else { return true };
        let left = pick(state);
        if *left >= n {
            *left -= n;
            true
        } else {
            *left = 0;
            if state.exhausted.is_none() {
                state.exhausted = Some(label);
            }
            false
        }
    })
}

/// Charges `n` Fourier–Motzkin work steps; `false` once the budget is dry
/// (callers must widen instead of continuing).
pub fn charge_steps(n: u64) -> bool {
    charge(n, |s| &mut s.fm_steps_left, "fm-steps")
}

/// Charges one interprocedural record translation.
pub fn charge_translation() -> bool {
    charge(1, |s| &mut s.translations_left, "translations")
}

/// The constraint-count cap of the active scope (or the default).
pub fn constraint_cap() -> usize {
    ACTIVE.with(|a| {
        a.borrow()
            .as_ref()
            .map(|s| s.config.max_constraints)
            .unwrap_or(DEFAULT_MAX_CONSTRAINTS)
    })
}

/// True once any budget of the active scope has run dry (sticky).
pub fn exhausted() -> bool {
    ACTIVE.with(|a| a.borrow().as_ref().is_some_and(|s| s.exhausted.is_some()))
}

/// Which budget ran dry first, if any.
pub fn exhaustion() -> Option<&'static str> {
    ACTIVE.with(|a| a.borrow().as_ref().and_then(|s| s.exhausted))
}

/// Marks the active scope exhausted with an explicit label (used by phases
/// that detect their own overrun conditions).
pub fn note_exhausted(label: &'static str) {
    ACTIVE.with(|a| {
        if let Some(state) = a.borrow_mut().as_mut() {
            if state.exhausted.is_none() {
                state.exhausted = Some(label);
            }
        }
    });
}

/// RAII token for one recursion level; see [`recursion_guard`].
#[derive(Debug)]
pub struct RecursionGuard {
    _private: (),
}

impl Drop for RecursionGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| {
            let mut d = d.borrow_mut();
            *d = d.saturating_sub(1);
        });
    }
}

/// Enters one recursion level. Returns `None` when the ceiling is reached —
/// the caller should surface a "nesting too deep" error instead of
/// recursing further (and risking an uncatchable stack overflow).
pub fn recursion_guard() -> Option<RecursionGuard> {
    if crate::deadline::expired_fast() {
        note_exhausted("deadline");
        return None;
    }
    if !crate::memory::checkpoint() {
        note_exhausted("memory");
        return None;
    }
    let limit = ACTIVE.with(|a| {
        a.borrow()
            .as_ref()
            .map(|s| s.config.recursion_limit)
            .unwrap_or(DEFAULT_RECURSION_LIMIT)
    });
    DEPTH.with(|d| {
        let mut d = d.borrow_mut();
        if *d >= limit {
            note_exhausted("recursion");
            None
        } else {
            *d += 1;
            Some(RecursionGuard { _private: () })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_without_scope() {
        assert!(charge_steps(u64::MAX));
        assert!(charge_translation());
        assert!(!exhausted());
        assert_eq!(constraint_cap(), DEFAULT_MAX_CONSTRAINTS);
    }

    #[test]
    fn steps_run_dry_and_stick() {
        let _s = enter(BudgetConfig { fm_steps: 5, ..Default::default() });
        assert!(charge_steps(5));
        assert!(!charge_steps(1));
        assert!(exhausted());
        assert_eq!(exhaustion(), Some("fm-steps"));
        // Sticky: later small charges still fail.
        assert!(!charge_steps(1));
    }

    #[test]
    fn scope_restores_on_drop() {
        {
            let _s = enter(BudgetConfig { fm_steps: 0, ..Default::default() });
            assert!(!charge_steps(1));
        }
        assert!(charge_steps(1), "no scope → unlimited again");
        assert!(!exhausted());
    }

    #[test]
    fn scopes_nest() {
        let _outer = enter(BudgetConfig { fm_steps: 100, ..Default::default() });
        {
            let _inner = enter(BudgetConfig { fm_steps: 0, ..Default::default() });
            assert!(!charge_steps(1));
            assert!(exhausted());
        }
        assert!(!exhausted(), "outer scope untouched by inner exhaustion");
        assert!(charge_steps(1));
    }

    #[test]
    fn translation_budget_separate_from_steps() {
        let _s = enter(BudgetConfig { translations: 1, ..Default::default() });
        assert!(charge_translation());
        assert!(!charge_translation());
        assert_eq!(exhaustion(), Some("translations"));
        assert!(charge_steps(1), "fm budget unaffected");
    }

    #[test]
    fn recursion_guard_enforces_ceiling() {
        let _s = enter(BudgetConfig { recursion_limit: 3, ..Default::default() });
        let g1 = recursion_guard();
        let g2 = recursion_guard();
        let g3 = recursion_guard();
        assert!(g1.is_some() && g2.is_some() && g3.is_some());
        assert!(recursion_guard().is_none());
        drop(g3);
        assert!(recursion_guard().is_some(), "depth released on drop");
        drop((g1, g2));
    }

    #[test]
    fn note_exhausted_is_first_wins() {
        let _s = enter(BudgetConfig::default());
        note_exhausted("first");
        note_exhausted("second");
        assert_eq!(exhaustion(), Some("first"));
    }

    #[test]
    fn tiny_config_is_tiny() {
        let t = BudgetConfig::tiny();
        assert!(t.fm_steps < BudgetConfig::default().fm_steps);
        assert!(t.recursion_limit < BudgetConfig::default().recursion_limit);
    }
}
