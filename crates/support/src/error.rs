//! Workspace-wide error type.
//!
//! Every crate in the workspace reports failures through [`Error`]; the
//! variants mirror the pipeline stages (lexing, parsing, semantic checking,
//! lowering, analysis, I/O) so a driver can tell the user which stage
//! rejected the input.

use std::fmt;

/// A source position carried by diagnostics: 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Position of the very first character of a file.
    pub const START: Pos = Pos { line: 1, col: 1 };

    /// Builds a position; both coordinates are 1-based.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The error type shared by the whole workspace.
#[derive(Debug)]
pub enum Error {
    /// Lexical error at a position (unknown character, bad literal, ...).
    Lex { pos: Pos, msg: String },
    /// Syntax error at a position.
    Parse { pos: Pos, msg: String },
    /// Semantic error (undeclared array, arity mismatch, ...).
    Semantic { pos: Option<Pos>, msg: String },
    /// AST → WHIRL lowering failure.
    Lower(String),
    /// Analysis-stage failure (malformed region, missing summary, ...).
    Analysis(String),
    /// Malformed input to a tool (bad `.rgn` row, unknown project file, ...).
    Format(String),
    /// Underlying I/O error with context.
    Io { context: String, source: std::io::Error },
    /// A pipeline stage failed for one procedure and its results were
    /// replaced by a conservative approximation. Carries the procedure
    /// name, the stage that degraded (`ipl`, `ipa`, `extract`, ...), and a
    /// human-readable reason.
    Degraded { proc: String, stage: String, detail: String },
}

impl Error {
    /// Convenience constructor for lexer errors.
    pub fn lex(pos: Pos, msg: impl Into<String>) -> Self {
        Error::Lex { pos, msg: msg.into() }
    }

    /// Convenience constructor for parser errors.
    pub fn parse(pos: Pos, msg: impl Into<String>) -> Self {
        Error::Parse { pos, msg: msg.into() }
    }

    /// Convenience constructor for semantic errors with a known position.
    pub fn semantic_at(pos: Pos, msg: impl Into<String>) -> Self {
        Error::Semantic { pos: Some(pos), msg: msg.into() }
    }

    /// Convenience constructor for semantic errors without a position.
    pub fn semantic(msg: impl Into<String>) -> Self {
        Error::Semantic { pos: None, msg: msg.into() }
    }

    /// Wraps an I/O error with a human-readable context string.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io { context: context.into(), source }
    }

    /// The source position the diagnostic points at, when it has one.
    /// Recovery passes use this to attribute a failure to the enclosing
    /// procedure.
    pub fn pos(&self) -> Option<Pos> {
        match self {
            Error::Lex { pos, .. } | Error::Parse { pos, .. } => Some(*pos),
            Error::Semantic { pos, .. } => *pos,
            _ => None,
        }
    }

    /// Records a degraded procedure: `stage` failed for `proc` and a
    /// conservative approximation was substituted.
    pub fn degraded(
        proc: impl Into<String>,
        stage: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        Error::Degraded { proc: proc.into(), stage: stage.into(), detail: detail.into() }
    }
}

impl Clone for Error {
    fn clone(&self) -> Self {
        match self {
            Error::Lex { pos, msg } => Error::Lex { pos: *pos, msg: msg.clone() },
            Error::Parse { pos, msg } => Error::Parse { pos: *pos, msg: msg.clone() },
            Error::Semantic { pos, msg } => {
                Error::Semantic { pos: *pos, msg: msg.clone() }
            }
            Error::Lower(msg) => Error::Lower(msg.clone()),
            Error::Analysis(msg) => Error::Analysis(msg.clone()),
            Error::Format(msg) => Error::Format(msg.clone()),
            // `std::io::Error` is not `Clone`; rebuild one with the same
            // kind and rendered message — diagnostics only ever display it.
            Error::Io { context, source } => Error::Io {
                context: context.clone(),
                source: std::io::Error::new(source.kind(), source.to_string()),
            },
            Error::Degraded { proc, stage, detail } => Error::Degraded {
                proc: proc.clone(),
                stage: stage.clone(),
                detail: detail.clone(),
            },
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { pos, msg } => write!(f, "lex error at {pos}: {msg}"),
            Error::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            Error::Semantic { pos: Some(pos), msg } => {
                write!(f, "semantic error at {pos}: {msg}")
            }
            Error::Semantic { pos: None, msg } => write!(f, "semantic error: {msg}"),
            Error::Lower(msg) => write!(f, "lowering error: {msg}"),
            Error::Analysis(msg) => write!(f, "analysis error: {msg}"),
            Error::Format(msg) => write!(f, "format error: {msg}"),
            Error::Io { context, source } => write!(f, "io error ({context}): {source}"),
            Error::Degraded { proc, stage, detail } => {
                write!(f, "degraded [{stage}] {proc}: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_displays_line_colon_col() {
        assert_eq!(Pos::new(12, 4).to_string(), "12:4");
    }

    #[test]
    fn error_display_includes_stage_and_position() {
        let e = Error::lex(Pos::new(3, 7), "unexpected `$`");
        assert_eq!(e.to_string(), "lex error at 3:7: unexpected `$`");
        let e = Error::parse(Pos::new(1, 1), "expected `)`");
        assert!(e.to_string().starts_with("parse error at 1:1"));
    }

    #[test]
    fn semantic_error_without_position() {
        let e = Error::semantic("array `a` redeclared");
        assert_eq!(e.to_string(), "semantic error: array `a` redeclared");
    }

    #[test]
    fn io_error_chains_source() {
        use std::error::Error as _;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = Error::io("reading project", inner);
        assert!(e.to_string().contains("reading project"));
        assert!(e.source().is_some());
    }

    #[test]
    fn clone_preserves_io_kind_and_message() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = Error::io("reading project", inner).clone();
        let Error::Io { context, source } = &e else { panic!("wrong variant") };
        assert_eq!(context, "reading project");
        assert_eq!(source.kind(), std::io::ErrorKind::NotFound);
        assert!(source.to_string().contains("gone"));
    }

    #[test]
    fn degraded_names_proc_and_stage() {
        let e = Error::degraded("lu_factor", "ipl", "worker panicked");
        assert_eq!(e.to_string(), "degraded [ipl] lu_factor: worker panicked");
        use std::error::Error as _;
        assert!(e.source().is_none());
    }
}
