//! Strongly-typed index newtypes and a dense map keyed by them.
//!
//! The compiler-shaped crates (whirl, ipa) are arena-based: nodes, symbols,
//! types, procedures, and call sites all live in flat vectors and refer to
//! each other by index. [`define_idx!`](crate::define_idx) stamps out a `u32` newtype per arena
//! so indices from different arenas cannot be confused, and [`IndexVec`]
//! provides the matching dense storage.

use std::marker::PhantomData;

/// Trait implemented by all index newtypes produced by
/// [`define_idx!`](crate::define_idx).
pub trait Idx: Copy + Eq + std::hash::Hash + std::fmt::Debug {
    /// Builds the index from a raw `usize`.
    fn from_usize(i: usize) -> Self;
    /// Extracts the raw `usize`.
    fn as_usize(self) -> usize;
}

/// Declares a `u32`-backed index newtype implementing [`Idx`].
#[macro_export]
macro_rules! define_idx {
    ($(#[$meta:meta])* $vis:vis struct $name:ident;) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        $vis struct $name(pub u32);

        impl $crate::idx::Idx for $name {
            fn from_usize(i: usize) -> Self {
                let Ok(raw) = u32::try_from(i) else {
                    panic!(concat!(stringify!($name), " overflow"));
                };
                $name(raw)
            }
            fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

/// A vector indexed by a strongly-typed index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx, T> Default for IndexVec<I, T> {
    fn default() -> Self {
        Self { raw: Vec::new(), _marker: PhantomData }
    }
}

impl<I: Idx, T> IndexVec<I, T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty vector with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Self { raw: Vec::with_capacity(cap), _marker: PhantomData }
    }

    /// Appends `value` and returns its index.
    pub fn push(&mut self, value: T) -> I {
        let idx = I::from_usize(self.raw.len());
        self.raw.push(value);
        idx
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when no element is stored.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The index the next `push` will return.
    pub fn next_idx(&self) -> I {
        I::from_usize(self.raw.len())
    }

    /// Immutable iteration in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Mutable iteration in index order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterates `(index, &element)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw.iter().enumerate().map(|(i, t)| (I::from_usize(i), t))
    }

    /// Returns `Some(&element)` when `idx` is in range.
    pub fn get(&self, idx: I) -> Option<&T> {
        self.raw.get(idx.as_usize())
    }

    /// Returns all indices in order.
    pub fn indices(&self) -> impl Iterator<Item = I> + '_ {
        (0..self.raw.len()).map(I::from_usize)
    }

    /// Borrows the raw backing slice.
    pub fn raw(&self) -> &[T] {
        &self.raw
    }
}

impl<I: Idx, T> std::ops::Index<I> for IndexVec<I, T> {
    type Output = T;
    fn index(&self, idx: I) -> &T {
        &self.raw[idx.as_usize()]
    }
}

impl<I: Idx, T> std::ops::IndexMut<I> for IndexVec<I, T> {
    fn index_mut(&mut self, idx: I) -> &mut T {
        &mut self.raw[idx.as_usize()]
    }
}

impl<I: Idx, T> FromIterator<T> for IndexVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self { raw: iter.into_iter().collect(), _marker: PhantomData }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_idx! {
        /// Test index.
        struct TestId;
    }

    #[test]
    fn push_returns_sequential_indices() {
        let mut v: IndexVec<TestId, &str> = IndexVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(a, TestId(0));
        assert_eq!(b, TestId(1));
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
    }

    #[test]
    fn get_is_checked() {
        let mut v: IndexVec<TestId, i32> = IndexVec::new();
        v.push(7);
        assert_eq!(v.get(TestId(0)), Some(&7));
        assert_eq!(v.get(TestId(9)), None);
    }

    #[test]
    fn iter_enumerated_pairs_indices() {
        let v: IndexVec<TestId, char> = ['x', 'y'].into_iter().collect();
        let pairs: Vec<(TestId, char)> = v.iter_enumerated().map(|(i, &c)| (i, c)).collect();
        assert_eq!(pairs, [(TestId(0), 'x'), (TestId(1), 'y')]);
    }

    #[test]
    fn next_idx_matches_push() {
        let mut v: IndexVec<TestId, u8> = IndexVec::new();
        let predicted = v.next_idx();
        let actual = v.push(0);
        assert_eq!(predicted, actual);
    }

    #[test]
    fn display_and_debug_formats() {
        assert_eq!(TestId(3).to_string(), "3");
        assert_eq!(format!("{:?}", TestId(3)), "TestId(3)");
    }
}
