//! ASCII table rendering for the Dragon text UI.
//!
//! The Dragon GUI displays "Array Regions analysis information ... in a
//! tabular structure" (Fig. 6). Our terminal substitute renders the same
//! columns with box-drawing borders, supports per-row highlighting (the
//! paper highlights find-matches in green), and truncates overlong cells.

/// One renderable table: a header row plus data rows.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Row>,
    max_cell_width: usize,
}

#[derive(Debug, Clone)]
struct Row {
    cells: Vec<String>,
    highlighted: bool,
}

/// ANSI escape that paints highlighted rows green, matching Dragon's
/// find-highlighting.
const GREEN: &str = "\x1b[32m";
const RESET: &str = "\x1b[0m";

impl Table {
    /// Creates a table with the given header labels.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            max_cell_width: 24,
        }
    }

    /// Caps cell width; longer content is truncated with `…`.
    pub fn with_max_cell_width(mut self, w: usize) -> Self {
        self.max_cell_width = w.max(4);
        self
    }

    /// Appends an ordinary row. Rows shorter than the header are padded.
    pub fn add_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.push_row(cells, false);
    }

    /// Appends a highlighted (green) row — used for find matches.
    pub fn add_highlighted_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.push_row(cells, true);
    }

    fn push_row<I, S>(&mut self, cells: I, highlighted: bool)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        while cells.len() < self.header.len() {
            cells.push(String::new());
        }
        self.rows.push(Row { cells, highlighted });
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn truncate(&self, s: &str) -> String {
        if s.chars().count() <= self.max_cell_width {
            s.to_string()
        } else {
            let mut out: String =
                s.chars().take(self.max_cell_width.saturating_sub(1)).collect();
            out.push('…');
            out
        }
    }

    fn widths(&self, cells: &[Vec<String>]) -> Vec<usize> {
        let ncols = self.header.len();
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        w.resize(ncols, 0);
        for row in cells {
            for (i, c) in row.iter().take(ncols).enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders the table. When `color` is true, highlighted rows are wrapped
    /// in ANSI green; otherwise they are prefixed with `>` in the left gutter.
    pub fn render(&self, color: bool) -> String {
        let truncated: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.cells.iter().map(|c| self.truncate(c)).collect())
            .collect();
        let widths = self.widths(&truncated);

        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };

        sep(&mut out);
        out.push('|');
        for (h, w) in self.header.iter().zip(&widths) {
            out.push(' ');
            out.push_str(h);
            out.push_str(&" ".repeat(w - h.chars().count()));
            out.push_str(" |");
        }
        out.push('\n');
        sep(&mut out);

        for (row, cells) in self.rows.iter().zip(&truncated) {
            if row.highlighted && color {
                out.push_str(GREEN);
            }
            out.push('|');
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let cell = if i == 0 && row.highlighted && !color {
                    format!(">{cell}")
                } else {
                    cell.to_string()
                };
                let pad = (w + 1).saturating_sub(cell.chars().count());
                out.push(' ');
                out.push_str(&cell);
                out.push_str(&" ".repeat(pad.saturating_sub(1)));
                out.push_str(" |");
            }
            if row.highlighted && color {
                out.push_str(RESET);
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["Array", "Mode", "Refs"]);
        t.add_row(["xcr", "USE", "4"]);
        t.add_highlighted_row(["u", "USE", "110"]);
        t
    }

    #[test]
    fn renders_header_and_rows() {
        let out = sample().render(false);
        assert!(out.contains("| Array |"));
        assert!(out.contains("| xcr"));
        assert!(out.contains("110"));
    }

    #[test]
    fn highlight_without_color_uses_gutter_marker() {
        let out = sample().render(false);
        assert!(out.contains(">u"), "highlighted row should carry a marker:\n{out}");
    }

    #[test]
    fn highlight_with_color_uses_ansi_green() {
        let out = sample().render(true);
        assert!(out.contains(GREEN));
        assert!(out.contains(RESET));
    }

    #[test]
    fn pads_short_rows_to_header_width() {
        let mut t = Table::new(["A", "B", "C"]);
        t.add_row(["only-one"]);
        let out = t.render(false);
        // Three column separators per data row (beyond the left border).
        let data_line = out.lines().nth(3).unwrap();
        assert_eq!(data_line.matches('|').count(), 4);
    }

    #[test]
    fn truncates_long_cells() {
        let mut t = Table::new(["X"]).with_max_cell_width(6);
        t.add_row(["abcdefghij"]);
        let out = t.render(false);
        assert!(out.contains("abcde…"));
        assert!(!out.contains("abcdefghij"));
    }

    #[test]
    fn row_count_tracks_rows() {
        assert_eq!(sample().row_count(), 2);
    }

    #[test]
    fn column_widths_fit_widest_cell() {
        let mut t = Table::new(["H"]);
        t.add_row(["wide-cell-content"]);
        let out = t.render(false);
        let border = out.lines().next().unwrap();
        assert!(border.len() >= "wide-cell-content".len() + 4);
    }
}
