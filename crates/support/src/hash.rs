//! Stable, dependency-free content hashing.
//!
//! The incremental analysis session (`araa::session`) keys its
//! per-procedure summary cache by a *content* hash of the procedure IR,
//! so the hash must be stable across runs, platforms, and — unlike
//! `std::collections::hash_map::DefaultHasher` — across process
//! invocations (SipHash is randomly keyed per process). This module
//! provides a 64-bit FNV-1a hasher fed explicitly typed values in
//! little-endian byte order.
//!
//! FNV-1a is not collision-resistant; every cache that uses these hashes
//! as keys must verify candidate hits structurally before reusing them
//! (see `whirl::hash::procs_correspond`), so a collision costs a cache
//! miss, never a wrong result.

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incrementally-fed FNV-1a hasher with typed write helpers.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to 64 bits so 32- and 64-bit targets agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot convenience: the FNV-1a hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_disambiguates_strings() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn typed_writes_are_order_sensitive() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::new();
        for h in [&mut a, &mut b] {
            h.write_str("verify");
            h.write_i64(-7);
            h.write_u8(3);
        }
        assert_eq!(a.finish(), b.finish());
    }
}
