//! Per-scope memory budgets layered on the counting global allocator.
//!
//! Step budgets ([`crate::budget`]) and deadlines ([`crate::deadline`])
//! bound *time*; this module bounds the last uncontrolled axis, *bytes*. A
//! [`MemoryBudget`] is an allocation ceiling shared by every thread working
//! on one logical task (one CLI invocation, one serve request). Threads
//! enter the budget with [`enter`]; afterwards every call to
//! [`checkpoint`] — which [`crate::budget::charge_steps`] and friends make
//! on the caller's behalf — charges the bytes allocated on this thread
//! since the previous checkpoint against the shared ceiling. Once the
//! ceiling is crossed the budget latches exhausted and every further charge
//! is denied, so the expensive phases *widen* exactly as if a step budget
//! ran dry: conservative over-approximation plus a structured
//! `Degradation`, never an OOM kill.
//!
//! Accounting is built on [`crate::obs::alloc::allocated_bytes`], which
//! counts bytes *requested* process-wide (churn, not residency; frees are
//! never subtracted). Two consequences, both conservative:
//!
//! - a budget bounds cumulative allocation, which is always ≥ peak
//!   residency, so a bounded charge implies bounded RSS growth;
//! - deltas observed between two checkpoints on one thread include bytes
//!   allocated by *other* threads in that window, so concurrent tasks
//!   over-charge each other. Budgets are attribution heuristics with a
//!   sound failure direction: they only ever trip early, never late.
//!
//! With no scope active every checkpoint succeeds, so library code never
//! needs to know whether a budget is installed.
//!
//! Usage (accounting only moves when a [`CountingAllocator`] is installed
//! as the global allocator, as the `dragon` binary does; `force_exhaust`
//! stands in for a real overrun here):
//!
//! ```
//! use support::memory::{self, MemoryBudget};
//!
//! let budget = MemoryBudget::mb(64);
//! let scope = memory::enter(budget.clone());
//! assert!(memory::checkpoint(), "headroom to spare");
//! budget.force_exhaust();
//! assert!(!memory::checkpoint(), "ceiling crossed: widen, don't allocate");
//! drop(scope);
//! assert!(memory::checkpoint(), "no scope → unlimited");
//! ```
//!
//! [`CountingAllocator`]: crate::obs::alloc::CountingAllocator
//!
//! Under the `fault-injection` feature the faultpoint `memory::charge` can
//! be armed to deny the Nth checkpoint, forcing exhaustion without having
//! to actually allocate the budget away.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared allocation ceiling, in bytes. Cheap to clone (`Arc`); hand
/// clones to worker threads so their allocations charge the same pool.
#[derive(Debug)]
pub struct MemoryBudget {
    limit_bytes: u64,
    charged: AtomicU64,
    exhausted: AtomicBool,
}

impl MemoryBudget {
    /// A budget of `limit` bytes.
    pub fn bytes(limit: u64) -> Arc<Self> {
        Arc::new(MemoryBudget {
            limit_bytes: limit,
            charged: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        })
    }

    /// A budget of `limit_mb` mebibytes.
    pub fn mb(limit_mb: u64) -> Arc<Self> {
        Self::bytes(limit_mb.saturating_mul(1 << 20))
    }

    /// The configured ceiling, in bytes.
    pub fn limit_bytes(&self) -> u64 {
        self.limit_bytes
    }

    /// Total bytes charged so far. Charges are monotone (nothing is ever
    /// refunded), so this is also the budget's high-water mark.
    pub fn charged_bytes(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }

    /// True once the ceiling has been crossed (sticky).
    pub fn exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Latches the budget exhausted without charging (used by fault
    /// injection and by supervisors that detect overruns externally).
    pub fn force_exhaust(&self) {
        self.exhausted.store(true, Ordering::Relaxed);
    }

    /// Charges `n` bytes; `false` once the ceiling is crossed. The charge
    /// that crosses the ceiling is still recorded (the high-water mark may
    /// overshoot the limit by up to one inter-checkpoint delta).
    fn charge(&self, n: u64) -> bool {
        if self.exhausted.load(Ordering::Relaxed) {
            return false;
        }
        let total = self.charged.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if total > self.limit_bytes {
            self.exhausted.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }
}

thread_local! {
    /// Innermost-wins stack of entered budgets for this thread.
    static STACK: RefCell<Vec<Arc<MemoryBudget>>> = const { RefCell::new(Vec::new()) };
    /// `allocated_bytes()` as of the last checkpoint on this thread.
    static MARK: RefCell<u64> = const { RefCell::new(0) };
}

/// An active memory scope on this thread; dropping it flushes the final
/// allocation delta to its budget and restores the enclosing scope.
#[derive(Debug)]
pub struct MemoryScope {
    _private: (),
}

impl Drop for MemoryScope {
    fn drop(&mut self) {
        flush_delta();
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Enters `budget` on this thread (scopes nest, innermost wins). Any bytes
/// already allocated but not yet checkpointed are flushed to the enclosing
/// scope first, so nested budgets only pay for their own window.
pub fn enter(budget: Arc<MemoryBudget>) -> MemoryScope {
    flush_delta();
    STACK.with(|s| s.borrow_mut().push(budget));
    MARK.with(|m| *m.borrow_mut() = crate::obs::alloc::allocated_bytes());
    MemoryScope { _private: () }
}

/// The innermost budget entered on this thread, for handing to worker
/// threads (mirrors [`crate::deadline::current`]): capture it on the
/// spawning thread, [`enter`] it on each worker.
pub fn current() -> Option<Arc<MemoryBudget>> {
    STACK.with(|s| s.borrow().last().cloned())
}

/// True once the innermost budget on this thread is exhausted.
pub fn exhausted() -> bool {
    STACK.with(|s| s.borrow().last().is_some_and(|b| b.exhausted()))
}

/// Charges the bytes allocated since the previous checkpoint to the
/// innermost budget and advances the mark.
fn flush_delta() {
    STACK.with(|s| {
        let stack = s.borrow();
        let Some(budget) = stack.last() else { return };
        let now = crate::obs::alloc::allocated_bytes();
        let delta = MARK.with(|m| {
            let mut m = m.borrow_mut();
            let delta = now.saturating_sub(*m);
            *m = now;
            delta
        });
        budget.charge(delta);
    });
}

/// Memory checkpoint: charges this thread's allocation delta against the
/// innermost budget. `true` with headroom to spare (or with no scope
/// active); `false` once the budget is exhausted — callers must widen, not
/// allocate further. Invoked automatically from the step-budget
/// checkpoints, so phases that already call `budget::charge_steps` (or
/// `recursion_guard`) get memory enforcement for free.
pub fn checkpoint() -> bool {
    let active = STACK.with(|s| !s.borrow().is_empty());
    if !active {
        return true;
    }
    if crate::faultpoint::fires("memory::charge") {
        if let Some(budget) = current() {
            budget.force_exhaust();
        }
        return false;
    }
    flush_delta();
    !exhausted()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the counting allocator, so
    // `allocated_bytes()` never moves; tests drive budgets directly or via
    // `force_exhaust`. End-to-end accounting is exercised by the `dragon`
    // binary tests, where the allocator is installed.

    #[test]
    fn checkpoint_unlimited_without_scope() {
        assert!(checkpoint());
        assert!(!exhausted());
        assert!(current().is_none());
    }

    #[test]
    fn charge_crossing_limit_latches() {
        let b = MemoryBudget::bytes(100);
        assert!(b.charge(60));
        assert!(!b.charge(60), "101 > 100");
        assert!(b.exhausted());
        assert!(!b.charge(1), "sticky");
        assert_eq!(
            b.charged_bytes(),
            120,
            "overshooting charge recorded; post-exhaustion charges are not"
        );
    }

    #[test]
    fn mb_constructor_scales() {
        assert_eq!(MemoryBudget::mb(2).limit_bytes(), 2 << 20);
        assert_eq!(MemoryBudget::mb(u64::MAX).limit_bytes(), u64::MAX, "saturates");
    }

    #[test]
    fn scope_exposes_current_and_nests() {
        let outer = MemoryBudget::bytes(1000);
        let inner = MemoryBudget::bytes(10);
        let so = enter(outer.clone());
        assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        {
            let _si = enter(inner.clone());
            assert!(Arc::ptr_eq(&current().unwrap(), &inner));
            inner.force_exhaust();
            assert!(!checkpoint(), "innermost exhausted");
            assert!(exhausted());
        }
        assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        assert!(checkpoint(), "outer unaffected by inner exhaustion");
        drop(so);
        assert!(current().is_none());
    }

    #[test]
    fn force_exhaust_denies_checkpoints() {
        let b = MemoryBudget::bytes(u64::MAX);
        let _s = enter(b.clone());
        assert!(checkpoint());
        b.force_exhaust();
        assert!(!checkpoint());
    }

    #[test]
    fn shared_budget_charges_one_pool() {
        let b = MemoryBudget::bytes(100);
        assert!(b.charge(80));
        // A second "thread" holding a clone charges the same pool.
        let b2 = b.clone();
        assert!(!b2.charge(50));
        assert!(b.exhausted() && b2.exhausted());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn faultpoint_denies_nth_checkpoint() {
        let b = MemoryBudget::bytes(u64::MAX);
        let _s = enter(b.clone());
        crate::faultpoint::arm("memory::charge", 2);
        assert!(checkpoint(), "first charge unaffected");
        assert!(!checkpoint(), "second charge denied by faultpoint");
        assert!(b.exhausted());
        crate::faultpoint::disarm_all();
    }
}
