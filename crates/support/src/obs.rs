//! Observability: hierarchical spans, typed counters/gauges, and two
//! deterministic exporters (Chrome `trace_event` JSON and line-oriented
//! JSONL metrics).
//!
//! The analysis pipeline accumulated a lot of internal state — cache
//! hits, rebases, budget consumption, degradations, quarantines,
//! faultpoint trips — with no way to observe any of it beyond exit codes.
//! This module is the pipeline's own Dragon: it makes those internals
//! visible, cheaply and deterministically, without adding a dependency.
//!
//! # Model
//!
//! A [`Collector`] owns everything one observed run records: a fixed
//! catalog of [`Counter`]s (monotonic sums), [`Gauge`]s (last-write-wins
//! levels), and a buffer of completed [span events](SpanEvent). Call sites
//! never hold a collector; they call the free functions ([`span`],
//! [`add`], [`incr`], [`set_gauge`]), which resolve the *current*
//! collector:
//!
//! 1. the innermost collector [`attach`]ed to this thread, else
//! 2. the process-global collector installed by [`install_global`]
//!    (what the `dragon` binary uses), else
//! 3. none — every call is a no-op costing one relaxed atomic load.
//!
//! Thread-scoped attachment (rather than a single global) keeps parallel
//! test binaries honest: each test observes only its own session. Worker
//! pools must re-attach the spawning thread's collector inside each worker
//! (see `ipa::isolate::summarize_subset_isolated`), mirroring how budget
//! scopes are thread-local.
//!
//! # Determinism
//!
//! Timestamps come from an injectable [`ClockKind`]: `Monotonic` (real
//! wall time) by default, `Logical` (an atomic tick per read) in tests.
//! Under the logical clock a single-threaded run produces byte-identical
//! exports on every execution, so the determinism contract of
//! `tests/determinism.rs` extends to trace and metrics artifacts. Counter
//! values are order-independent sums, so they are deterministic across
//! thread counts as well. Observability never feeds back into analysis
//! results: enabling it changes no `.rgn`/`.dgn`/`.cfg` byte (tested).
//!
//! # Allocation estimates
//!
//! Spans record an *allocation estimate*: the change in
//! [`alloc::allocated_bytes`] between span entry and exit. The counter
//! only moves when the embedding binary installs
//! [`alloc::CountingAllocator`] as its global allocator (the `dragon`
//! binary does); otherwise every estimate is 0. It counts bytes
//! *requested* process-wide while the span was open — a cheap attribution
//! heuristic, not a heap profiler.

use crate::hash::fnv1a;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counter / gauge catalogs
// ---------------------------------------------------------------------------

macro_rules! catalog {
    ($(#[$meta:meta])* $vis:vis enum $name:ident { $($(#[$vmeta:meta])* $variant:ident => $str:expr,)+ }) => {
        $(#[$meta])*
        $vis enum $name {
            $($(#[$vmeta])* $variant,)+
        }

        impl $name {
            /// Every member, in catalog (= export) order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// The stable dotted name used in exports.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $str,)+
                }
            }
        }
    };
}

catalog! {
    /// Monotonic event counters. The catalog is closed (an enum, not
    /// strings) so exports always emit every counter — including zeros —
    /// in a stable order, and so invariants over them can be typed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Counter {
        /// Summary cache hits: a fingerprint match that survived full
        /// structural verification and rebasing.
        CacheHits => "cache.hits",
        /// Procedures summarized from scratch with no cache candidate.
        CacheRecomputes => "cache.recomputes",
        /// Fingerprint matches rejected by structural verification or a
        /// failed rebase (counted as recomputed, too — see the invariant
        /// `hits + recomputes = procedures`).
        CacheRejects => "cache.rejects",
        /// Cached summaries rebased onto new symbol tables (the
        /// non-identity reuse path).
        CacheRebases => "cache.rebases",
        /// Source files re-parsed because their text changed.
        FilesReparsed => "parse.files_reparsed",
        /// Source files served from the parse cache.
        FilesCached => "parse.files_cached",
        /// `.rgn` rows carried over verbatim from the previous update.
        RowsReused => "rows.reused",
        /// `.rgn` rows rebuilt by re-running extraction.
        RowsRecomputed => "rows.recomputed",
        /// Propagation-invalidation fan-out: procedures whose propagated
        /// summary was invalidated per update (dirty set + ancestors).
        PropagateInvalidated => "propagate.invalidated",
        /// Fourier–Motzkin work steps consumed against budget scopes.
        BudgetFmSteps => "budget.fm_steps",
        /// Interprocedural record translations consumed against budget
        /// scopes.
        BudgetTranslations => "budget.translations",
        /// Budget scopes that ended exhausted (some result was widened).
        BudgetExhausted => "budget.exhausted",
        /// Bytes charged against memory budgets ([`crate::memory`]).
        MemBytesCharged => "memory.bytes_charged",
        /// Memory-budget scopes that ended exhausted (allocation ceiling
        /// crossed; some result was widened).
        MemExhausted => "memory.exhausted",
        /// Degradations recorded into analysis results.
        DegradeEvents => "degrade.events",
        /// Procedures primed from a validated on-disk cache entry.
        StorePrimed => "store.primed",
        /// On-disk cache entries rejected during load (stale, missing,
        /// corrupt — each leaves the procedure cold).
        StoreRejected => "store.rejected",
        /// Files moved into `quarantine/`.
        QuarantineEvents => "quarantine.events",
        /// Quarantined files evicted by the oldest-first cap GC.
        QuarantineEvicted => "quarantine.evicted",
        /// Stale `.araa-tmp` files swept (lock acquire, stale takeover).
        TmpSwept => "persist.tmp_swept",
        /// Requests accepted by the serve daemon (all ops).
        ServeRequests => "serve.requests",
        /// Requests shed by admission control (`overloaded` responses).
        ServeShed => "serve.shed",
        /// Requests whose deadline expired (degraded responses).
        ServeDeadlineExpired => "serve.deadline_expired",
        /// Worker panics contained by per-request isolation.
        ServePanics => "serve.panics",
        /// Frames rejected for exceeding the serve frame-size cap.
        ServeFrameTooLarge => "serve.frame_too_large",
        /// Connections shed at the concurrent-connection cap.
        ServeConnShed => "serve.conn_shed",
        /// Requests rejected because the project's circuit was open.
        ServeCircuitOpen => "serve.circuit_open",
        /// Wedged workers replaced by the supervisor (heartbeat missed
        /// beyond the deadline grace; sessions evicted).
        ServeWorkerReplaced => "serve.worker_replaced",
        /// Serve requests whose memory budget was exhausted (degraded
        /// responses).
        ServeMemExhausted => "serve.mem_exhausted",
        /// Armed faultpoints that fired (only under `fault-injection`).
        FaultpointTrips => "faultpoint.trips",
        /// Fourier–Motzkin variable eliminations performed.
        FmEliminations => "fm.eliminations",
        /// Eliminations that ran out of budget and dropped constraints
        /// (a sound widening).
        FmWidenings => "fm.widenings",
        /// Approximate region unions (`union_hull` folds).
        RegionUnions => "region.unions",
        /// Lint findings emitted, all rules and severities.
        LintFindings => "lint.findings",
        /// Lint findings of definite severity (the violation is proved).
        LintFindingsDefinite => "lint.findings.definite",
        /// Lint findings of possible severity (Fourier–Motzkin failed to
        /// refute the violation but could not prove it).
        LintFindingsPossible => "lint.findings.possible",
        /// Candidate violations suppressed because the Fourier–Motzkin
        /// system refuted them (proved the access safe).
        LintSuppressed => "lint.suppressed",
        /// Procedures whose lint findings were served from the per-procedure
        /// lint cache without re-running the rules.
        LintCached => "lint.cached",
        /// Procedures re-linted because their analysis content changed (or
        /// no cached findings existed).
        LintRelinted => "lint.relinted",
        /// Fourier–Motzkin give-up events: a projection or summary bailed
        /// out with a typed `ImpreciseReason` (budget, non-affine,
        /// symbolic) instead of an exact answer.
        RegionsFmBailouts => "regions.fm_bailouts",
        /// Non-affine access dimensions whose bounds the interval
        /// abstract-interpretation fallback recovered.
        RegionsIntervalRecovered => "regions.interval_recovered",
        /// Index-array facts (range / injectivity / monotonicity) derived
        /// from defining loops during local summarization.
        IpaIndexFacts => "ipa.index_facts",
    }
}

catalog! {
    /// Last-write-wins levels describing the most recent update.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Gauge {
        /// Procedures in the current program.
        SessionProcedures => "session.procedures",
        /// Rows in the current `.rgn` table.
        SessionRows => "session.rows",
        /// Degradations attached to the current analysis result
        /// (equals `Analysis::degradations.len()` — tested invariant).
        SessionDegradations => "session.degradations",
        /// Entry files referenced by the manifest at the last save.
        StoreEntries => "store.entries",
        /// Warm sessions resident in the serve daemon.
        ServeSessions => "serve.sessions",
        /// Requests queued across serve workers (admission-control depth).
        ServeQueueDepth => "serve.queue_depth",
        /// Open per-project circuit breakers in the serve daemon.
        ServeOpenCircuits => "serve.open_circuits",
        /// Highest per-request memory-budget charge seen by the serve
        /// daemon, in bytes.
        MemHighWater => "memory.high_water_bytes",
    }
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// Where timestamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockKind {
    /// Real monotonic time (nanoseconds since the collector was created).
    #[default]
    Monotonic,
    /// A logical tick: every read returns the next integer. Deterministic
    /// — byte-identical exports across runs for single-threaded work.
    Logical,
}

impl ClockKind {
    /// The stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            ClockKind::Monotonic => "monotonic",
            ClockKind::Logical => "logical",
        }
    }
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

/// One completed span, as recorded: a named interval on one thread with an
/// optional detail argument (for per-procedure spans, the procedure name).
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name from the fixed taxonomy (e.g. `ipa.ipl`).
    pub name: &'static str,
    /// Optional detail — per-procedure spans carry the procedure name.
    pub arg: Option<String>,
    /// Small per-collector thread ordinal (Chrome-trace `tid`).
    pub tid: u32,
    /// Start timestamp (clock units: ns or ticks).
    pub start: u64,
    /// Duration (clock units). At least 1 so viewers render the slice.
    pub dur: u64,
    /// Allocation estimate: bytes requested process-wide while open.
    pub alloc: u64,
    /// Global record sequence number (stable tiebreaker for sorting).
    pub seq: u64,
}

struct CollectorState {
    events: Vec<SpanEvent>,
    gauges: BTreeMap<&'static str, u64>,
}

/// Sink for one observed run. Create one, [`attach`] it (or
/// [`install_global`] it), run the work, then export via
/// [`chrome_trace_json`](Collector::chrome_trace_json) /
/// [`metrics_jsonl`](Collector::metrics_jsonl) /
/// [`snapshot`](Collector::snapshot).
pub struct Collector {
    id: u64,
    clock: ClockKind,
    origin: Instant,
    tick: AtomicU64,
    seq: AtomicU64,
    next_tid: AtomicU32,
    counters: [AtomicU64; Counter::ALL.len()],
    state: Mutex<CollectorState>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").field("id", &self.id).field("clock", &self.clock).finish()
    }
}

static COLLECTOR_IDS: AtomicU64 = AtomicU64::new(1);

/// Fast gate: true while any collector is attached anywhere or a global
/// one is installed. Lets the disabled path cost one relaxed load.
static ANY_ACTIVE: AtomicBool = AtomicBool::new(false);
static ATTACH_COUNT: AtomicU64 = AtomicU64::new(0);
static GLOBAL: OnceLock<Arc<Collector>> = OnceLock::new();

thread_local! {
    /// Innermost-wins stack of collectors attached to this thread.
    static CURRENT: std::cell::RefCell<Vec<Arc<Collector>>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// Cache of (collector id → tid) for this thread, avoiding a lock per
    /// span end.
    static TID_CACHE: std::cell::Cell<(u64, u32)> = const { std::cell::Cell::new((0, 0)) };
}

fn lock_state(c: &Collector) -> std::sync::MutexGuard<'_, CollectorState> {
    c.state.lock().unwrap_or_else(|p| p.into_inner())
}

impl Collector {
    /// A fresh collector reading the given clock.
    pub fn new(clock: ClockKind) -> Arc<Collector> {
        Arc::new(Collector {
            id: COLLECTOR_IDS.fetch_add(1, Ordering::Relaxed),
            clock,
            origin: Instant::now(),
            tick: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            next_tid: AtomicU32::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            state: Mutex::new(CollectorState {
                events: Vec::new(),
                gauges: BTreeMap::new(),
            }),
        })
    }

    /// The clock this collector stamps events with.
    pub fn clock(&self) -> ClockKind {
        self.clock
    }

    fn now(&self) -> u64 {
        match self.clock {
            ClockKind::Monotonic => {
                let d = self.origin.elapsed();
                d.as_secs().saturating_mul(1_000_000_000).saturating_add(u64::from(d.subsec_nanos()))
            }
            ClockKind::Logical => self.tick.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn tid(self: &Arc<Self>) -> u32 {
        TID_CACHE.with(|c| {
            let (id, tid) = c.get();
            if id == self.id {
                return tid;
            }
            let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
            c.set((self.id, tid));
            tid
        })
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Current value of one gauge (0 when never set).
    pub fn gauge(&self, g: Gauge) -> u64 {
        lock_state(self).gauges.get(g.name()).copied().unwrap_or(0)
    }

    /// Completed span events recorded so far, in deterministic order
    /// (start timestamp, then sequence number).
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut events = lock_state(self).events.clone();
        events.sort_by_key(|e| (e.start, e.seq));
        events
    }

    /// An aggregated, export-ready view of everything recorded.
    pub fn snapshot(&self) -> Snapshot {
        let events = self.events();
        let mut spans: BTreeMap<&'static str, SpanAgg> = BTreeMap::new();
        let mut procs: BTreeMap<String, ProcProfile> = BTreeMap::new();
        for e in &events {
            let agg = spans.entry(e.name).or_insert_with(|| SpanAgg {
                name: e.name,
                count: 0,
                total: 0,
                alloc: 0,
            });
            agg.count += 1;
            agg.total += e.dur;
            agg.alloc += e.alloc;
            // Only genuinely per-procedure spans feed the procedure
            // profile — other arg-carrying spans (per-file parses) would
            // collide with procedure names and muddle the ranking.
            let per_proc = matches!(e.name, "ipa.ipl" | "store.prime" | "extract.rows");
            if let (Some(arg), true) = (&e.arg, per_proc) {
                let p = procs.entry(arg.clone()).or_insert_with(|| ProcProfile {
                    proc: arg.clone(),
                    total: 0,
                    alloc: 0,
                    spans: 0,
                    primed: false,
                    recomputed: false,
                });
                p.total += e.dur;
                p.alloc += e.alloc;
                p.spans += 1;
                match e.name {
                    "store.prime" => p.primed = true,
                    "ipa.ipl" => p.recomputed = true,
                    _ => {}
                }
            }
        }
        let mut procs: Vec<ProcProfile> = procs.into_values().collect();
        // Ranked by time, heaviest first; name breaks ties deterministically.
        procs.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.proc.cmp(&b.proc)));
        Snapshot {
            clock: self.clock,
            counters: Counter::ALL.iter().map(|&c| (c.name(), self.counter(c))).collect(),
            gauges: lock_state(self).gauges.iter().map(|(k, v)| (*k, *v)).collect(),
            spans: spans.into_values().collect(),
            procs,
        }
    }

    /// The Chrome `trace_event` JSON document (object format, `X` complete
    /// events), finished with the canonical `#checksum` trailer. Load it
    /// in Perfetto or `chrome://tracing`; both ignore the trailing
    /// non-JSON line (strip it for strict parsers).
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"araa\"}}",
        );
        for e in self.events() {
            out.push_str(",\n");
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\",\"cat\":\"araa\"",
                e.tid,
                clock_units_to_us(self.clock, e.start),
                clock_units_to_us(self.clock, e.dur).max(1),
                json_escape(e.name),
            ));
            out.push_str(",\"args\":{");
            if let Some(arg) = &e.arg {
                out.push_str(&format!("\"proc\":\"{}\",", json_escape(arg)));
            }
            out.push_str(&format!("\"alloc_bytes\":{}}}}}", e.alloc));
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
        out.push_str(&format!(
            "\"tool\":\"araa\",\"schema\":1,\"clock\":\"{}\"}}}}\n",
            self.clock.name()
        ));
        crate::persist::append_text_checksum(&mut out);
        out
    }

    /// The line-oriented JSONL metrics stream: one `meta` line, every
    /// counter (zeros included) and gauge, per-span-name aggregates, and
    /// per-procedure profile lines — finished with the canonical
    /// `#checksum` trailer. Line order is stable, so under the logical
    /// clock the document is byte-deterministic.
    pub fn metrics_jsonl(&self) -> String {
        let mut out = self.metrics_jsonl_body();
        crate::persist::append_text_checksum(&mut out);
        out
    }

    /// [`metrics_jsonl`](Collector::metrics_jsonl) without the trailer —
    /// for callers that append extra lines (e.g. structured diagnostics)
    /// before sealing the document with
    /// [`persist::append_text_checksum`](crate::persist::append_text_checksum).
    pub fn metrics_jsonl_body(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(2048);
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"tool\":\"araa\",\"schema\":1,\"clock\":\"{}\"}}\n",
            snap.clock.name()
        ));
        for (name, value) in &snap.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n"
            ));
        }
        for (name, value) in &snap.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{value}}}\n"
            ));
        }
        for s in &snap.spans {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"count\":{},\"total_units\":{},\
                 \"alloc_bytes\":{}}}\n",
                s.name, s.count, s.total, s.alloc
            ));
        }
        for p in &snap.procs {
            out.push_str(&format!(
                "{{\"type\":\"proc\",\"name\":\"{}\",\"total_units\":{},\
                 \"alloc_bytes\":{},\"spans\":{},\"primed\":{},\"recomputed\":{}}}\n",
                json_escape(&p.proc),
                p.total,
                p.alloc,
                p.spans,
                p.primed,
                p.recomputed
            ));
        }
        out
    }
}

impl Collector {
    /// Folds this collector's counters into `parent` (order-independent
    /// sums) and overlays its gauges (last-write-wins). Used by the serve
    /// worker loop: each request records into a fresh child collector so
    /// its span tree can be sampled in isolation, then the totals flow
    /// back into the worker's long-lived collector.
    pub fn fold_into(&self, parent: &Collector) {
        for &c in Counter::ALL {
            let v = self.counter(c);
            if v > 0 {
                parent.counters[c as usize].fetch_add(v, Ordering::Relaxed);
            }
        }
        let gauges: Vec<(&'static str, u64)> =
            lock_state(self).gauges.iter().map(|(k, v)| (*k, *v)).collect();
        if !gauges.is_empty() {
            let mut ps = lock_state(parent);
            for (k, v) in gauges {
                ps.gauges.insert(k, v);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Log-linear latency histograms
// ---------------------------------------------------------------------------

/// Fixed-bound log-linear histograms: each power-of-two octave is split
/// into [`SUB_BUCKETS`] linear sub-buckets, giving ≤ 25% relative bucket
/// error across the full `u64` range with a small constant bucket count.
/// Bounds are process-invariant constants, so bucket-count vectors from
/// different shards, runs, or machines merge by plain elementwise
/// addition — the property the serve metrics registry's determinism
/// contract rests on.
pub mod hist {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    /// Values `1..=LINEAR_HEAD` get one bucket each.
    pub const LINEAR_HEAD: u64 = 8;
    /// Linear sub-buckets per power-of-two octave above the head.
    pub const SUB_BUCKETS: usize = 4;
    /// Total bucket count (head + 61 octaves × sub-buckets).
    pub const NUM_BUCKETS: usize = LINEAR_HEAD as usize + 61 * SUB_BUCKETS;

    /// Bucket index for a recorded value (0 maps with 1).
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            return 0;
        }
        if v <= LINEAR_HEAD {
            return (v - 1) as usize;
        }
        // Classify v-1 so exact bounds land in the bucket they close.
        let vm = v - 1;
        let msb = 63 - vm.leading_zeros() as usize; // >= 3 since vm >= 8
        let base = 1u64 << msb;
        let sub = ((vm - base) >> (msb - 2)) as usize; // (vm-base)*SUB/base
        LINEAR_HEAD as usize + (msb - 3) * SUB_BUCKETS + sub
    }

    /// Inclusive upper bounds, one per bucket, strictly increasing; the
    /// final bound saturates at `u64::MAX`.
    pub fn bucket_bounds() -> &'static [u64] {
        static BOUNDS: OnceLock<Vec<u64>> = OnceLock::new();
        BOUNDS.get_or_init(|| {
            let mut b = Vec::with_capacity(NUM_BUCKETS);
            for v in 1..=LINEAR_HEAD {
                b.push(v);
            }
            for msb in 3..64usize {
                let base = 1u64 << msb;
                let step = base >> 2;
                for s in 1..=SUB_BUCKETS as u64 {
                    b.push(base.saturating_add(step.saturating_mul(s)));
                }
            }
            debug_assert_eq!(b.len(), NUM_BUCKETS);
            b
        })
    }

    /// A concurrent histogram: relaxed atomic bucket counts plus a total
    /// sum, recordable from any thread without locks.
    pub struct Histogram {
        counts: Box<[AtomicU64]>,
        sum: AtomicU64,
    }

    impl Default for Histogram {
        fn default() -> Self {
            Histogram::new()
        }
    }

    impl Histogram {
        /// An empty histogram.
        pub fn new() -> Histogram {
            Histogram {
                counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
            }
        }

        /// Records one observation.
        pub fn record(&self, v: u64) {
            self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }

        /// Bucket counts, index-aligned with [`bucket_bounds`].
        pub fn counts(&self) -> Vec<u64> {
            self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
        }

        /// Total observations recorded.
        pub fn count(&self) -> u64 {
            self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
        }

        /// Sum of recorded values.
        pub fn sum(&self) -> u64 {
            self.sum.load(Ordering::Relaxed)
        }
    }

    /// Adds `src` into `dst` elementwise (shard merging).
    pub fn merge_counts(dst: &mut [u64], src: &[u64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d += *s;
        }
    }

    /// The `p`-quantile (`0.0..=1.0`) estimated from bucket counts: the
    /// inclusive upper bound of the bucket holding the rank-`⌈p·n⌉`
    /// observation. Exact to within one bucket's width by construction.
    pub fn percentile_from_counts(counts: &[u64], p: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let bounds = bucket_bounds();
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

// ---------------------------------------------------------------------------
// Span-tree folding
// ---------------------------------------------------------------------------

/// Folds completed span events into collapsed-stack (flamegraph) lines:
/// `frame;frame;frame self_units`, frames nested by interval containment
/// per thread. Works on any event slice — per-request collectors are
/// single-threaded so containment reconstructs the exact call tree.
/// Output is sorted by stack string, so under the logical clock it is
/// byte-deterministic.
pub fn collapsed_stacks(events: &[SpanEvent]) -> Vec<(String, u64)> {
    fn frame(e: &SpanEvent) -> String {
        let mut f = String::from(e.name);
        if let Some(arg) = &e.arg {
            f.push(':');
            // Collapsed-stack format reserves ';' (frame separator) and
            // ' ' (count separator).
            f.extend(arg.chars().map(|c| if c == ';' || c == ' ' { '_' } else { c }));
        }
        f
    }

    let mut by_tid: BTreeMap<u32, Vec<&SpanEvent>> = BTreeMap::new();
    for e in events {
        by_tid.entry(e.tid).or_default().push(e);
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for evs in by_tid.values_mut() {
        // Parents start no later than children and end no earlier; sorting
        // by (start, seq) yields parents before their children because a
        // parent's start tick precedes every child's.
        evs.sort_by_key(|e| (e.start, e.seq));
        // Stack of (event, accumulated child time).
        let mut stack: Vec<(&SpanEvent, u64)> = Vec::new();
        let pop_into =
            |stack: &mut Vec<(&SpanEvent, u64)>, folded: &mut BTreeMap<String, u64>| {
                if let Some((done, child_time)) = stack.pop() {
                    let self_time = done.dur.saturating_sub(child_time);
                    let mut path: Vec<String> =
                        stack.iter().map(|(e, _)| frame(e)).collect();
                    path.push(frame(done));
                    *folded.entry(path.join(";")).or_insert(0) += self_time;
                    if let Some(top) = stack.last_mut() {
                        top.1 = top.1.saturating_add(done.dur);
                    }
                }
            };
        for e in evs.iter() {
            while let Some((top, _)) = stack.last() {
                let contained = e.start >= top.start
                    && e.start.saturating_add(e.dur) <= top.start.saturating_add(top.dur);
                if contained {
                    break;
                }
                pop_into(&mut stack, &mut folded);
            }
            stack.push((e, 0));
        }
        while !stack.is_empty() {
            pop_into(&mut stack, &mut folded);
        }
    }
    folded.into_iter().collect()
}

/// `start`/`dur` in microseconds for the Chrome exporter. Logical ticks
/// pass through unscaled (they already are arbitrary units).
fn clock_units_to_us(clock: ClockKind, v: u64) -> u64 {
    match clock {
        ClockKind::Monotonic => v / 1_000,
        ClockKind::Logical => v,
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Aggregate of every span sharing one name.
#[derive(Debug, Clone)]
pub struct SpanAgg {
    /// Span name.
    pub name: &'static str,
    /// Completed spans under this name.
    pub count: u64,
    /// Summed duration, clock units.
    pub total: u64,
    /// Summed allocation estimate, bytes.
    pub alloc: u64,
}

/// Per-procedure profile aggregated from `arg`-carrying spans.
#[derive(Debug, Clone)]
pub struct ProcProfile {
    /// Procedure name.
    pub proc: String,
    /// Summed duration across this procedure's spans, clock units.
    pub total: u64,
    /// Summed allocation estimate, bytes.
    pub alloc: u64,
    /// Number of spans attributed to the procedure.
    pub spans: u64,
    /// The procedure was primed from a validated on-disk cache entry.
    pub primed: bool,
    /// The procedure's IPL summary was (re)computed this run.
    pub recomputed: bool,
}

/// Everything a collector recorded, aggregated for reporting.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The clock events were stamped with.
    pub clock: ClockKind,
    /// Every counter in catalog order (zeros included).
    pub counters: Vec<(&'static str, u64)>,
    /// Every gauge that was set, name-sorted.
    pub gauges: Vec<(&'static str, u64)>,
    /// Per-span-name aggregates, name-sorted.
    pub spans: Vec<SpanAgg>,
    /// Per-procedure profile, ranked by total time (heaviest first).
    pub procs: Vec<ProcProfile>,
}

impl Snapshot {
    /// The value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == c.name())
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Attachment & recording entry points
// ---------------------------------------------------------------------------

/// RAII handle detaching the collector from this thread on drop.
#[derive(Debug)]
pub struct AttachGuard {
    _private: (),
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
        if ATTACH_COUNT.fetch_sub(1, Ordering::Relaxed) == 1 && GLOBAL.get().is_none() {
            ANY_ACTIVE.store(false, Ordering::Relaxed);
        }
    }
}

/// Attaches `collector` to the current thread until the guard drops
/// (innermost attachment wins). Worker pools must call this inside each
/// worker with the spawning thread's [`current`] collector.
pub fn attach(collector: Arc<Collector>) -> AttachGuard {
    CURRENT.with(|c| c.borrow_mut().push(collector));
    ATTACH_COUNT.fetch_add(1, Ordering::Relaxed);
    ANY_ACTIVE.store(true, Ordering::Relaxed);
    AttachGuard { _private: () }
}

/// Installs the process-global fallback collector (what the `dragon`
/// binary does once, before analyzing). Returns `false` if one was
/// already installed — the first installation wins, matching `OnceLock`.
pub fn install_global(collector: Arc<Collector>) -> bool {
    let installed = GLOBAL.set(collector).is_ok();
    if installed {
        ANY_ACTIVE.store(true, Ordering::Relaxed);
    }
    installed
}

/// The process-global collector, if one was installed.
pub fn global() -> Option<Arc<Collector>> {
    GLOBAL.get().cloned()
}

/// The collector observation on this thread resolves to, if any.
pub fn current() -> Option<Arc<Collector>> {
    if !ANY_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .or_else(|| GLOBAL.get().cloned())
}

/// Adds `n` to a counter on the current collector (no-op when none).
#[inline]
pub fn add(c: Counter, n: u64) {
    if !ANY_ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    if let Some(col) = current() {
        col.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Adds 1 to a counter on the current collector.
#[inline]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// Sets a gauge on the current collector (no-op when none).
pub fn set_gauge(g: Gauge, v: u64) {
    if !ANY_ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    if let Some(col) = current() {
        lock_state(&col).gauges.insert(g.name(), v);
    }
}

/// An open span; records a [`SpanEvent`] on drop. Obtain via [`span`] /
/// [`span_arg`]. When no collector is current, the guard is inert.
#[derive(Debug)]
pub struct SpanGuard {
    rec: Option<OpenSpan>,
}

impl SpanGuard {
    /// Discards the span: nothing is recorded when the guard drops. For
    /// call sites that only know at the *end* whether the interval
    /// deserves its name (e.g. a cache prime that turned out to be a
    /// reject).
    pub fn cancel(&mut self) {
        self.rec = None;
    }
}

#[derive(Debug)]
struct OpenSpan {
    collector: Arc<Collector>,
    name: &'static str,
    arg: Option<String>,
    start: u64,
    alloc_start: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.rec.take() else { return };
        let end = open.collector.now();
        // Under the logical clock, exports promise byte-determinism;
        // allocation totals depend on the ambient process (other threads,
        // allocator internals), so they are forced to zero there.
        let alloc = match open.collector.clock {
            ClockKind::Logical => 0,
            ClockKind::Monotonic => {
                alloc::allocated_bytes().saturating_sub(open.alloc_start)
            }
        };
        let tid = open.collector.tid();
        let seq = open.collector.seq.fetch_add(1, Ordering::Relaxed);
        let event = SpanEvent {
            name: open.name,
            arg: open.arg,
            tid,
            start: open.start,
            dur: end.saturating_sub(open.start).max(1),
            alloc,
            seq,
        };
        lock_state(&open.collector).events.push(event);
    }
}

/// Opens a span named `name` on the current collector. Hierarchy is
/// implicit: spans nested on the same thread render nested in the trace.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !ANY_ACTIVE.load(Ordering::Relaxed) {
        return SpanGuard { rec: None };
    }
    open_span(name, None)
}

/// Opens a span carrying a detail argument (per-procedure spans pass the
/// procedure name). The argument closure runs only when a collector is
/// actually current, so disabled call sites pay nothing for it.
#[inline]
pub fn span_arg(name: &'static str, arg: impl FnOnce() -> String) -> SpanGuard {
    if !ANY_ACTIVE.load(Ordering::Relaxed) {
        return SpanGuard { rec: None };
    }
    if current().is_some() {
        open_span(name, Some(arg()))
    } else {
        SpanGuard { rec: None }
    }
}

fn open_span(name: &'static str, arg: Option<String>) -> SpanGuard {
    let Some(collector) = current() else {
        return SpanGuard { rec: None };
    };
    let start = collector.now();
    let alloc_start = alloc::allocated_bytes();
    SpanGuard {
        rec: Some(OpenSpan { collector, name, arg, start, alloc_start }),
    }
}

/// Verifies an exported artifact's `#checksum` trailer and returns its
/// body — a convenience re-export so consumers need not know which module
/// owns the trailer format.
pub fn verify_artifact(doc: &str) -> crate::error::Result<&str> {
    crate::persist::verify_text_checksum(doc)
}

/// FNV-1a of an artifact body — exposed for tests comparing artifacts
/// without caring about their trailers.
pub fn artifact_digest(doc: &str) -> u64 {
    fnv1a(doc.as_bytes())
}

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

/// Byte-counting wrapper around any [`std::alloc::GlobalAlloc`].
///
/// Installing it as the binary's global allocator makes
/// [`allocated_bytes`](alloc::allocated_bytes) move, which turns every
/// span's allocation estimate from 0 into a real number:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: support::obs::alloc::CountingAllocator<std::alloc::System> =
///     support::obs::alloc::CountingAllocator::new(std::alloc::System);
/// ```
pub mod alloc {
    use std::alloc::{GlobalAlloc, Layout};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATED: AtomicU64 = AtomicU64::new(0);

    /// Total bytes *requested* from the global allocator so far (frees are
    /// not subtracted — this measures churn, not residency). Always 0
    /// unless a [`CountingAllocator`] is installed.
    pub fn allocated_bytes() -> u64 {
        ALLOCATED.load(Ordering::Relaxed)
    }

    /// See the module docs; wraps an allocator and counts request bytes.
    pub struct CountingAllocator<A>(A);

    impl<A> CountingAllocator<A> {
        /// Wraps `inner`.
        pub const fn new(inner: A) -> Self {
            CountingAllocator(inner)
        }
    }

    // SAFETY: delegates allocation verbatim to the wrapped allocator; the
    // only extra work is a relaxed atomic add, which cannot violate any
    // GlobalAlloc contract.
    unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAllocator<A> {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
            self.0.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            self.0.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATED
                .fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
            self.0.realloc(ptr, layout, new_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_paths_are_inert() {
        // No collector anywhere on this thread: everything is a no-op.
        let _s = span("tests.noop");
        add(Counter::CacheHits, 5);
        set_gauge(Gauge::SessionRows, 9);
        assert!(current().is_none() || global().is_some());
    }

    #[test]
    fn counters_and_gauges_record() {
        let c = Collector::new(ClockKind::Logical);
        let _g = attach(c.clone());
        incr(Counter::CacheHits);
        add(Counter::CacheHits, 2);
        set_gauge(Gauge::SessionRows, 42);
        set_gauge(Gauge::SessionRows, 43);
        assert_eq!(c.counter(Counter::CacheHits), 3);
        assert_eq!(c.gauge(Gauge::SessionRows), 43);
        assert_eq!(c.counter(Counter::CacheRejects), 0);
    }

    #[test]
    fn spans_nest_and_record_in_order() {
        let c = Collector::new(ClockKind::Logical);
        let _g = attach(c.clone());
        {
            let _outer = span("tests.outer");
            let _inner = span_arg("tests.inner", || "leaf".to_string());
        }
        let events = c.events();
        assert_eq!(events.len(), 2);
        // Outer opened first (earlier start tick), closed last.
        assert_eq!(events[0].name, "tests.outer");
        assert_eq!(events[1].name, "tests.inner");
        assert_eq!(events[1].arg.as_deref(), Some("leaf"));
        assert!(events[0].start < events[1].start);
        assert!(events[0].start + events[0].dur > events[1].start + events[1].dur);
    }

    #[test]
    fn innermost_attachment_wins() {
        let a = Collector::new(ClockKind::Logical);
        let b = Collector::new(ClockKind::Logical);
        let _ga = attach(a.clone());
        {
            let _gb = attach(b.clone());
            incr(Counter::CacheHits);
        }
        incr(Counter::CacheRejects);
        assert_eq!(b.counter(Counter::CacheHits), 1);
        assert_eq!(a.counter(Counter::CacheHits), 0);
        assert_eq!(a.counter(Counter::CacheRejects), 1);
    }

    #[test]
    fn logical_clock_exports_are_deterministic() {
        let run = || {
            let c = Collector::new(ClockKind::Logical);
            let _g = attach(c.clone());
            {
                let _s = span("tests.phase");
                incr(Counter::FmEliminations);
                let _p = span_arg("ipa.ipl", || "proc_a".to_string());
            }
            set_gauge(Gauge::SessionRows, 7);
            (c.chrome_trace_json(), c.metrics_jsonl())
        };
        let (t1, m1) = run();
        let (t2, m2) = run();
        assert_eq!(t1, t2, "trace export must be byte-deterministic");
        assert_eq!(m1, m2, "metrics export must be byte-deterministic");
    }

    #[test]
    fn exports_carry_valid_checksum_trailers() {
        let c = Collector::new(ClockKind::Logical);
        let _g = attach(c.clone());
        {
            let _s = span("tests.phase");
        }
        for doc in [c.chrome_trace_json(), c.metrics_jsonl()] {
            let body = verify_artifact(&doc).expect("trailer verifies");
            assert!(body.len() < doc.len());
        }
    }

    #[test]
    fn metrics_emit_every_counter_including_zeros() {
        let c = Collector::new(ClockKind::Logical);
        let m = c.metrics_jsonl();
        for counter in Counter::ALL {
            assert!(
                m.contains(&format!("\"name\":\"{}\"", counter.name())),
                "{} missing from metrics",
                counter.name()
            );
        }
    }

    #[test]
    fn snapshot_ranks_procs_by_time() {
        let c = Collector::new(ClockKind::Logical);
        let _g = attach(c.clone());
        {
            let _a = span_arg("ipa.ipl", || "cheap".to_string());
        }
        {
            let _b = span_arg("ipa.ipl", || "expensive".to_string());
            let _pad = span("tests.pad");
            let _pad2 = span("tests.pad2");
        }
        let snap = c.snapshot();
        assert_eq!(snap.procs.len(), 2);
        assert_eq!(snap.procs[0].proc, "expensive");
        assert!(snap.procs[0].total >= snap.procs[1].total);
        assert!(snap.procs.iter().all(|p| p.recomputed && !p.primed));
    }

    #[test]
    fn span_arg_closure_skipped_when_disabled() {
        let ran = std::cell::Cell::new(false);
        {
            let _s = span_arg("tests.lazy", || {
                ran.set(true);
                String::new()
            });
        }
        // With no collector on this thread the closure must not run…
        // unless another test on another thread has a global installed —
        // there is none in this binary.
        assert!(!ran.get());
    }

    #[test]
    fn hist_bounds_strictly_increase_and_cover() {
        let bounds = hist::bucket_bounds();
        assert_eq!(bounds.len(), hist::NUM_BUCKETS);
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bounds must strictly increase: {} !< {}", w[0], w[1]);
        }
        assert_eq!(bounds[0], 1);
        assert_eq!(*bounds.last().unwrap(), u64::MAX);
    }

    #[test]
    fn hist_bucket_index_matches_bounds() {
        let bounds = hist::bucket_bounds();
        // Every value lands in the first bucket whose bound is >= value.
        for v in [0u64, 1, 2, 7, 8, 9, 10, 11, 15, 16, 17, 100, 1000, 1 << 20, u64::MAX] {
            let i = hist::bucket_index(v);
            assert!(v <= bounds[i], "v={v} above bound {}", bounds[i]);
            if i > 0 {
                assert!(v > bounds[i - 1], "v={v} not above lower bound {}", bounds[i - 1]);
            }
        }
    }

    #[test]
    fn hist_percentiles_within_one_bucket() {
        let h = hist::Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let counts = h.counts();
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let bounds = hist::bucket_bounds();
        for (p, exact) in [(0.5, 500u64), (0.95, 950), (0.99, 990)] {
            let est = hist::percentile_from_counts(&counts, p);
            let i = hist::bucket_index(exact);
            let lower = if i == 0 { 0 } else { bounds[i - 1] };
            assert!(
                est >= lower && est <= bounds[i.min(bounds.len() - 1)],
                "p{p}: est {est} outside bucket [{lower}, {}]",
                bounds[i]
            );
        }
    }

    #[test]
    fn hist_merge_is_order_independent() {
        let a = hist::Histogram::new();
        let b = hist::Histogram::new();
        for v in [3u64, 17, 400, 9001] {
            a.record(v);
            b.record(v * 2);
        }
        let mut ab = a.counts();
        hist::merge_counts(&mut ab, &b.counts());
        let mut ba = b.counts();
        hist::merge_counts(&mut ba, &a.counts());
        assert_eq!(ab, ba);
        assert_eq!(ab.iter().sum::<u64>(), 8);
    }

    #[test]
    fn collapsed_stacks_fold_self_time() {
        let c = Collector::new(ClockKind::Logical);
        let _g = attach(c.clone());
        {
            let _root = span("serve.request");
            {
                let _child = span_arg("ipa.ipl", || "proc_a".to_string());
            }
            {
                let _child = span("extract.rows");
            }
        }
        let folded = collapsed_stacks(&c.events());
        let stacks: Vec<&str> = folded.iter().map(|(s, _)| s.as_str()).collect();
        assert!(stacks.contains(&"serve.request"));
        assert!(stacks.contains(&"serve.request;ipa.ipl:proc_a"));
        assert!(stacks.contains(&"serve.request;extract.rows"));
        // Self times sum to the root's total duration.
        let root_total = c.events().iter().find(|e| e.name == "serve.request").map(|e| e.dur);
        let sum: u64 = folded.iter().map(|(_, v)| *v).sum();
        assert_eq!(Some(sum), root_total);
    }

    #[test]
    fn fold_into_sums_counters_and_overlays_gauges() {
        let parent = Collector::new(ClockKind::Logical);
        let child = Collector::new(ClockKind::Logical);
        parent.counters[Counter::CacheHits as usize].store(2, Ordering::Relaxed);
        {
            let _g = attach(child.clone());
            add(Counter::CacheHits, 3);
            set_gauge(Gauge::SessionRows, 11);
        }
        child.fold_into(&parent);
        assert_eq!(parent.counter(Counter::CacheHits), 5);
        assert_eq!(parent.gauge(Gauge::SessionRows), 11);
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_is_structurally_sound() {
        let c = Collector::new(ClockKind::Logical);
        let _g = attach(c.clone());
        {
            let _s = span_arg("tests.span", || "with \"quotes\"".to_string());
        }
        let doc = c.chrome_trace_json();
        let body = verify_artifact(&doc).expect("trailer ok");
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.contains("\"ph\":\"X\""));
        assert!(body.contains("\\\"quotes\\\""));
        assert!(body.trim_end().ends_with('}'));
        // Balanced braces/brackets outside strings — cheap structural check.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for ch in body.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON structure");
        assert!(!in_str, "unterminated string");
    }
}
