//! Fingerprint stability and correspondence checks over compiled programs.

use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
use whirl::hash::{proc_fingerprint, procs_correspond};
use whirl::{Lang, Program};

fn compile(srcs: &[(&str, &str)]) -> Program {
    let files: Vec<SourceFile> = srcs
        .iter()
        .map(|(name, text)| SourceFile::new(*name, *text, Lang::Fortran))
        .collect();
    compile_to_h(&files, DEFAULT_LAYOUT_BASE).unwrap()
}

const WORK: &str = "\
subroutine work
  real a(16)
  common /c/ a
  integer i
  do i = 1, 16
    a(i) = 0.0
  end do
end
";

const OTHER: &str = "\
subroutine other
  real b(4)
  common /d/ b
  b(1) = 1.0
end
";

const OTHER_V2: &str = "\
subroutine other
  real b(4), extra(8)
  common /d/ b
  common /e/ extra
  b(2) = 2.0
  extra(1) = 0.0
end
";

#[test]
fn identical_sources_identical_fingerprints() {
    let p1 = compile(&[("w.f", WORK)]);
    let p2 = compile(&[("w.f", WORK)]);
    let id1 = p1.find_procedure("work").unwrap();
    let id2 = p2.find_procedure("work").unwrap();
    assert_eq!(proc_fingerprint(&p1, id1, 0), proc_fingerprint(&p2, id2, 0));
}

#[test]
fn salt_changes_fingerprint() {
    let p = compile(&[("w.f", WORK)]);
    let id = p.find_procedure("work").unwrap();
    assert_ne!(proc_fingerprint(&p, id, 0), proc_fingerprint(&p, id, 1));
}

#[test]
fn unrelated_file_edit_keeps_fingerprint_despite_index_shift() {
    let p1 = compile(&[("o.f", OTHER), ("w.f", WORK)]);
    let p2 = compile(&[("o.f", OTHER_V2), ("w.f", WORK)]);
    let w1 = p1.find_procedure("work").unwrap();
    let w2 = p2.find_procedure("work").unwrap();
    // `other` gained symbols, shifting work's StIdx values — the
    // identity-based fingerprint must not care.
    assert_eq!(proc_fingerprint(&p1, w1, 7), proc_fingerprint(&p2, w2, 7));
    // And the edited procedure's fingerprint must change.
    let o1 = p1.find_procedure("other").unwrap();
    let o2 = p2.find_procedure("other").unwrap();
    assert_ne!(proc_fingerprint(&p1, o1, 7), proc_fingerprint(&p2, o2, 7));
}

#[test]
fn body_edit_changes_fingerprint() {
    let p1 = compile(&[("w.f", WORK)]);
    let edited = WORK.replace("do i = 1, 16", "do i = 1, 8");
    let p2 = compile(&[("w.f", &edited)]);
    let id1 = p1.find_procedure("work").unwrap();
    let id2 = p2.find_procedure("work").unwrap();
    assert_ne!(proc_fingerprint(&p1, id1, 0), proc_fingerprint(&p2, id2, 0));
}

#[test]
fn correspondence_maps_shifted_indices() {
    let p1 = compile(&[("o.f", OTHER), ("w.f", WORK)]);
    let p2 = compile(&[("o.f", OTHER_V2), ("w.f", WORK)]);
    let w1 = p1.find_procedure("work").unwrap();
    let w2 = p2.find_procedure("work").unwrap();
    let maps = procs_correspond(&p1, w1, &p2, w2).expect("work is unchanged");
    // Every mapped pair denotes the same-named symbol.
    for (&os, &ns) in &maps.st {
        assert_eq!(
            p1.name_of(p1.symbols.get(os).name),
            p2.name_of(p2.symbols.get(ns).name)
        );
    }
    // The array `a` must be among the mapped symbols.
    let a1 = p1.symbols.find(p1.interner.get("a").unwrap()).unwrap();
    assert!(maps.st.contains_key(&a1));
}

#[test]
fn correspondence_rejects_changed_body() {
    let p1 = compile(&[("w.f", WORK)]);
    let edited = WORK.replace("a(i) = 0.0", "a(i) = 1.0");
    let p2 = compile(&[("w.f", &edited)]);
    let w1 = p1.find_procedure("work").unwrap();
    let w2 = p2.find_procedure("work").unwrap();
    assert!(procs_correspond(&p1, w1, &p2, w2).is_none());
}

#[test]
fn correspondence_rejects_changed_declared_bounds() {
    let p1 = compile(&[("w.f", WORK)]);
    let edited = WORK.replace("real a(16)", "real a(32)");
    let p2 = compile(&[("w.f", &edited)]);
    let w1 = p1.find_procedure("work").unwrap();
    let w2 = p2.find_procedure("work").unwrap();
    assert!(procs_correspond(&p1, w1, &p2, w2).is_none());
}

#[test]
fn mini_lu_fingerprints_stable_across_recompiles() {
    let srcs: Vec<SourceFile> =
        workloads::mini_lu::sources().iter().map(SourceFile::from).collect();
    let p1 = compile_to_h(&srcs, DEFAULT_LAYOUT_BASE).unwrap();
    let p2 = compile_to_h(&srcs, DEFAULT_LAYOUT_BASE).unwrap();
    assert_eq!(p1.procedure_count(), p2.procedure_count());
    for (id1, _) in p1.procedures.iter_enumerated() {
        let name = p1.name_of(p1.procedure(id1).name).to_string();
        let id2 = p2.find_procedure(&name).unwrap();
        assert_eq!(
            proc_fingerprint(&p1, id1, 3),
            proc_fingerprint(&p2, id2, 3),
            "procedure `{name}` fingerprint must be reproducible"
        );
        assert!(procs_correspond(&p1, id1, &p2, id2).is_some(), "{name}");
    }
}

#[test]
fn global_symbol_map_binds_globals_and_names_across_programs() {
    use whirl::hash::global_symbol_map;
    let p1 = compile(&[("o.f", OTHER), ("w.f", WORK)]);
    let p2 = compile(&[("o.f", OTHER_V2), ("w.f", WORK)]);
    let maps = global_symbol_map(&p1, &p2);
    // The shared global `a` maps across the index shift `OTHER_V2` causes.
    let a1 = p1.symbols.find(p1.interner.get("a").unwrap()).unwrap();
    let a2 = p2.symbols.find(p2.interner.get("a").unwrap()).unwrap();
    assert_eq!(maps.st.get(&a1), Some(&a2));
    // Every interned name that survives maps by string — including `work`'s
    // loop variable, which no correspondence walk of `other` would visit.
    let i1 = p1.interner.get("i").unwrap();
    let i2 = p2.interner.get("i").unwrap();
    assert_eq!(maps.sym.get(&i1), Some(&i2));
    for (&os, &ns) in &maps.sym {
        assert_eq!(p1.interner.resolve(os), p2.interner.resolve(ns));
    }
}

#[test]
fn global_symbol_map_skips_retyped_globals() {
    use whirl::hash::global_symbol_map;
    let p1 = compile(&[("w.f", WORK)]);
    let edited = WORK.replace("real a(16)", "real a(32)");
    let p2 = compile(&[("w.f", &edited)]);
    let maps = global_symbol_map(&p1, &p2);
    // Same name, different declared bounds: the identity check refuses the
    // binding, so a stale cached summary cannot silently rebase onto it.
    let a1 = p1.symbols.find(p1.interner.get("a").unwrap()).unwrap();
    assert!(!maps.st.contains_key(&a1));
}
