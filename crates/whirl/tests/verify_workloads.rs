//! The structural verifier over every workload the repo ships, at both IR
//! levels — any frontend or lowering regression trips here first.

use frontend::{compile, compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
use whirl::verify::verify_program;
use whirl::Lang;

fn sources(gens: Vec<workloads::GenSource>) -> Vec<SourceFile> {
    gens.iter()
        .map(|g| {
            SourceFile::new(
                &g.name,
                &g.text,
                if g.fortran { Lang::Fortran } else { Lang::C },
            )
        })
        .collect()
}

fn assert_clean(gens: Vec<workloads::GenSource>, label: &str) {
    let files = sources(gens);
    // VH level.
    let vh = compile(&files).unwrap();
    let errors = verify_program(&vh);
    assert!(errors.is_empty(), "{label} VH: {errors:#?}");
    // H level.
    let h = compile_to_h(&files, DEFAULT_LAYOUT_BASE).unwrap();
    let errors = verify_program(&h);
    assert!(errors.is_empty(), "{label} H: {errors:#?}");
}

#[test]
fn fig1_verifies() {
    assert_clean(vec![workloads::fig1::source()], "fig1");
}

#[test]
fn matrix_c_verifies() {
    assert_clean(vec![workloads::fig10::source()], "matrix.c");
}

#[test]
fn mini_lu_verifies() {
    assert_clean(workloads::mini_lu::sources(), "mini-LU");
}

#[test]
fn caf_halo_verifies() {
    assert_clean(vec![workloads::caf::source()], "caf halo");
}

#[test]
fn stencil_verifies() {
    assert_clean(vec![workloads::stencil::source()], "stencil.c");
}

#[test]
fn synthetic_family_verifies() {
    for seed in [1u64, 7, 42] {
        let cfg = workloads::synthetic::SynthConfig {
            procedures: 6,
            arrays: 3,
            loop_depth: 3,
            stmts_per_loop: 5,
            seed,
        };
        assert_clean(
            vec![workloads::synthetic::generate(&cfg)],
            &format!("synthetic seed {seed}"),
        );
    }
}
