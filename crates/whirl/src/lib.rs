//! WHIRL-like intermediate representation.
//!
//! "WHIRL is the intermediate language (IR) for OpenUH, which consists of
//! five levels ... arrays keep their structures at the high level, and ...
//! WHIRL is the common interface among the different phases of the
//! compiler." This crate reproduces the two levels the paper's tool uses —
//! Very High and High — together with the WN node structure of Table I, the
//! ST/TY symbol tables, the VH→H lowering that normalizes `ARRAY` operators
//! to row-major zero-based form, and `whirl2c`/`whirl2f` emitters.

pub mod builder;
pub mod emit;
pub mod hash;
pub mod interp;
pub mod lower;
pub mod node;
pub mod program;
pub mod symtab;
pub mod verify;

pub use builder::TreeBuilder;
pub use node::{Opr, WhirlNode, WhirlTree, WnId};
pub use program::{Lang, Level, ProcId, Procedure, Program};
pub use symtab::{
    DataType, DimBound, StClass, StIdx, SymbolTable, TyIdx, TyKind, TypeTable,
};
