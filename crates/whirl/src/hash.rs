//! Stable per-procedure structural fingerprints and cross-program
//! correspondence.
//!
//! The incremental analysis session reuses a procedure's summary when the
//! procedure is *content-identical* between two compilations. "Identical"
//! must hold at the level the IPL phase consumes: the H WHIRL tree shape,
//! every node field of Table I, and the *identity* (name, storage class,
//! type structure) of every referenced symbol — but **not** raw `StIdx`
//! values, which shift whenever an unrelated file adds a symbol, and
//! **not** assigned addresses, which the layout pass may move without
//! changing any summary.
//!
//! Two entry points:
//!
//! - [`proc_fingerprint`] — a stable 64-bit content hash, used as the cache
//!   key;
//! - [`procs_correspond`] — the verification walk run on every candidate
//!   cache hit: it re-checks full structural equality node by node (so a
//!   fingerprint collision degrades to a cache miss, never a wrong reuse)
//!   and returns the `StIdx`/`Symbol` translation maps needed to *rebase*
//!   a cached summary onto the new program's tables.

use crate::node::{Opr, WhirlNode};
use crate::program::{Lang, Level, ProcId, Program};
use crate::symtab::{DimBound, StIdx, TyKind};
use std::collections::BTreeMap;
use support::hash::StableHasher;
use support::intern::Symbol;

/// Hashes everything the budget machinery lets influence a summary, so a
/// budget change invalidates every cached entry.
pub fn budget_salt(b: &support::budget::BudgetConfig) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(b.fm_steps);
    h.write_usize(b.max_constraints);
    h.write_u64(b.translations);
    h.write_u32(b.recursion_limit);
    h.finish()
}

/// A stable content hash of one procedure: metadata, formals, and the
/// reachable WHIRL tree with symbols hashed by identity. `salt` folds in
/// out-of-band inputs (the analysis [`BudgetConfig`](support::budget::BudgetConfig)).
pub fn proc_fingerprint(program: &Program, id: ProcId, salt: u64) -> u64 {
    let proc = program.procedure(id);
    let mut h = StableHasher::new();
    h.write_u64(salt);
    h.write_str(program.name_of(proc.name));
    h.write_str(program.interner.resolve(proc.file));
    h.write_u32(proc.linenum);
    h.write_u8(lang_tag(proc.lang));
    h.write_u8(level_tag(proc.level));
    h.write_usize(proc.formals.len());
    for &f in &proc.formals {
        hash_symbol(&mut h, program, f);
    }
    for wn in proc.tree.iter() {
        let n = proc.tree.node(wn);
        hash_node(&mut h, program, n);
    }
    h.finish()
}

fn hash_node(h: &mut StableHasher, program: &Program, n: &WhirlNode) {
    h.write_u8(opr_tag(n.operator));
    h.write_u32(n.linenum);
    h.write_i64(n.offset);
    h.write_i64(n.elem_size);
    h.write_i64(n.const_val);
    h.write_u8(n.res as u8);
    h.write_usize(n.kids.len());
    match n.st_idx {
        Some(st) => {
            h.write_u8(1);
            hash_symbol(h, program, st);
        }
        None => h.write_u8(0),
    }
}

fn hash_symbol(h: &mut StableHasher, program: &Program, st: StIdx) {
    let entry = program.symbols.get(st);
    h.write_str(program.name_of(entry.name));
    h.write_u8(entry.class as u8);
    hash_type(h, &program.types.get(entry.ty).kind);
}

fn hash_type(h: &mut StableHasher, kind: &TyKind) {
    match kind {
        TyKind::Scalar(dt) => {
            h.write_u8(0);
            h.write_u8(*dt as u8);
        }
        TyKind::Array { elem, dims, contiguous } => {
            h.write_u8(1);
            h.write_u8(*elem as u8);
            h.write_u8(u8::from(*contiguous));
            h.write_usize(dims.len());
            for d in dims {
                match d {
                    DimBound::Const { lb, ub } => {
                        h.write_u8(0);
                        h.write_i64(*lb);
                        h.write_i64(*ub);
                    }
                    DimBound::Runtime => h.write_u8(1),
                }
            }
        }
        TyKind::Proc(dt) => {
            h.write_u8(2);
            h.write_u8(*dt as u8);
        }
    }
}

fn opr_tag(op: Opr) -> u8 {
    op as u8
}

fn lang_tag(l: Lang) -> u8 {
    match l {
        Lang::C => 0,
        Lang::Fortran => 1,
    }
}

fn level_tag(l: Level) -> u8 {
    match l {
        Level::VeryHigh => 0,
        Level::High => 1,
    }
}

/// Symbol translation maps produced by a verified correspondence: how to
/// rewrite indices and interned names minted by the *old* program into the
/// *new* program's tables.
#[derive(Debug, Clone, Default)]
pub struct SymbolMaps {
    /// Old `StIdx` → new `StIdx`, for every symbol the old tree references.
    pub st: BTreeMap<StIdx, StIdx>,
    /// Old interned name → new interned name, for the same symbols.
    pub sym: BTreeMap<Symbol, Symbol>,
}

impl SymbolMaps {
    /// Merges `other` into `self`. Returns `false` on a contradictory
    /// mapping (the same old index bound to two different new indices) —
    /// impossible for identity-verified maps of one program pair, but
    /// callers treat it as a cache miss rather than trusting it.
    pub fn merge(&mut self, other: &SymbolMaps) -> bool {
        for (&o, &n) in &other.st {
            if *self.st.entry(o).or_insert(n) != n {
                return false;
            }
        }
        for (&o, &n) in &other.sym {
            if *self.sym.entry(o).or_insert(n) != n {
                return false;
            }
        }
        true
    }
}

/// Verifies that procedure `old_id` of `old` and `new_id` of `new` are
/// structurally identical (same metadata, formals, tree, node fields, and
/// symbol identities) and, when they are, returns the symbol translation
/// maps. Returns `None` on any mismatch.
pub fn procs_correspond(
    old: &Program,
    old_id: ProcId,
    new: &Program,
    new_id: ProcId,
) -> Option<SymbolMaps> {
    let o = old.procedure(old_id);
    let n = new.procedure(new_id);
    if old.name_of(o.name) != new.name_of(n.name)
        || old.interner.resolve(o.file) != new.interner.resolve(n.file)
        || o.linenum != n.linenum
        || o.lang != n.lang
        || o.level != n.level
        || o.formals.len() != n.formals.len()
    {
        return None;
    }
    let mut maps = SymbolMaps::default();
    for (&of, &nf) in o.formals.iter().zip(&n.formals) {
        bind_symbol(old, of, new, nf, &mut maps)?;
    }
    let mut old_walk = o.tree.iter();
    let mut new_walk = n.tree.iter();
    loop {
        match (old_walk.next(), new_walk.next()) {
            (None, None) => break,
            (Some(ow), Some(nw)) => {
                let on = o.tree.node(ow);
                let nn = n.tree.node(nw);
                if on.operator != nn.operator
                    || on.linenum != nn.linenum
                    || on.offset != nn.offset
                    || on.elem_size != nn.elem_size
                    || on.const_val != nn.const_val
                    || on.res != nn.res
                    || on.kids.len() != nn.kids.len()
                {
                    return None;
                }
                match (on.st_idx, nn.st_idx) {
                    (None, None) => {}
                    (Some(os), Some(ns)) => bind_symbol(old, os, new, ns, &mut maps)?,
                    _ => return None,
                }
            }
            _ => return None, // different node counts
        }
    }
    Some(maps)
}

/// Maps every *global* symbol of `old` onto the structurally identical
/// global of `new` with the same name, when one exists, and every old
/// interned name onto the new program's symbol for the same string.
///
/// Globals live in one program-wide namespace, so name + class + type
/// structure identifies them without any per-procedure walk. Interned
/// [`Symbol`]s are pure names (one interner per program), so cross-program
/// translation by string is exact. The incremental session merges this into
/// a procedure's correspondence maps before rebasing *propagated* summaries,
/// whose records may mention identities the procedure's own tree never
/// touches — a callee's side effect on a common block, or a callee's loop
/// variable carried into a translated region `Space`.
pub fn global_symbol_map(old: &Program, new: &Program) -> SymbolMaps {
    let mut by_name: BTreeMap<&str, StIdx> = BTreeMap::new();
    for (st, entry) in new.symbols.iter() {
        if entry.class == crate::symtab::StClass::Global {
            by_name.insert(new.name_of(entry.name), st);
        }
    }
    let mut maps = SymbolMaps::default();
    for (st, entry) in old.symbols.iter() {
        if entry.class != crate::symtab::StClass::Global {
            continue;
        }
        let Some(&ns) = by_name.get(old.name_of(entry.name)) else { continue };
        // `bind_symbol` re-checks class and type structure; an incompatible
        // same-name global simply stays unmapped (rebase will then refuse).
        let _ = bind_symbol(old, st, new, ns, &mut maps);
    }
    for (osym, name) in old.interner.iter() {
        let Some(nsym) = new.interner.get(name) else { continue };
        // Cannot contradict a `bind_symbol` entry: that path only binds
        // equal-string names, and the new interner deduplicates, so the
        // string lookup lands on the same new symbol. Names absent from the
        // new interner stay unmapped and force recomputation.
        maps.sym.entry(osym).or_insert(nsym);
    }
    maps
}

/// Checks that `os` (in `old`) and `ns` (in `new`) denote the same symbol
/// identity and records the binding; `None` on identity mismatch or a
/// contradiction with an earlier binding.
fn bind_symbol(
    old: &Program,
    os: StIdx,
    new: &Program,
    ns: StIdx,
    maps: &mut SymbolMaps,
) -> Option<()> {
    let oe = old.symbols.get(os);
    let ne = new.symbols.get(ns);
    if old.name_of(oe.name) != new.name_of(ne.name)
        || oe.class != ne.class
        || old.types.get(oe.ty).kind != new.types.get(ne.ty).kind
    {
        return None;
    }
    if *maps.st.entry(os).or_insert(ns) != ns {
        return None;
    }
    if *maps.sym.entry(oe.name).or_insert(ne.name) != ne.name {
        return None;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fingerprint/correspondence tests that need compiled programs live in
    // `tests/hash_fingerprint.rs` — the frontend dev-dependency links a
    // separate instance of this crate, so its `Program` type only unifies
    // with ours in integration tests.

    #[test]
    fn merge_detects_contradictions() {
        let mut a = SymbolMaps::default();
        a.st.insert(StIdx(0), StIdx(1));
        let mut b = SymbolMaps::default();
        b.st.insert(StIdx(0), StIdx(2));
        assert!(a.clone().merge(&SymbolMaps::default()), "empty merge is fine");
        assert!(a.clone().merge(&a.clone()), "self merge is fine");
        assert!(!a.merge(&b), "contradictory binding must be rejected");
    }
}
