//! WHIRL nodes (`WN`) and trees.
//!
//! Table I of the paper lists the WN fields the tool consumes: `prev`,
//! `next`, `linenum`, `offset`, `elem_size`, `operator`, `res`, `kid_count`,
//! `num_dim`, `array_dim`, `array_index`, `array_base`, `const_val`,
//! `st_idx`. All of them exist here with the same meaning.
//!
//! The `ARRAY` operator follows the Open64 layout exactly: it is an "N-ary
//! expression operator" whose number of dimensions `n` "is inferred from
//! kid-count shifted right by 1" (`kid_count = 2n + 1`); kid 0 is the base
//! address, "Kids 1 to n give the size of each dimension ... Kids n+1 to 2n
//! give the index expressions for dimensions 0 to n-1 respectively (adjusted
//! so that the array index has a zero lower bound)", and the address is
//! `base + z·Σᵢ(yᵢ·Πⱼ₌ᵢ₊₁..n hⱼ)` with `z` the element size.

use crate::symtab::{DataType, StIdx};
use support::define_idx;
use support::idx::IndexVec;

define_idx! {
    /// Handle to a node inside a [`WhirlTree`].
    pub struct WnId;
}

/// WHIRL operators — the subset a high-level (VH/H) tree needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opr {
    /// Procedure entry; kid 0 is the body `Block`, preceding kids are
    /// `Idname` formals.
    FuncEntry,
    /// Statement sequence.
    Block,
    /// Formal parameter name slot under `FuncEntry`.
    Idname,
    /// Counted loop: kids `[start (Stid), end (comparison expr), step
    /// (Stid), body (Block)]`; `st_idx` is the induction variable.
    DoLoop,
    /// Conditional: kids `[cond, then-Block, else-Block]`.
    If,
    /// Direct call; kids are `Parm` nodes; `st_idx` names the callee.
    Call,
    /// Store to a scalar (`st_idx`); kid 0 is the value.
    Stid,
    /// Load of a scalar (`st_idx`).
    Ldid,
    /// Indirect store: kid 0 value, kid 1 address (an `Array` node).
    Istore,
    /// Indirect load: kid 0 address (an `Array` node).
    Iload,
    /// The n-ary array address operator (row-major, zero-based).
    Array,
    /// Remote (coindexed) coarray address: kids `[Array, image-expr]` — the
    /// PGAS extension ("a programmer can easily express remote data
    /// accesses based on a one-sided communication model").
    RemoteArray,
    /// Address of a symbol (`st_idx`) — array bases.
    Lda,
    /// Integer constant (`const_val`).
    Intconst,
    /// Floating constant (bit pattern in `const_val`).
    Fconst,
    /// Addition, kids `[a, b]`.
    Add,
    /// Subtraction, kids `[a, b]`.
    Sub,
    /// Multiplication, kids `[a, b]`.
    Mpy,
    /// Integer division, kids `[a, b]`.
    Div,
    /// Negation, kid `[a]`.
    Neg,
    /// Comparison `a ≤ b` (loop end tests).
    Le,
    /// Comparison `a < b`.
    Lt,
    /// Comparison `a ≥ b`.
    Ge,
    /// Comparison `a > b`.
    Gt,
    /// Comparison `a = b`.
    Eq,
    /// Comparison `a ≠ b`.
    Ne,
    /// Logical and.
    Land,
    /// Logical or.
    Lior,
    /// Call argument wrapper; kid 0 is the value or array base.
    Parm,
    /// Procedure return; optional kid 0 value.
    Return,
}

impl Opr {
    /// True for statement-level operators (members of a `Block`).
    pub fn is_statement(self) -> bool {
        matches!(
            self,
            Opr::DoLoop | Opr::If | Opr::Call | Opr::Stid | Opr::Istore | Opr::Return
        )
    }

    /// True for expression operators.
    pub fn is_expression(self) -> bool {
        !self.is_statement() && !matches!(self, Opr::FuncEntry | Opr::Block | Opr::Idname)
    }
}

/// One WHIRL node. Field names follow Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct WhirlNode {
    /// Previous statement in the enclosing `Block` (paper: "previous
    /// pointer").
    pub prev: Option<WnId>,
    /// Next statement in the enclosing `Block` (paper: "next pointer").
    pub next: Option<WnId>,
    /// "source position information".
    pub linenum: u32,
    /// "offset for loads, stores, LDA, IDNAME."
    pub offset: i64,
    /// "element size for array" — set on `Array` nodes; negative marks a
    /// non-contiguous Fortran-90 array.
    pub elem_size: i64,
    /// "WHIRL operator".
    pub operator: Opr,
    /// "result type".
    pub res: DataType,
    /// Children, in operator-specific order. `kid_count` is `kids.len()`.
    pub kids: Vec<WnId>,
    /// "64-bit integer constant." (also carries float bit patterns).
    pub const_val: i64,
    /// "symbol table index." — the accessed/called/declared symbol.
    pub st_idx: Option<StIdx>,
}

impl WhirlNode {
    fn new(operator: Opr) -> Self {
        WhirlNode {
            prev: None,
            next: None,
            linenum: 0,
            offset: 0,
            elem_size: 0,
            operator,
            res: DataType::Void,
            kids: Vec::new(),
            const_val: 0,
            st_idx: None,
        }
    }

    /// "number of kids for n-ary operators."
    pub fn kid_count(&self) -> usize {
        self.kids.len()
    }

    /// "Number of dimensions in array": `kid_count >> 1` on `Array` nodes.
    pub fn num_dim(&self) -> usize {
        debug_assert_eq!(self.operator, Opr::Array);
        self.kid_count() >> 1
    }

    /// Kid 0 of an `Array` node: the base address.
    pub fn array_base_kid(&self) -> WnId {
        debug_assert_eq!(self.operator, Opr::Array);
        self.kids[0]
    }

    /// Kid `1 + d`: "size of array dimension" `d` (`array_dim`).
    pub fn array_dim_kid(&self, d: usize) -> WnId {
        debug_assert_eq!(self.operator, Opr::Array);
        debug_assert!(d < self.num_dim());
        self.kids[1 + d]
    }

    /// Kid `n + 1 + d`: "index of array" for dimension `d` (`array_index`).
    pub fn array_index_kid(&self, d: usize) -> WnId {
        debug_assert_eq!(self.operator, Opr::Array);
        let n = self.num_dim();
        debug_assert!(d < n);
        self.kids[1 + n + d]
    }
}

/// A WHIRL tree for one procedure: an arena of nodes plus the `FuncEntry`
/// root.
#[derive(Debug, Clone, Default)]
pub struct WhirlTree {
    nodes: IndexVec<WnId, WhirlNode>,
    root: Option<WnId>,
}

impl WhirlTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a node with operator `op`; all other fields default.
    pub fn alloc(&mut self, op: Opr) -> WnId {
        self.nodes.push(WhirlNode::new(op))
    }

    /// Borrow a node.
    pub fn node(&self, id: WnId) -> &WhirlNode {
        &self.nodes[id]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: WnId) -> &mut WhirlNode {
        &mut self.nodes[id]
    }

    /// Number of nodes allocated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sets the `FuncEntry` root.
    pub fn set_root(&mut self, id: WnId) {
        debug_assert_eq!(self.node(id).operator, Opr::FuncEntry);
        self.root = Some(id);
    }

    /// The `FuncEntry` root.
    pub fn root(&self) -> Option<WnId> {
        self.root
    }

    /// Appends `stmt` to `block`, maintaining the Table I `prev`/`next`
    /// sibling links.
    pub fn append_to_block(&mut self, block: WnId, stmt: WnId) {
        debug_assert_eq!(self.node(block).operator, Opr::Block);
        if let Some(&last) = self.node(block).kids.last() {
            self.node_mut(last).next = Some(stmt);
            self.node_mut(stmt).prev = Some(last);
        }
        self.node_mut(block).kids.push(stmt);
    }

    /// Pre-order traversal from `start` — the paper's "iterate the WHIRL
    /// tree in which each vertex is represented by wn".
    pub fn pre_order(&self, start: WnId) -> PreOrder<'_> {
        PreOrder { tree: self, stack: vec![start] }
    }

    /// Pre-order traversal from the root.
    pub fn iter(&self) -> PreOrder<'_> {
        PreOrder { tree: self, stack: self.root.into_iter().collect() }
    }

    /// Evaluates a constant-foldable expression subtree, `None` when any
    /// leaf is non-constant.
    pub fn eval_const(&self, id: WnId) -> Option<i64> {
        let n = self.node(id);
        match n.operator {
            Opr::Intconst => Some(n.const_val),
            Opr::Add => Some(self.eval_const(n.kids[0])? + self.eval_const(n.kids[1])?),
            Opr::Sub => Some(self.eval_const(n.kids[0])? - self.eval_const(n.kids[1])?),
            Opr::Mpy => Some(self.eval_const(n.kids[0])? * self.eval_const(n.kids[1])?),
            Opr::Div => {
                let d = self.eval_const(n.kids[1])?;
                (d != 0).then(|| self.eval_const(n.kids[0]).map(|x| x / d))?
            }
            Opr::Neg => Some(-self.eval_const(n.kids[0])?),
            _ => None,
        }
    }

    /// The paper's address formula for an `Array` node: with kids 1..n named
    /// `h₁..hₙ`, index expressions `y₁..yₙ`, and element size `z`, the
    /// address is `base + z·Σᵢ(yᵢ·Πⱼ₌ᵢ₊₁..n hⱼ)`. `eval` supplies the value
    /// of each kid expression (dimension sizes and indices); `base` is the
    /// resolved base address.
    pub fn array_address(
        &self,
        array: WnId,
        base: u64,
        eval: &dyn Fn(WnId) -> Option<i64>,
    ) -> Option<u64> {
        let n_node = self.node(array);
        debug_assert_eq!(n_node.operator, Opr::Array);
        let n = n_node.num_dim();
        let z = n_node.elem_size.unsigned_abs();
        let mut flat: i64 = 0;
        for i in 0..n {
            let y = eval(n_node.array_index_kid(i))?;
            let mut mult: i64 = 1;
            for j in (i + 1)..n {
                mult = mult.checked_mul(eval(n_node.array_dim_kid(j))?)?;
            }
            flat = flat.checked_add(y.checked_mul(mult)?)?;
        }
        Some(base.wrapping_add((z as i64).checked_mul(flat)? as u64))
    }
}

/// Pre-order iterator over a WHIRL tree.
pub struct PreOrder<'a> {
    tree: &'a WhirlTree,
    stack: Vec<WnId>,
}

impl<'a> Iterator for PreOrder<'a> {
    type Item = WnId;

    fn next(&mut self) -> Option<WnId> {
        let id = self.stack.pop()?;
        let node = self.tree.node(id);
        // Push kids in reverse so kid 0 is visited first.
        for &k in node.kids.iter().rev() {
            self.stack.push(k);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intconst(tree: &mut WhirlTree, v: i64) -> WnId {
        let id = tree.alloc(Opr::Intconst);
        tree.node_mut(id).const_val = v;
        tree.node_mut(id).res = DataType::I8;
        id
    }

    /// Builds `ARRAY` for a 2-D access with dims (h1, h2) and indices
    /// (y1, y2), element size z.
    fn array2(tree: &mut WhirlTree, h: [i64; 2], y: [i64; 2], z: i64) -> WnId {
        let base = tree.alloc(Opr::Lda);
        let h1 = intconst(tree, h[0]);
        let h2 = intconst(tree, h[1]);
        let y1 = intconst(tree, y[0]);
        let y2 = intconst(tree, y[1]);
        let arr = tree.alloc(Opr::Array);
        tree.node_mut(arr).kids = vec![base, h1, h2, y1, y2];
        tree.node_mut(arr).elem_size = z;
        arr
    }

    #[test]
    fn kid_count_encodes_dimensions() {
        let mut tree = WhirlTree::new();
        let arr = array2(&mut tree, [10, 20], [3, 4], 8);
        let n = tree.node(arr);
        assert_eq!(n.kid_count(), 5);
        assert_eq!(n.num_dim(), 2);
        assert_eq!(n.array_base_kid(), n.kids[0]);
        assert_eq!(n.array_dim_kid(0), n.kids[1]);
        assert_eq!(n.array_dim_kid(1), n.kids[2]);
        assert_eq!(n.array_index_kid(0), n.kids[3]);
        assert_eq!(n.array_index_kid(1), n.kids[4]);
    }

    #[test]
    fn address_formula_row_major() {
        // base + z*(y1*h2 + y2): 1000 + 8*(3*20 + 4) = 1000 + 512 = 1512.
        let mut tree = WhirlTree::new();
        let arr = array2(&mut tree, [10, 20], [3, 4], 8);
        let t = &tree;
        let addr = tree.array_address(arr, 1000, &|id| t.eval_const(id));
        assert_eq!(addr, Some(1512));
    }

    #[test]
    fn address_formula_one_dim() {
        let mut tree = WhirlTree::new();
        let base = tree.alloc(Opr::Lda);
        let h = intconst(&mut tree, 20);
        let y = intconst(&mut tree, 7);
        let arr = tree.alloc(Opr::Array);
        tree.node_mut(arr).kids = vec![base, h, y];
        tree.node_mut(arr).elem_size = 4;
        let t = &tree;
        assert_eq!(tree.array_address(arr, 0, &|id| t.eval_const(id)), Some(28));
    }

    #[test]
    fn block_links_prev_next() {
        let mut tree = WhirlTree::new();
        let block = tree.alloc(Opr::Block);
        let s1 = tree.alloc(Opr::Stid);
        let s2 = tree.alloc(Opr::Stid);
        let s3 = tree.alloc(Opr::Return);
        tree.append_to_block(block, s1);
        tree.append_to_block(block, s2);
        tree.append_to_block(block, s3);
        assert_eq!(tree.node(s1).prev, None);
        assert_eq!(tree.node(s1).next, Some(s2));
        assert_eq!(tree.node(s2).prev, Some(s1));
        assert_eq!(tree.node(s2).next, Some(s3));
        assert_eq!(tree.node(s3).next, None);
    }

    #[test]
    fn pre_order_visits_parent_before_kids_left_to_right() {
        let mut tree = WhirlTree::new();
        let a = intconst(&mut tree, 1);
        let b = intconst(&mut tree, 2);
        let add = tree.alloc(Opr::Add);
        tree.node_mut(add).kids = vec![a, b];
        let order: Vec<WnId> = tree.pre_order(add).collect();
        assert_eq!(order, vec![add, a, b]);
    }

    #[test]
    fn eval_const_folds_arithmetic() {
        let mut tree = WhirlTree::new();
        let a = intconst(&mut tree, 6);
        let b = intconst(&mut tree, 2);
        for (op, expect) in [
            (Opr::Add, 8),
            (Opr::Sub, 4),
            (Opr::Mpy, 12),
            (Opr::Div, 3),
        ] {
            let n = tree.alloc(op);
            tree.node_mut(n).kids = vec![a, b];
            assert_eq!(tree.eval_const(n), Some(expect));
        }
        let n = tree.alloc(Opr::Neg);
        tree.node_mut(n).kids = vec![a];
        assert_eq!(tree.eval_const(n), Some(-6));
        let ld = tree.alloc(Opr::Ldid);
        assert_eq!(tree.eval_const(ld), None);
    }

    #[test]
    fn eval_const_division_by_zero_is_none() {
        let mut tree = WhirlTree::new();
        let a = intconst(&mut tree, 6);
        let z = intconst(&mut tree, 0);
        let n = tree.alloc(Opr::Div);
        tree.node_mut(n).kids = vec![a, z];
        assert_eq!(tree.eval_const(n), None);
    }

    #[test]
    fn statement_expression_classification() {
        assert!(Opr::Stid.is_statement());
        assert!(Opr::Istore.is_statement());
        assert!(!Opr::Array.is_statement());
        assert!(Opr::Array.is_expression());
        assert!(!Opr::Block.is_expression());
        assert!(!Opr::FuncEntry.is_expression());
    }

    #[test]
    fn iter_from_root() {
        let mut tree = WhirlTree::new();
        let block = tree.alloc(Opr::Block);
        let fe = tree.alloc(Opr::FuncEntry);
        tree.node_mut(fe).kids = vec![block];
        tree.set_root(fe);
        let seen: Vec<Opr> = tree.iter().map(|id| tree.node(id).operator).collect();
        assert_eq!(seen, vec![Opr::FuncEntry, Opr::Block]);
    }

    #[test]
    fn negative_elem_size_marks_noncontiguous() {
        let mut tree = WhirlTree::new();
        let arr = array2(&mut tree, [10, 20], [0, 0], -8);
        assert!(tree.node(arr).elem_size < 0);
        // Address math uses the magnitude.
        let t = &tree;
        assert_eq!(tree.array_address(arr, 100, &|id| t.eval_const(id)), Some(100));
    }
}
