//! Structural verification of WHIRL trees.
//!
//! Real compiler IRs ship an invariant checker; ours validates everything
//! later phases assume, so a frontend or lowering bug surfaces at the
//! boundary instead of as a wrong region three crates later:
//!
//! - operator-specific kid counts (`ARRAY` has `2n+1`, `ISTORE` 2,
//!   `DO_LOOP` 4, `IF` 3, ...);
//! - required `st_idx` on symbol-bearing operators, resolvable in the
//!   symbol table;
//! - `Block` kids are statements, expression operators appear only in
//!   expression positions;
//! - `DO_LOOP` shape: init/increment are `STID` of the induction variable,
//!   the test is a comparison;
//! - `prev`/`next` sibling links are consistent with `Block` kid order;
//! - `ARRAY` subscript count matches the base symbol's declared rank.

use crate::node::{Opr, WhirlTree, WnId};
use crate::program::{Procedure, Program};
use crate::symtab::TyKind;

/// One verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The offending node.
    pub node: WnId,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.node, self.msg)
    }
}

/// Verifies one procedure; returns every violation found.
pub fn verify_procedure(program: &Program, proc: &Procedure) -> Vec<VerifyError> {
    let mut v = Verifier { program, tree: &proc.tree, errors: Vec::new() };
    let Some(root) = proc.tree.root() else {
        return vec![VerifyError { node: WnId(0), msg: "tree has no root".into() }];
    };
    if proc.tree.node(root).operator != Opr::FuncEntry {
        v.err(root, "root is not FUNC_ENTRY");
    }
    let kids = &proc.tree.node(root).kids;
    match kids.split_last() {
        None => v.err(root, "FUNC_ENTRY has no body"),
        Some((&body, formals)) => {
            for &formal in formals {
                if proc.tree.node(formal).operator != Opr::Idname {
                    v.err(formal, "FUNC_ENTRY leading kids must be IDNAMEs");
                }
            }
            v.check_block(body);
        }
    }
    v.errors
}

/// Verifies every procedure of a program.
pub fn verify_program(program: &Program) -> Vec<(String, VerifyError)> {
    let mut out = Vec::new();
    for proc in program.procedures.iter() {
        for e in verify_procedure(program, proc) {
            out.push((program.name_of(proc.name).to_string(), e));
        }
    }
    out
}

struct Verifier<'a> {
    program: &'a Program,
    tree: &'a WhirlTree,
    errors: Vec<VerifyError>,
}

impl<'a> Verifier<'a> {
    fn err(&mut self, node: WnId, msg: impl Into<String>) {
        self.errors.push(VerifyError { node, msg: msg.into() });
    }

    fn require_kids(&mut self, id: WnId, n: usize) -> bool {
        let have = self.tree.node(id).kid_count();
        if have != n {
            let op = self.tree.node(id).operator;
            self.err(id, format!("{op:?} expects {n} kids, has {have}"));
            false
        } else {
            true
        }
    }

    fn require_symbol(&mut self, id: WnId) {
        let node = self.tree.node(id);
        match node.st_idx {
            None => {
                let op = node.operator;
                self.err(id, format!("{op:?} requires st_idx"));
            }
            Some(st) => {
                use support::idx::Idx;
                if st.as_usize() >= self.program.symbols.len() {
                    self.err(id, "st_idx out of symbol-table range");
                }
            }
        }
    }

    fn check_block(&mut self, block: WnId) {
        if self.tree.node(block).operator != Opr::Block {
            self.err(block, "expected a BLOCK");
            return;
        }
        let kids = self.tree.node(block).kids.clone();
        // prev/next chain must mirror kid order.
        for (i, &k) in kids.iter().enumerate() {
            let n = self.tree.node(k);
            let expected_prev = if i == 0 { None } else { Some(kids[i - 1]) };
            let expected_next = kids.get(i + 1).copied();
            if n.prev != expected_prev || n.next != expected_next {
                self.err(k, "prev/next links inconsistent with BLOCK order");
            }
            if !n.operator.is_statement() {
                self.err(k, format!("{:?} is not a statement", n.operator));
            }
            self.check_stmt(k);
        }
    }

    fn check_stmt(&mut self, id: WnId) {
        let op = self.tree.node(id).operator;
        match op {
            Opr::Stid => {
                if self.require_kids(id, 1) {
                    self.require_symbol(id);
                    self.check_expr(self.tree.node(id).kids[0]);
                }
            }
            Opr::Istore => {
                if self.require_kids(id, 2) {
                    let kids = self.tree.node(id).kids.clone();
                    self.check_expr(kids[0]);
                    self.check_address(kids[1]);
                }
            }
            Opr::Call => {
                self.require_symbol(id);
                for &parm in &self.tree.node(id).kids.clone() {
                    if self.tree.node(parm).operator != Opr::Parm {
                        self.err(parm, "CALL kids must be PARMs");
                    } else if self.require_kids(parm, 1) {
                        self.check_expr(self.tree.node(parm).kids[0]);
                    }
                }
            }
            Opr::DoLoop => {
                if self.require_kids(id, 4) {
                    self.require_symbol(id);
                    let kids = self.tree.node(id).kids.clone();
                    let ivar = self.tree.node(id).st_idx;
                    for &slot in &[kids[0], kids[2]] {
                        let n = self.tree.node(slot);
                        if n.operator != Opr::Stid || n.st_idx != ivar {
                            self.err(slot, "DO_LOOP init/incr must STID the induction var");
                        } else {
                            self.check_expr(n.kids[0]);
                        }
                    }
                    let test = self.tree.node(kids[1]);
                    if !matches!(test.operator, Opr::Le | Opr::Lt | Opr::Ge | Opr::Gt) {
                        self.err(kids[1], "DO_LOOP test must be a comparison");
                    } else {
                        self.check_expr(kids[1]);
                    }
                    self.check_block(kids[3]);
                }
            }
            Opr::If => {
                if self.require_kids(id, 3) {
                    let kids = self.tree.node(id).kids.clone();
                    self.check_expr(kids[0]);
                    self.check_block(kids[1]);
                    self.check_block(kids[2]);
                }
            }
            Opr::Return => {
                if let Some(&v) = self.tree.node(id).kids.first() {
                    self.check_expr(v);
                }
            }
            other => self.err(id, format!("{other:?} is not a statement operator")),
        }
    }

    /// An indirect-access address: `ARRAY` or `REMOTE_ARRAY(ARRAY, expr)`.
    fn check_address(&mut self, id: WnId) {
        match self.tree.node(id).operator {
            Opr::Array => self.check_array(id),
            Opr::RemoteArray => {
                if self.require_kids(id, 2) {
                    let kids = self.tree.node(id).kids.clone();
                    if self.tree.node(kids[0]).operator != Opr::Array {
                        self.err(kids[0], "REMOTE_ARRAY kid 0 must be ARRAY");
                    } else {
                        self.check_array(kids[0]);
                    }
                    self.check_expr(kids[1]);
                }
            }
            other => self.err(id, format!("{other:?} cannot be an address")),
        }
    }

    fn check_array(&mut self, id: WnId) {
        let node = self.tree.node(id);
        if node.kid_count() < 3 || node.kid_count() % 2 == 0 {
            self.err(id, format!("ARRAY kid_count {} is not 2n+1", node.kid_count()));
            return;
        }
        let n = node.num_dim();
        let base = node.array_base_kid();
        let base_node = self.tree.node(base);
        if !matches!(base_node.operator, Opr::Lda | Opr::Ldid) {
            self.err(base, "ARRAY base must be LDA/LDID");
        } else if let Some(st) = base_node.st_idx {
            // Rank check against the declared type.
            let ty = self.program.symbols.get(st).ty;
            if let TyKind::Array { dims, .. } = &self.program.types.get(ty).kind {
                if dims.len() != n {
                    self.err(
                        id,
                        format!(
                            "ARRAY has {n} subscripts but `{}` has rank {}",
                            self.program.name_of(self.program.symbols.get(st).name),
                            dims.len()
                        ),
                    );
                }
            } else {
                self.err(base, "ARRAY base symbol is not an array");
            }
        } else {
            self.err(base, "ARRAY base carries no symbol");
        }
        let kids = node.kids.clone();
        for &k in &kids[1..] {
            self.check_expr(k);
        }
    }

    fn check_expr(&mut self, id: WnId) {
        let op = self.tree.node(id).operator;
        match op {
            Opr::Intconst | Opr::Fconst => {
                if !self.tree.node(id).kids.is_empty() {
                    self.err(id, "constants have no kids");
                }
            }
            Opr::Ldid | Opr::Lda => {
                self.require_symbol(id);
            }
            Opr::Iload => {
                if self.require_kids(id, 1) {
                    self.check_address(self.tree.node(id).kids[0]);
                }
            }
            Opr::Add
            | Opr::Sub
            | Opr::Mpy
            | Opr::Div
            | Opr::Le
            | Opr::Lt
            | Opr::Ge
            | Opr::Gt
            | Opr::Eq
            | Opr::Ne
            | Opr::Land
            | Opr::Lior => {
                if self.require_kids(id, 2) {
                    let kids = self.tree.node(id).kids.clone();
                    self.check_expr(kids[0]);
                    self.check_expr(kids[1]);
                }
            }
            Opr::Neg => {
                if self.require_kids(id, 1) {
                    self.check_expr(self.tree.node(id).kids[0]);
                }
            }
            Opr::Array | Opr::RemoteArray => self.check_address(id),
            other => self.err(id, format!("{other:?} is not an expression operator")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::program::{Lang, Level};
    use crate::symtab::{DataType, DimBound, StClass};

    fn valid_program() -> Program {
        let mut p = Program::new();
        let aty = p.types.array(DataType::F8, vec![DimBound::Const { lb: 1, ub: 9 }]);
        let ity = p.types.scalar(DataType::I4);
        let vty = p.types.scalar(DataType::Void);
        let a = p.symbols.add(p.interner.intern("a"), aty, StClass::Global);
        let i = p.symbols.add(p.interner.intern("i"), ity, StClass::Local);
        let s = p.symbols.add(p.interner.intern("s"), vty, StClass::Proc);

        let mut b = TreeBuilder::new();
        let inner = b.block();
        let base = b.lda(a, 2);
        let h = b.intconst(9);
        let y = b.ldid(i, DataType::I4, 2);
        let arr = b.array(base, vec![h], vec![y], 8, 2);
        let val = b.fconst(1.0);
        let st = b.istore(arr, val, 2);
        b.append(inner, st);
        let lo = b.intconst(1);
        let hi = b.intconst(9);
        let lp = b.do_loop(i, lo, hi, 1, inner, 1);
        let body = b.block();
        b.append(body, lp);
        b.func_entry(s, vec![], body);

        let name = p.interner.intern("s");
        let file = p.interner.intern("s.f");
        p.add_procedure(Procedure {
            name,
            st: s,
            file,
            linenum: 1,
            lang: Lang::Fortran,
            formals: vec![],
            tree: b.finish(),
            level: Level::VeryHigh,
        });
        p
    }

    #[test]
    fn valid_tree_passes() {
        let p = valid_program();
        assert_eq!(verify_program(&p), vec![]);
    }

    #[test]
    fn broken_prev_next_detected() {
        let mut p = valid_program();
        // Corrupt a sibling link.
        let proc = p.procedure_mut(crate::program::ProcId(0));
        let root = proc.tree.root().unwrap();
        let body = *proc.tree.node(root).kids.last().unwrap();
        let first = proc.tree.node(body).kids[0];
        proc.tree.node_mut(first).next = Some(first);
        let errors = verify_program(&p);
        assert!(errors.iter().any(|(_, e)| e.msg.contains("prev/next")), "{errors:?}");
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut p = valid_program();
        // Give the ARRAY node an extra fake dimension pair.
        let proc = p.procedure_mut(crate::program::ProcId(0));
        let arr = proc
            .tree
            .iter()
            .find(|&n| proc.tree.node(n).operator == Opr::Array)
            .unwrap();
        let extra_dim = proc.tree.alloc(Opr::Intconst);
        let extra_idx = proc.tree.alloc(Opr::Intconst);
        let node = proc.tree.node_mut(arr);
        node.kids.insert(2, extra_dim); // base, h1, EXTRA, y1 → wrong layout
        node.kids.push(extra_idx);
        let errors = verify_program(&p);
        assert!(
            errors.iter().any(|(_, e)| e.msg.contains("rank") || e.msg.contains("2n+1")),
            "{errors:?}"
        );
    }

    #[test]
    fn missing_symbol_detected() {
        let mut p = valid_program();
        let proc = p.procedure_mut(crate::program::ProcId(0));
        let ld = proc
            .tree
            .iter()
            .find(|&n| proc.tree.node(n).operator == Opr::Ldid)
            .unwrap();
        proc.tree.node_mut(ld).st_idx = None;
        let errors = verify_program(&p);
        assert!(errors.iter().any(|(_, e)| e.msg.contains("requires st_idx")), "{errors:?}");
    }

    #[test]
    fn expression_in_statement_position_detected() {
        let mut p = valid_program();
        let proc = p.procedure_mut(crate::program::ProcId(0));
        let root = proc.tree.root().unwrap();
        let body = *proc.tree.node(root).kids.last().unwrap();
        let stray = proc.tree.alloc(Opr::Intconst);
        proc.tree.append_to_block(body, stray);
        let errors = verify_program(&p);
        assert!(
            errors.iter().any(|(_, e)| e.msg.contains("not a statement")),
            "{errors:?}"
        );
    }

    #[test]
    fn do_loop_shape_enforced() {
        let mut p = valid_program();
        let proc = p.procedure_mut(crate::program::ProcId(0));
        let lp = proc
            .tree
            .iter()
            .find(|&n| proc.tree.node(n).operator == Opr::DoLoop)
            .unwrap();
        // Replace the test with a non-comparison.
        let bogus = proc.tree.alloc(Opr::Intconst);
        proc.tree.node_mut(lp).kids[1] = bogus;
        let errors = verify_program(&p);
        assert!(
            errors.iter().any(|(_, e)| e.msg.contains("comparison")),
            "{errors:?}"
        );
    }
}
