//! VH → H lowering of `ARRAY` operators.
//!
//! "Once the application's source code gets lowered to VH WHIRL by the front
//! ends, the compiler will next translate it to H WHIRL IR level where the
//! IPA phase operates." The observable effect on `ARRAY` nodes is the
//! normalization the paper has to undo in Dragon: "OpenUH uses (row major,
//! zero indexing) for all languages because of the structure of its ARRAY
//! operator."
//!
//! Lowering therefore rewrites every `ARRAY` node so that
//! - dimensions appear in row-major order (reversed for Fortran sources,
//!   unchanged for C), and
//! - every index expression is shifted to a zero lower bound
//!   ("adjusted so that the array index has a zero lower bound").

use crate::node::{Opr, WhirlTree, WnId};
use crate::program::{Lang, Level, Procedure, Program};
use crate::symtab::{DimBound, SymbolTable, TypeTable};

/// Lowers one procedure's tree from VH to H in place. Idempotent: a tree
/// already at [`Level::High`] is left untouched.
pub fn lower_procedure(
    proc: &mut Procedure,
    symbols: &SymbolTable,
    types: &TypeTable,
) {
    if proc.level == Level::High {
        return;
    }
    let arrays: Vec<WnId> = proc
        .tree
        .iter()
        .filter(|&id| proc.tree.node(id).operator == Opr::Array)
        .collect();
    for id in arrays {
        lower_array(&mut proc.tree, id, proc.lang, symbols, types);
    }
    proc.level = Level::High;
}

/// Lowers every procedure of a program.
pub fn lower_program(program: &mut Program) {
    // Split borrows: the tables are read-only during lowering.
    let symbols = program.symbols.clone();
    let types = program.types.clone();
    for proc in program.procedures.iter_mut() {
        lower_procedure(proc, &symbols, &types);
    }
}

fn lower_array(
    tree: &mut WhirlTree,
    id: WnId,
    lang: Lang,
    symbols: &SymbolTable,
    types: &TypeTable,
) {
    let (n, base_kid, line) = {
        let node = tree.node(id);
        (node.num_dim(), node.array_base_kid(), node.linenum)
    };
    // Resolve the declared bounds through the base symbol.
    let bounds: Vec<DimBound> = match tree.node(base_kid).st_idx {
        Some(st) => types.dim_bounds(symbols.get(st).ty),
        None => Vec::new(),
    };

    let mut dims: Vec<WnId> =
        (0..n).map(|d| tree.node(id).array_dim_kid(d)).collect();
    let mut indices: Vec<WnId> =
        (0..n).map(|d| tree.node(id).array_index_kid(d)).collect();

    // Shift each index to a zero lower bound (in source-dimension order).
    for (d, idx) in indices.iter_mut().enumerate() {
        let lb = bounds.get(d).map(|b| b.lower_in(lang)).unwrap_or(0);
        if lb != 0 {
            *idx = shift_index(tree, *idx, lb, line);
        }
    }

    // Fortran sources are column-major: reverse to row-major.
    if lang == Lang::Fortran {
        dims.reverse();
        indices.reverse();
    }

    let node = tree.node_mut(id);
    node.kids.clear();
    node.kids.push(base_kid);
    node.kids.extend(dims);
    node.kids.extend(indices);
}

/// Builds `idx - lb`, constant-folding when possible.
fn shift_index(tree: &mut WhirlTree, idx: WnId, lb: i64, line: u32) -> WnId {
    if tree.node(idx).operator == Opr::Intconst {
        let folded = tree.alloc(Opr::Intconst);
        let v = tree.node(idx).const_val - lb;
        let n = tree.node_mut(folded);
        n.const_val = v;
        n.linenum = line;
        return folded;
    }
    let c = tree.alloc(Opr::Intconst);
    tree.node_mut(c).const_val = lb;
    let sub = tree.alloc(Opr::Sub);
    let n = tree.node_mut(sub);
    n.kids = vec![idx, c];
    n.linenum = line;
    sub
}

/// Given a zero-based row-major (H-level) dimension index, returns the
/// source dimension it came from — the inverse mapping Dragon applies "to
/// fulfill our goal of showing the actual bounds".
pub fn source_dim(lang: Lang, ndims: usize, h_dim: usize) -> usize {
    match lang {
        Lang::C => h_dim,
        Lang::Fortran => ndims - 1 - h_dim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::symtab::{DataType, StClass, StIdx};
    use support::Interner;

    struct Fixture {
        symbols: SymbolTable,
        types: TypeTable,
        arr_st: StIdx,
        proc_st: StIdx,
    }

    fn fixture(lb: i64, ub: i64, second: Option<(i64, i64)>) -> Fixture {
        let mut it = Interner::new();
        let mut types = TypeTable::new();
        let mut dims = vec![DimBound::Const { lb, ub }];
        if let Some((l2, u2)) = second {
            dims.push(DimBound::Const { lb: l2, ub: u2 });
        }
        let aty = types.array(DataType::F8, dims);
        let pty = types.scalar(DataType::Void);
        let mut symbols = SymbolTable::new();
        let arr_st = symbols.add(it.intern("a"), aty, StClass::Global);
        let proc_st = symbols.add(it.intern("p"), pty, StClass::Proc);
        Fixture { symbols, types, arr_st, proc_st }
    }

    fn make_proc(fx: &Fixture, lang: Lang, build: impl FnOnce(&mut TreeBuilder, StIdx) -> WnId) -> Procedure {
        let mut b = TreeBuilder::new();
        let arr = build(&mut b, fx.arr_st);
        let body = b.block();
        let val = b.fconst(0.0);
        let st = b.istore(arr, val, 1);
        b.append(body, st);
        b.func_entry(fx.proc_st, vec![], body);
        Procedure {
            name: support::Interner::new().intern("p"),
            st: fx.proc_st,
            file: support::Interner::new().intern("t.f"),
            linenum: 1,
            lang,
            formals: vec![],
            tree: b.finish(),
            level: Level::VeryHigh,
        }
    }

    fn find_array(tree: &WhirlTree) -> WnId {
        tree.iter()
            .find(|&id| tree.node(id).operator == Opr::Array)
            .unwrap()
    }

    #[test]
    fn c_array_zero_based_is_untouched() {
        let fx = fixture(0, 19, None);
        let mut proc = make_proc(&fx, Lang::C, |b, st| {
            let base = b.lda(st, 1);
            let h = b.intconst(20);
            let y = b.intconst(7);
            b.array(base, vec![h], vec![y], 8, 1)
        });
        lower_procedure(&mut proc, &fx.symbols, &fx.types);
        let arr = find_array(&proc.tree);
        let idx = proc.tree.node(arr).array_index_kid(0);
        assert_eq!(proc.tree.eval_const(idx), Some(7));
        assert_eq!(proc.level, Level::High);
    }

    #[test]
    fn fortran_one_based_index_is_shifted() {
        // A(1:5): A(3) lowers to zero-based index 2.
        let fx = fixture(1, 5, None);
        let mut proc = make_proc(&fx, Lang::Fortran, |b, st| {
            let base = b.lda(st, 1);
            let h = b.intconst(5);
            let y = b.intconst(3);
            b.array(base, vec![h], vec![y], 8, 1)
        });
        lower_procedure(&mut proc, &fx.symbols, &fx.types);
        let arr = find_array(&proc.tree);
        let idx = proc.tree.node(arr).array_index_kid(0);
        assert_eq!(proc.tree.eval_const(idx), Some(2));
    }

    #[test]
    fn fortran_dimensions_reverse_to_row_major() {
        // A(1:10, 1:20), access A(i=3, j=7): H level must be
        // dims [20, 10], indices [6, 2].
        let fx = fixture(1, 10, Some((1, 20)));
        let mut proc = make_proc(&fx, Lang::Fortran, |b, st| {
            let base = b.lda(st, 1);
            let h1 = b.intconst(10);
            let h2 = b.intconst(20);
            let y1 = b.intconst(3);
            let y2 = b.intconst(7);
            b.array(base, vec![h1, h2], vec![y1, y2], 8, 1)
        });
        lower_procedure(&mut proc, &fx.symbols, &fx.types);
        let arr = find_array(&proc.tree);
        let n = proc.tree.node(arr);
        assert_eq!(proc.tree.eval_const(n.array_dim_kid(0)), Some(20));
        assert_eq!(proc.tree.eval_const(n.array_dim_kid(1)), Some(10));
        assert_eq!(proc.tree.eval_const(n.array_index_kid(0)), Some(6));
        assert_eq!(proc.tree.eval_const(n.array_index_kid(1)), Some(2));
    }

    #[test]
    fn lowering_is_idempotent() {
        let fx = fixture(1, 5, None);
        let mut proc = make_proc(&fx, Lang::Fortran, |b, st| {
            let base = b.lda(st, 1);
            let h = b.intconst(5);
            let y = b.intconst(3);
            b.array(base, vec![h], vec![y], 8, 1)
        });
        lower_procedure(&mut proc, &fx.symbols, &fx.types);
        let before = proc.tree.len();
        lower_procedure(&mut proc, &fx.symbols, &fx.types);
        assert_eq!(proc.tree.len(), before, "second lowering must be a no-op");
    }

    #[test]
    fn non_constant_index_gets_sub_node() {
        // A(1:5), access A(i) with i a variable: index becomes i - 1.
        let fx = fixture(1, 5, None);
        let mut it = Interner::new();
        let mut types = fx.types.clone();
        let ity = types.scalar(DataType::I4);
        let mut symbols = fx.symbols.clone();
        let i_st = symbols.add(it.intern("i"), ity, StClass::Local);
        let fx = Fixture { symbols, types, arr_st: fx.arr_st, proc_st: fx.proc_st };
        let mut proc = make_proc(&fx, Lang::Fortran, |b, st| {
            let base = b.lda(st, 1);
            let h = b.intconst(5);
            let y = b.ldid(i_st, DataType::I4, 1);
            b.array(base, vec![h], vec![y], 8, 1)
        });
        lower_procedure(&mut proc, &fx.symbols, &fx.types);
        let arr = find_array(&proc.tree);
        let idx = proc.tree.node(arr).array_index_kid(0);
        let idx_node = proc.tree.node(idx);
        assert_eq!(idx_node.operator, Opr::Sub);
        assert_eq!(proc.tree.node(idx_node.kids[0]).operator, Opr::Ldid);
        assert_eq!(proc.tree.eval_const(idx_node.kids[1]), Some(1));
    }

    #[test]
    fn source_dim_mapping() {
        assert_eq!(source_dim(Lang::C, 4, 0), 0);
        assert_eq!(source_dim(Lang::C, 4, 3), 3);
        assert_eq!(source_dim(Lang::Fortran, 4, 0), 3);
        assert_eq!(source_dim(Lang::Fortran, 4, 3), 0);
    }
}
