//! `whirl2c` / `whirl2f`: translating WHIRL back to source.
//!
//! "Very high and high level WHIRL can be translated back to C and Fortran
//! source codes via WHIRL2c, WHIRL2f and WHIRL2f90 tools. However, this
//! could incur minor loss of semantics." Our emitters serve the same
//! purposes the originals did for Dragon: debugging the lowering, and
//! letting the tool display a readable rendition of each procedure.

use crate::node::{Opr, WhirlTree, WnId};
use crate::program::{Lang, Procedure, Program};

/// Output dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// `whirl2c`.
    C,
    /// `whirl2f`.
    Fortran,
}

/// Emits one procedure in the requested dialect.
pub fn emit_procedure(program: &Program, proc: &Procedure, dialect: Dialect) -> String {
    let mut e = Emitter { program, tree: &proc.tree, dialect, out: String::new(), indent: 0 };
    let Some(root) = proc.tree.root() else {
        return String::new();
    };
    let name = program.name_of(proc.name);
    let formals: Vec<String> = proc
        .formals
        .iter()
        .map(|&st| program.name_of(program.symbols.get(st).name).to_string())
        .collect();
    match dialect {
        Dialect::C => {
            e.line(&format!("void {name}({}) {{", formals.join(", ")));
        }
        Dialect::Fortran => {
            e.line(&format!("subroutine {name}({})", formals.join(", ")));
        }
    }
    e.indent += 1;
    if let Some(&body) = proc.tree.node(root).kids.last() {
        e.stmt_block(body);
    }
    e.indent -= 1;
    match dialect {
        Dialect::C => e.line("}"),
        Dialect::Fortran => e.line(&format!("end subroutine {name}")),
    }
    e.out
}

/// Emits the whole program (procedures in order).
pub fn emit_program(program: &Program, dialect: Dialect) -> String {
    let mut out = String::new();
    for proc in program.procedures.iter() {
        out.push_str(&emit_procedure(program, proc, dialect));
        out.push('\n');
    }
    out
}

struct Emitter<'a> {
    program: &'a Program,
    tree: &'a WhirlTree,
    dialect: Dialect,
    out: String,
    indent: usize,
}

impl<'a> Emitter<'a> {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn sym_name(&self, id: WnId) -> String {
        match self.tree.node(id).st_idx {
            Some(st) => self
                .program
                .name_of(self.program.symbols.get(st).name)
                .to_string(),
            None => "<anon>".into(),
        }
    }

    fn stmt_block(&mut self, block: WnId) {
        debug_assert_eq!(self.tree.node(block).operator, Opr::Block);
        let kids = self.tree.node(block).kids.clone();
        for k in kids {
            self.stmt(k);
        }
    }

    fn stmt(&mut self, id: WnId) {
        let node = self.tree.node(id);
        match node.operator {
            Opr::Stid => {
                let name = self.sym_name(id);
                let rhs = self.expr(node.kids[0]);
                match self.dialect {
                    Dialect::C => self.line(&format!("{name} = {rhs};")),
                    Dialect::Fortran => self.line(&format!("{name} = {rhs}")),
                }
            }
            Opr::Istore => {
                let lhs = self.expr(node.kids[1]);
                let rhs = self.expr(node.kids[0]);
                match self.dialect {
                    Dialect::C => self.line(&format!("{lhs} = {rhs};")),
                    Dialect::Fortran => self.line(&format!("{lhs} = {rhs}")),
                }
            }
            Opr::Call => {
                let callee = self.sym_name(id);
                let args: Vec<String> =
                    node.kids.iter().map(|&k| self.expr(k)).collect();
                match self.dialect {
                    Dialect::C => self.line(&format!("{callee}({});", args.join(", "))),
                    Dialect::Fortran => {
                        self.line(&format!("call {callee}({})", args.join(", ")))
                    }
                }
            }
            Opr::DoLoop => {
                let iv = self.sym_name(id);
                let init = self.expr(self.tree.node(node.kids[0]).kids[0]);
                // The end test is `iv <= end` (or >=); kid 1 of the test is
                // the bound expression.
                let end = self.expr(self.tree.node(node.kids[1]).kids[1]);
                let step = node.const_val;
                let body = node.kids[3];
                match self.dialect {
                    Dialect::C => {
                        let cmp = if step >= 0 { "<=" } else { ">=" };
                        self.line(&format!(
                            "for ({iv} = {init}; {iv} {cmp} {end}; {iv} += {step}) {{"
                        ));
                        self.indent += 1;
                        self.stmt_block(body);
                        self.indent -= 1;
                        self.line("}");
                    }
                    Dialect::Fortran => {
                        if step == 1 {
                            self.line(&format!("do {iv} = {init}, {end}"));
                        } else {
                            self.line(&format!("do {iv} = {init}, {end}, {step}"));
                        }
                        self.indent += 1;
                        self.stmt_block(body);
                        self.indent -= 1;
                        self.line("end do");
                    }
                }
            }
            Opr::If => {
                let cond = self.expr(node.kids[0]);
                let (t, f) = (node.kids[1], node.kids[2]);
                match self.dialect {
                    Dialect::C => {
                        self.line(&format!("if ({cond}) {{"));
                        self.indent += 1;
                        self.stmt_block(t);
                        self.indent -= 1;
                        if !self.tree.node(f).kids.is_empty() {
                            self.line("} else {");
                            self.indent += 1;
                            self.stmt_block(f);
                            self.indent -= 1;
                        }
                        self.line("}");
                    }
                    Dialect::Fortran => {
                        self.line(&format!("if ({cond}) then"));
                        self.indent += 1;
                        self.stmt_block(t);
                        self.indent -= 1;
                        if !self.tree.node(f).kids.is_empty() {
                            self.line("else");
                            self.indent += 1;
                            self.stmt_block(f);
                            self.indent -= 1;
                        }
                        self.line("end if");
                    }
                }
            }
            Opr::Return => {
                if let Some(&v) = node.kids.first() {
                    let v = self.expr(v);
                    match self.dialect {
                        Dialect::C => self.line(&format!("return {v};")),
                        Dialect::Fortran => self.line("return"),
                    }
                } else {
                    match self.dialect {
                        Dialect::C => self.line("return;"),
                        Dialect::Fortran => self.line("return"),
                    }
                }
            }
            _ => self.line(&format!("/* unhandled stmt {:?} */", node.operator)),
        }
    }

    fn expr(&self, id: WnId) -> String {
        let node = self.tree.node(id);
        match node.operator {
            Opr::Intconst => node.const_val.to_string(),
            Opr::Fconst => format!("{}", f64::from_bits(node.const_val as u64)),
            Opr::Ldid | Opr::Lda | Opr::Idname => self.sym_name(id),
            Opr::Parm => self.expr(node.kids[0]),
            Opr::Iload => self.expr(node.kids[0]),
            Opr::Array => self.array_ref(id),
            Opr::RemoteArray => {
                format!("{}[{}]", self.expr(node.kids[0]), self.expr(node.kids[1]))
            }
            Opr::Add => self.binary(node.kids[0], "+", node.kids[1]),
            Opr::Sub => self.binary(node.kids[0], "-", node.kids[1]),
            Opr::Mpy => self.binary(node.kids[0], "*", node.kids[1]),
            Opr::Div => self.binary(node.kids[0], "/", node.kids[1]),
            Opr::Neg => format!("(-{})", self.expr(node.kids[0])),
            Opr::Le => self.binary(node.kids[0], "<=", node.kids[1]),
            Opr::Lt => self.binary(node.kids[0], "<", node.kids[1]),
            Opr::Ge => self.binary(node.kids[0], ">=", node.kids[1]),
            Opr::Gt => self.binary(node.kids[0], ">", node.kids[1]),
            Opr::Eq => {
                let op = if self.dialect == Dialect::Fortran { ".eq." } else { "==" };
                self.binary(node.kids[0], op, node.kids[1])
            }
            Opr::Ne => {
                let op = if self.dialect == Dialect::Fortran { ".ne." } else { "!=" };
                self.binary(node.kids[0], op, node.kids[1])
            }
            Opr::Land => {
                let op = if self.dialect == Dialect::Fortran { ".and." } else { "&&" };
                self.binary(node.kids[0], op, node.kids[1])
            }
            Opr::Lior => {
                let op = if self.dialect == Dialect::Fortran { ".or." } else { "||" };
                self.binary(node.kids[0], op, node.kids[1])
            }
            other => format!("/* expr {other:?} */"),
        }
    }

    fn binary(&self, a: WnId, op: &str, b: WnId) -> String {
        format!("({} {op} {})", self.expr(a), self.expr(b))
    }

    fn array_ref(&self, id: WnId) -> String {
        let node = self.tree.node(id);
        let n = node.num_dim();
        let base = self.expr(node.array_base_kid());
        let idx: Vec<String> =
            (0..n).map(|d| self.expr(node.array_index_kid(d))).collect();
        match self.dialect {
            Dialect::C => {
                let mut s = base;
                for i in idx {
                    s.push('[');
                    s.push_str(&i);
                    s.push(']');
                }
                s
            }
            Dialect::Fortran => format!("{base}({})", idx.join(", ")),
        }
    }
}

/// Chooses the natural dialect for a procedure's source language.
pub fn natural_dialect(lang: Lang) -> Dialect {
    match lang {
        Lang::C => Dialect::C,
        Lang::Fortran => Dialect::Fortran,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::program::{Lang, Level, Procedure};
    use crate::symtab::{DataType, DimBound, StClass};

    /// Program with `p(m)`: `do i = 1, m { a(i) = 0.0 }` plus `call q(a)`.
    fn sample(lang: Lang) -> Program {
        let mut p = Program::new();
        let aty = p.types.array(DataType::F8, vec![DimBound::Const { lb: 1, ub: 5 }]);
        let ity = p.types.scalar(DataType::I4);
        let vty = p.types.scalar(DataType::Void);
        let a = p.symbols.add(p.interner.intern("a"), aty, StClass::Global);
        let i = p.symbols.add(p.interner.intern("i"), ity, StClass::Local);
        let m = p.symbols.add(p.interner.intern("m"), ity, StClass::Formal);
        let pp = p.symbols.add(p.interner.intern("p"), vty, StClass::Proc);
        let q = p.symbols.add(p.interner.intern("q"), vty, StClass::Proc);

        let mut b = TreeBuilder::new();
        let inner = b.block();
        let base = b.lda(a, 2);
        let h = b.intconst(5);
        let y = b.ldid(i, DataType::I4, 2);
        let arr = b.array(base, vec![h], vec![y], 8, 2);
        let zero = b.fconst(0.0);
        let st = b.istore(arr, zero, 2);
        b.append(inner, st);
        let start = b.intconst(1);
        let end = b.ldid(m, DataType::I4, 1);
        let lp = b.do_loop(i, start, end, 1, inner, 1);
        let body = b.block();
        b.append(body, lp);
        let base2 = b.lda(a, 4);
        let parm = b.parm(base2);
        let call = b.call(q, vec![parm], 4);
        b.append(body, call);
        let formal = b.idname(m);
        b.func_entry(pp, vec![formal], body);

        let name = p.interner.intern("p");
        let file = p.interner.intern("t.f");
        p.add_procedure(Procedure {
            name,
            st: pp,
            file,
            linenum: 1,
            lang,
            formals: vec![m],
            tree: b.finish(),
            level: Level::VeryHigh,
        });
        p
    }

    #[test]
    fn fortran_emission_shape() {
        let p = sample(Lang::Fortran);
        let out = emit_procedure(&p, p.procedure(crate::program::ProcId(0)), Dialect::Fortran);
        assert!(out.contains("subroutine p(m)"), "{out}");
        assert!(out.contains("do i = 1, m"), "{out}");
        assert!(out.contains("a(i) = 0"), "{out}");
        assert!(out.contains("call q(a)"), "{out}");
        assert!(out.contains("end subroutine p"), "{out}");
    }

    #[test]
    fn c_emission_shape() {
        let p = sample(Lang::C);
        let out = emit_procedure(&p, p.procedure(crate::program::ProcId(0)), Dialect::C);
        assert!(out.contains("void p(m)"), "{out}");
        assert!(out.contains("for (i = 1; i <= m; i += 1) {"), "{out}");
        assert!(out.contains("a[i] = 0"), "{out}");
        assert!(out.contains("q(a);"), "{out}");
    }

    #[test]
    fn emit_program_concatenates() {
        let p = sample(Lang::Fortran);
        let out = emit_program(&p, Dialect::Fortran);
        assert!(out.contains("subroutine p"));
    }

    #[test]
    fn natural_dialects() {
        assert_eq!(natural_dialect(Lang::C), Dialect::C);
        assert_eq!(natural_dialect(Lang::Fortran), Dialect::Fortran);
    }
}
