//! Convenience constructors for WHIRL trees.
//!
//! The frontend's lowering and many tests build trees node-by-node; this
//! builder wraps the raw arena with typed helpers that fill in the
//! operator-specific fields (Table I) correctly — in particular the `ARRAY`
//! kid layout `[base, h₁..hₙ, y₁..yₙ]` and the `elem_size` convention.

use crate::node::{Opr, WhirlTree, WnId};
use crate::symtab::{DataType, StIdx};

/// A thin mutable wrapper over [`WhirlTree`] with typed node constructors.
///
/// ```
/// use whirl::builder::TreeBuilder;
///
/// // Build the ARRAY node for a[7] over `int a[20]` and compute its
/// // address with the paper's formula.
/// let mut b = TreeBuilder::new();
/// let base = b.intconst(0); // stand-in for an LDA in this snippet
/// let dim = b.intconst(20);
/// let idx = b.intconst(7);
/// let arr = b.array(base, vec![dim], vec![idx], 4, 1);
/// let tree = b.finish();
/// assert_eq!(tree.node(arr).num_dim(), 1);
/// let addr = tree.array_address(arr, 0x1000, &|id| tree.eval_const(id));
/// assert_eq!(addr, Some(0x1000 + 7 * 4));
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    tree: WhirlTree,
}

impl TreeBuilder {
    /// Starts an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes, returning the tree.
    pub fn finish(self) -> WhirlTree {
        self.tree
    }

    /// Read access to the tree under construction.
    pub fn tree(&self) -> &WhirlTree {
        &self.tree
    }

    /// Mutable access for post-construction tweaks.
    pub fn tree_mut(&mut self) -> &mut WhirlTree {
        &mut self.tree
    }

    /// Integer constant.
    pub fn intconst(&mut self, v: i64) -> WnId {
        let id = self.tree.alloc(Opr::Intconst);
        let n = self.tree.node_mut(id);
        n.const_val = v;
        n.res = DataType::I8;
        id
    }

    /// Floating constant (bits stowed in `const_val`).
    pub fn fconst(&mut self, v: f64) -> WnId {
        let id = self.tree.alloc(Opr::Fconst);
        let n = self.tree.node_mut(id);
        n.const_val = v.to_bits() as i64;
        n.res = DataType::F8;
        id
    }

    /// Scalar load.
    pub fn ldid(&mut self, st: StIdx, res: DataType, line: u32) -> WnId {
        let id = self.tree.alloc(Opr::Ldid);
        let n = self.tree.node_mut(id);
        n.st_idx = Some(st);
        n.res = res;
        n.linenum = line;
        id
    }

    /// Scalar store `st := value`.
    pub fn stid(&mut self, st: StIdx, value: WnId, line: u32) -> WnId {
        let id = self.tree.alloc(Opr::Stid);
        let n = self.tree.node_mut(id);
        n.st_idx = Some(st);
        n.kids = vec![value];
        n.linenum = line;
        id
    }

    /// Address of a symbol (array base).
    pub fn lda(&mut self, st: StIdx, line: u32) -> WnId {
        let id = self.tree.alloc(Opr::Lda);
        let n = self.tree.node_mut(id);
        n.st_idx = Some(st);
        n.linenum = line;
        id
    }

    /// Binary arithmetic/comparison node.
    pub fn binary(&mut self, op: Opr, a: WnId, b: WnId) -> WnId {
        let id = self.tree.alloc(op);
        let n = self.tree.node_mut(id);
        n.kids = vec![a, b];
        n.res = DataType::I8;
        id
    }

    /// Unary negation.
    pub fn neg(&mut self, a: WnId) -> WnId {
        let id = self.tree.alloc(Opr::Neg);
        let n = self.tree.node_mut(id);
        n.kids = vec![a];
        n.res = DataType::I8;
        id
    }

    /// The n-ary `ARRAY` operator: `base` kid 0, `dims` kids `1..=n`,
    /// `indices` kids `n+1..=2n`. `elem_size` follows the negative-marks-
    /// non-contiguous convention.
    pub fn array(
        &mut self,
        base: WnId,
        dims: Vec<WnId>,
        indices: Vec<WnId>,
        elem_size: i64,
        line: u32,
    ) -> WnId {
        assert_eq!(dims.len(), indices.len(), "ARRAY needs one index per dimension");
        let id = self.tree.alloc(Opr::Array);
        let n = self.tree.node_mut(id);
        n.kids = Vec::with_capacity(1 + 2 * dims.len());
        n.kids.push(base);
        n.kids.extend(dims);
        n.kids.extend(indices);
        n.elem_size = elem_size;
        n.linenum = line;
        id
    }

    /// Indirect load through an address (array element read).
    pub fn iload(&mut self, addr: WnId, res: DataType, line: u32) -> WnId {
        let id = self.tree.alloc(Opr::Iload);
        let n = self.tree.node_mut(id);
        n.kids = vec![addr];
        n.res = res;
        n.linenum = line;
        id
    }

    /// Indirect store `*(addr) := value` (array element write).
    pub fn istore(&mut self, addr: WnId, value: WnId, line: u32) -> WnId {
        let id = self.tree.alloc(Opr::Istore);
        let n = self.tree.node_mut(id);
        n.kids = vec![value, addr];
        n.linenum = line;
        id
    }

    /// Call argument.
    pub fn parm(&mut self, value: WnId) -> WnId {
        let id = self.tree.alloc(Opr::Parm);
        self.tree.node_mut(id).kids = vec![value];
        id
    }

    /// Direct call to `callee` with `Parm` kids.
    pub fn call(&mut self, callee: StIdx, parms: Vec<WnId>, line: u32) -> WnId {
        let id = self.tree.alloc(Opr::Call);
        let n = self.tree.node_mut(id);
        n.st_idx = Some(callee);
        n.kids = parms;
        n.linenum = line;
        id
    }

    /// Statement block.
    pub fn block(&mut self) -> WnId {
        self.tree.alloc(Opr::Block)
    }

    /// Appends a statement to a block (maintains prev/next links).
    pub fn append(&mut self, block: WnId, stmt: WnId) {
        self.tree.append_to_block(block, stmt);
    }

    /// Counted loop over induction variable `ivar`:
    /// kids `[init (Stid ivar := start), end-test (cmp), incr (Stid), body]`.
    /// `step` is stored in `const_val` for direct extraction.
    pub fn do_loop(
        &mut self,
        ivar: StIdx,
        start: WnId,
        end: WnId,
        step: i64,
        body: WnId,
        line: u32,
    ) -> WnId {
        let init = self.stid(ivar, start, line);
        let iv_load = self.ldid(ivar, DataType::I8, line);
        let test = self.binary(if step >= 0 { Opr::Le } else { Opr::Ge }, iv_load, end);
        let iv_load2 = self.ldid(ivar, DataType::I8, line);
        let step_c = self.intconst(step);
        let inc_expr = self.binary(Opr::Add, iv_load2, step_c);
        let incr = self.stid(ivar, inc_expr, line);
        let id = self.tree.alloc(Opr::DoLoop);
        let n = self.tree.node_mut(id);
        n.st_idx = Some(ivar);
        n.kids = vec![init, test, incr, body];
        n.const_val = step;
        n.linenum = line;
        id
    }

    /// Conditional with optional else block.
    pub fn if_stmt(&mut self, cond: WnId, then_blk: WnId, else_blk: WnId, line: u32) -> WnId {
        let id = self.tree.alloc(Opr::If);
        let n = self.tree.node_mut(id);
        n.kids = vec![cond, then_blk, else_blk];
        n.linenum = line;
        id
    }

    /// Return statement, optionally with a value.
    pub fn ret(&mut self, value: Option<WnId>, line: u32) -> WnId {
        let id = self.tree.alloc(Opr::Return);
        let n = self.tree.node_mut(id);
        n.kids = value.into_iter().collect();
        n.linenum = line;
        id
    }

    /// Formal-parameter slot.
    pub fn idname(&mut self, st: StIdx) -> WnId {
        let id = self.tree.alloc(Opr::Idname);
        self.tree.node_mut(id).st_idx = Some(st);
        id
    }

    /// Procedure entry: formals then body; sets the tree root.
    pub fn func_entry(&mut self, proc_st: StIdx, formals: Vec<WnId>, body: WnId) -> WnId {
        let id = self.tree.alloc(Opr::FuncEntry);
        let n = self.tree.node_mut(id);
        n.st_idx = Some(proc_st);
        n.kids = formals;
        n.kids.push(body);
        self.tree.set_root(id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symtab::{DataType, StClass, SymbolTable, TypeTable};
    use support::Interner;

    fn mini_symbols() -> (SymbolTable, StIdx, StIdx) {
        let mut it = Interner::new();
        let mut types = TypeTable::new();
        let int = types.scalar(DataType::I4);
        let mut st = SymbolTable::new();
        let i = st.add(it.intern("i"), int, StClass::Local);
        let p = st.add(it.intern("p"), int, StClass::Proc);
        (st, i, p)
    }

    #[test]
    fn do_loop_layout() {
        let (_st, i, _) = mini_symbols();
        let mut b = TreeBuilder::new();
        let start = b.intconst(1);
        let end = b.intconst(10);
        let body = b.block();
        let lp = b.do_loop(i, start, end, 2, body, 7);
        let tree = b.finish();
        let n = tree.node(lp);
        assert_eq!(n.operator, Opr::DoLoop);
        assert_eq!(n.kid_count(), 4);
        assert_eq!(n.const_val, 2);
        assert_eq!(n.st_idx, Some(i));
        assert_eq!(tree.node(n.kids[0]).operator, Opr::Stid);
        assert_eq!(tree.node(n.kids[1]).operator, Opr::Le);
        assert_eq!(tree.node(n.kids[3]).operator, Opr::Block);
    }

    #[test]
    fn negative_step_uses_ge_test() {
        let (_st, i, _) = mini_symbols();
        let mut b = TreeBuilder::new();
        let start = b.intconst(10);
        let end = b.intconst(1);
        let body = b.block();
        let lp = b.do_loop(i, start, end, -1, body, 1);
        let tree = b.finish();
        assert_eq!(tree.node(tree.node(lp).kids[1]).operator, Opr::Ge);
    }

    #[test]
    fn array_kid_layout_via_builder() {
        let (_st, i, _) = mini_symbols();
        let mut b = TreeBuilder::new();
        let base = b.lda(i, 3);
        let h1 = b.intconst(20);
        let y1 = b.intconst(7);
        let arr = b.array(base, vec![h1], vec![y1], 4, 3);
        let tree = b.finish();
        let n = tree.node(arr);
        assert_eq!(n.num_dim(), 1);
        assert_eq!(n.elem_size, 4);
        assert_eq!(n.linenum, 3);
    }

    #[test]
    #[should_panic(expected = "one index per dimension")]
    fn array_dim_index_mismatch_panics() {
        let (_st, i, _) = mini_symbols();
        let mut b = TreeBuilder::new();
        let base = b.lda(i, 1);
        let h1 = b.intconst(20);
        b.array(base, vec![h1], vec![], 4, 1);
    }

    #[test]
    fn func_entry_sets_root() {
        let (_st, i, p) = mini_symbols();
        let mut b = TreeBuilder::new();
        let f = b.idname(i);
        let body = b.block();
        let fe = b.func_entry(p, vec![f], body);
        let tree = b.finish();
        assert_eq!(tree.root(), Some(fe));
        let n = tree.node(fe);
        assert_eq!(n.kid_count(), 2);
        assert_eq!(tree.node(n.kids[0]).operator, Opr::Idname);
        assert_eq!(tree.node(n.kids[1]).operator, Opr::Block);
    }

    #[test]
    fn istore_kid_order_value_then_address() {
        let (_st, i, _) = mini_symbols();
        let mut b = TreeBuilder::new();
        let base = b.lda(i, 1);
        let h = b.intconst(20);
        let y = b.intconst(0);
        let arr = b.array(base, vec![h], vec![y], 4, 1);
        let val = b.intconst(42);
        let st = b.istore(arr, val, 1);
        let tree = b.finish();
        let n = tree.node(st);
        assert_eq!(n.kids[0], val);
        assert_eq!(n.kids[1], arr);
    }

    #[test]
    fn fconst_round_trips_bits() {
        let mut b = TreeBuilder::new();
        let f = b.fconst(2.5);
        let tree = b.finish();
        assert_eq!(f64::from_bits(tree.node(f).const_val as u64), 2.5);
    }
}
