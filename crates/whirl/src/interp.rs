//! A WHIRL interpreter — the substrate for the paper's future-work item:
//! "enhancing our tool and OpenUH to provide dynamic array region
//! information, in order to better understand the actual array access
//! patterns".
//!
//! The interpreter executes an H-level [`Program`] directly over the tree:
//! scalars live in per-call frames, arrays in a global store keyed by their
//! *root* symbol (formals alias the actual array passed at the call site,
//! exactly like Fortran pass-by-reference). Every `ILOAD`/`ISTORE` through
//! an `ARRAY` node reports the accessed element (zero-based, row-major H
//! order) to an [`AccessSink`], which the dynamic-region analysis folds
//! into per-(procedure, array, mode) summaries.

use crate::node::{Opr, WnId};
use crate::program::{ProcId, Program};
use crate::symtab::{StIdx, TyKind};
use std::collections::HashMap;
use support::{Error, Result};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
}

impl Value {
    /// Integer view (floats truncate).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Float(f) => f as i64,
        }
    }

    /// Float view.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Int(i) => i as f64,
            Value::Float(f) => f,
        }
    }

    /// Truthiness (comparisons yield Int 0/1).
    pub fn is_true(self) -> bool {
        match self {
            Value::Int(i) => i != 0,
            Value::Float(f) => f != 0.0,
        }
    }
}

/// How an element was touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DynMode {
    /// Element read.
    Read,
    /// Element written.
    Write,
}

/// Receiver for dynamic access events.
pub trait AccessSink {
    /// One element access: executing `proc` touched `array[indices]`
    /// (zero-based, row-major H order) at source `line`.
    fn access(&mut self, proc: ProcId, array: StIdx, mode: DynMode, indices: &[i64], line: u32);
}

/// A sink that ignores everything (pure execution).
pub struct NullSink;

impl AccessSink for NullSink {
    fn access(&mut self, _: ProcId, _: StIdx, _: DynMode, _: &[i64], _: u32) {}
}

/// One array's storage.
#[derive(Debug)]
struct ArrayStore {
    dims: Vec<i64>,
    data: Vec<f64>,
}

/// Interpreter limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum executed statements before aborting (runaway guard).
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { fuel: 200_000_000, max_depth: 256 }
    }
}

/// The interpreter.
pub struct Interp<'p, S: AccessSink> {
    program: &'p Program,
    arrays: HashMap<StIdx, ArrayStore>,
    sink: S,
    limits: Limits,
    fuel_used: u64,
    /// Statements executed (for reporting).
    pub executed: u64,
}

/// A call frame: scalar values plus the formal→root-array aliasing map.
struct Frame {
    proc: ProcId,
    scalars: HashMap<StIdx, Value>,
    array_alias: HashMap<StIdx, StIdx>,
}

enum Flow {
    Normal,
    Return,
}

impl<'p, S: AccessSink> Interp<'p, S> {
    /// Creates an interpreter; array storage is allocated lazily (zeroed).
    pub fn new(program: &'p Program, sink: S, limits: Limits) -> Self {
        Interp { program, arrays: HashMap::new(), sink, limits, fuel_used: 0, executed: 0 }
    }

    /// Runs a procedure by name with no arguments (the usual entry).
    pub fn run(&mut self, entry: &str) -> Result<()> {
        let id = self
            .program
            .find_procedure(entry)
            .ok_or_else(|| Error::Analysis(format!("no procedure `{entry}`")))?;
        self.call(id, Vec::new(), 0)
    }

    /// Consumes the interpreter, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Reads one element of an array (testing hook), zero-based H order.
    pub fn peek(&self, array: StIdx, indices: &[i64]) -> Option<f64> {
        let store = self.arrays.get(&array)?;
        let flat = flat_index(&store.dims, indices)?;
        store.data.get(flat).copied()
    }

    fn burn(&mut self, n: u64) -> Result<()> {
        self.fuel_used += n;
        if self.fuel_used > self.limits.fuel {
            return Err(Error::Analysis("interpreter fuel exhausted".into()));
        }
        Ok(())
    }

    fn ensure_array(&mut self, root: StIdx) -> Result<()> {
        if self.arrays.contains_key(&root) {
            return Ok(());
        }
        let entry = self.program.symbols.get(root);
        let TyKind::Array { dims, .. } = &self.program.types.get(entry.ty).kind else {
            return Err(Error::Analysis(format!(
                "`{}` is not an array",
                self.program.name_of(entry.name)
            )));
        };
        let extents: Vec<i64> = dims.iter().map(|d| d.extent().max(1)).collect();
        // Storage shape follows the *source* dims; the H-level ARRAY node
        // carries its own (possibly reversed) dim kids, so flat indexing is
        // done against the node's dims. Keep total size only.
        let total: i64 = extents.iter().product();
        self.arrays.insert(
            root,
            ArrayStore { dims: extents, data: vec![0.0; total as usize] },
        );
        Ok(())
    }

    /// Resolves an array symbol through the frame's aliasing to its root.
    fn root_of(&self, frame: &Frame, st: StIdx) -> StIdx {
        let mut cur = st;
        // Aliases never chain within one frame (the map stores roots), but a
        // formal may alias the caller's formal; resolution happens at call
        // time, so one hop suffices.
        if let Some(&root) = frame.array_alias.get(&cur) {
            cur = root;
        }
        cur
    }

    fn call(&mut self, proc_id: ProcId, args: Vec<CallArg>, depth: usize) -> Result<()> {
        if depth > self.limits.max_depth {
            return Err(Error::Analysis("call depth exceeded".into()));
        }
        let proc = self.program.procedure(proc_id);
        let mut frame = Frame {
            proc: proc_id,
            scalars: HashMap::new(),
            array_alias: HashMap::new(),
        };
        for (pos, &formal) in proc.formals.iter().enumerate() {
            match args.get(pos) {
                Some(CallArg::Array(root)) => {
                    frame.array_alias.insert(formal, *root);
                }
                Some(CallArg::Scalar(v)) => {
                    frame.scalars.insert(formal, *v);
                }
                Some(CallArg::ScalarRef(cell)) => {
                    frame.scalars.insert(formal, cell.get());
                }
                None => {}
            }
        }
        let Some(root) = proc.tree.root() else { return Ok(()) };
        if let Some(&body) = proc.tree.node(root).kids.last() {
            self.exec_block(&mut frame, body, depth)?;
        }
        // Out-parameters: scalar formals are pass-by-reference in Fortran;
        // we approximate by copying back at return. The caller handles it.
        self.writeback(proc_id, &frame, &args)?;
        Ok(())
    }

    /// Copies scalar formal values back to caller variables (Fortran
    /// by-reference semantics for scalars like `call elapsed_time(t)`).
    fn writeback(&mut self, proc_id: ProcId, frame: &Frame, args: &[CallArg]) -> Result<()> {
        let proc = self.program.procedure(proc_id);
        for (pos, &formal) in proc.formals.iter().enumerate() {
            if let Some(CallArg::ScalarRef(cell)) = args.get(pos) {
                if let Some(&v) = frame.scalars.get(&formal) {
                    cell.set(v);
                }
            }
        }
        Ok(())
    }

    fn exec_block(&mut self, frame: &mut Frame, block: WnId, depth: usize) -> Result<Flow> {
        let kids = self.program.procedure(frame.proc).tree.node(block).kids.clone();
        for stmt in kids {
            match self.exec_stmt(frame, stmt, depth)? {
                Flow::Return => return Ok(Flow::Return),
                Flow::Normal => {}
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, frame: &mut Frame, stmt: WnId, depth: usize) -> Result<Flow> {
        self.burn(1)?;
        self.executed += 1;
        let tree = &self.program.procedure(frame.proc).tree;
        let node = tree.node(stmt);
        let op = node.operator;
        match op {
            Opr::Stid => {
                let st = require_st(node.st_idx, "STID")?;
                let kid = node.kids[0];
                let v = self.eval(frame, kid)?;
                frame.scalars.insert(st, v);
                Ok(Flow::Normal)
            }
            Opr::Istore => {
                let (value_kid, addr_kid, line) = (node.kids[0], node.kids[1], node.linenum);
                let v = self.eval(frame, value_kid)?;
                self.store_element(frame, addr_kid, v, line)?;
                Ok(Flow::Normal)
            }
            Opr::Call => {
                let callee_st = require_st(node.st_idx, "CALL")?;
                let parms = node.kids.clone();
                let callee_name = self.program.symbols.get(callee_st).name;
                let Some(callee) = self.program.proc_by_symbol(callee_name) else {
                    return Ok(Flow::Normal); // external call: no-op
                };
                let mut args = Vec::with_capacity(parms.len());
                // Scalar-variable actuals are passed by reference (Fortran):
                // collect their StIdx so writeback can update them.
                let mut ref_cells: Vec<(usize, StIdx)> = Vec::new();
                for (pos, &parm) in parms.iter().enumerate() {
                    let tree = &self.program.procedure(frame.proc).tree;
                    let v = tree.node(parm).kids[0];
                    let vn = tree.node(v);
                    if vn.operator == Opr::Lda {
                        let st = require_st(vn.st_idx, "LDA")?;
                        let entry = self.program.symbols.get(st);
                        if matches!(self.program.types.get(entry.ty).kind, TyKind::Array { .. })
                        {
                            let root = self.root_of(frame, st);
                            self.ensure_array(root)?;
                            args.push(CallArg::Array(root));
                            continue;
                        }
                    }
                    if vn.operator == Opr::Ldid {
                        let st = require_st(vn.st_idx, "LDID")?;
                        let cell = ScalarCell::new(
                            frame.scalars.get(&st).copied().unwrap_or(Value::Int(0)),
                        );
                        ref_cells.push((pos, st));
                        args.push(CallArg::ScalarRef(cell));
                        continue;
                    }
                    let v = self.eval(frame, v)?;
                    args.push(CallArg::Scalar(v));
                }
                self.call(callee, args_clone_for_call(&args), depth + 1)?;
                // The callee wrote through the cells; copy back.
                for (pos, st) in ref_cells {
                    if let Some(CallArg::ScalarRef(cell)) = args.get(pos) {
                        frame.scalars.insert(st, cell.get());
                    }
                }
                Ok(Flow::Normal)
            }
            Opr::DoLoop => {
                let ivar = require_st(node.st_idx, "DO_LOOP")?;
                let init = node.kids[0];
                let test = node.kids[1];
                let incr = node.kids[2];
                let body = node.kids[3];
                // init is a Stid.
                self.exec_stmt(frame, init, depth)?;
                loop {
                    self.burn(1)?;
                    let cond = self.eval(frame, test)?;
                    if !cond.is_true() {
                        break;
                    }
                    if let Flow::Return = self.exec_block(frame, body, depth)? {
                        return Ok(Flow::Return);
                    }
                    self.exec_stmt(frame, incr, depth)?;
                    let _ = ivar;
                }
                Ok(Flow::Normal)
            }
            Opr::If => {
                let cond = self.eval(frame, node.kids[0])?;
                let branch = if cond.is_true() { node.kids[1] } else { node.kids[2] };
                self.exec_block(frame, branch, depth)
            }
            Opr::Return => Ok(Flow::Return),
            other => Err(Error::Analysis(format!("cannot execute {other:?}"))),
        }
    }

    fn eval(&mut self, frame: &mut Frame, id: WnId) -> Result<Value> {
        self.burn(1)?;
        let tree = &self.program.procedure(frame.proc).tree;
        let node = tree.node(id);
        let kids = node.kids.clone();
        let op = node.operator;
        let const_val = node.const_val;
        let st_idx = node.st_idx;
        let line = node.linenum;
        match op {
            Opr::Intconst => Ok(Value::Int(const_val)),
            Opr::Fconst => Ok(Value::Float(f64::from_bits(const_val as u64))),
            Opr::Ldid => {
                let st = require_st(st_idx, "LDID")?;
                Ok(frame.scalars.get(&st).copied().unwrap_or(Value::Int(0)))
            }
            Opr::Iload => self.load_element(frame, kids[0], line),
            Opr::Add | Opr::Sub | Opr::Mpy | Opr::Div => {
                let a = self.eval(frame, kids[0])?;
                let b = self.eval(frame, kids[1])?;
                Ok(arith(op, a, b)?)
            }
            Opr::Neg => {
                let a = self.eval(frame, kids[0])?;
                Ok(match a {
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                })
            }
            Opr::Le | Opr::Lt | Opr::Ge | Opr::Gt | Opr::Eq | Opr::Ne => {
                let a = self.eval(frame, kids[0])?.as_float();
                let b = self.eval(frame, kids[1])?.as_float();
                let r = match op {
                    Opr::Le => a <= b,
                    Opr::Lt => a < b,
                    Opr::Ge => a >= b,
                    Opr::Gt => a > b,
                    Opr::Eq => a == b,
                    _ => a != b,
                };
                Ok(Value::Int(r as i64))
            }
            Opr::Land => {
                let a = self.eval(frame, kids[0])?;
                if !a.is_true() {
                    return Ok(Value::Int(0));
                }
                let b = self.eval(frame, kids[1])?;
                Ok(Value::Int(b.is_true() as i64))
            }
            Opr::Lior => {
                let a = self.eval(frame, kids[0])?;
                if a.is_true() {
                    return Ok(Value::Int(1));
                }
                let b = self.eval(frame, kids[1])?;
                Ok(Value::Int(b.is_true() as i64))
            }
            Opr::Lda => {
                // Address-of in value position (string-ish args): opaque 0.
                Ok(Value::Int(0))
            }
            other => Err(Error::Analysis(format!("cannot evaluate {other:?}"))),
        }
    }

    /// Resolves an `ARRAY` node to `(local symbol, root array, H-order
    /// indices, node dims)`. The *local* symbol (the formal, for parameter
    /// arrays) is what access events are attributed to — matching the
    /// static per-procedure summaries — while storage lives under the root.
    fn resolve_element(
        &mut self,
        frame: &mut Frame,
        array_wn: WnId,
    ) -> Result<(StIdx, StIdx, Vec<i64>, Vec<i64>)> {
        let tree = &self.program.procedure(frame.proc).tree;
        let mut array_wn = array_wn;
        if tree.node(array_wn).operator == Opr::RemoteArray {
            // Single-image execution: the coindex selects this image's copy;
            // evaluate the image expression for effect and unwrap.
            let image_kid = tree.node(array_wn).kids[1];
            let inner = tree.node(array_wn).kids[0];
            let _ = self.eval(frame, image_kid)?;
            array_wn = inner;
        }
        let tree = &self.program.procedure(frame.proc).tree;
        let node = tree.node(array_wn);
        if node.operator != Opr::Array {
            return Err(Error::Analysis("indirect access through non-ARRAY address".into()));
        }
        let n = node.num_dim();
        let base = tree.node(node.array_base_kid());
        let st = base
            .st_idx
            .ok_or_else(|| Error::Analysis("ARRAY base without symbol".into()))?;
        let dim_kids: Vec<WnId> = (0..n).map(|d| node.array_dim_kid(d)).collect();
        let idx_kids: Vec<WnId> = (0..n).map(|d| node.array_index_kid(d)).collect();
        let mut dims = Vec::with_capacity(n);
        for k in dim_kids {
            dims.push(self.eval(frame, k)?.as_int());
        }
        let mut idx = Vec::with_capacity(n);
        for k in idx_kids {
            idx.push(self.eval(frame, k)?.as_int());
        }
        let root = self.root_of(frame, st);
        self.ensure_array(root)?;
        // Canonicalize the stored shape to the H-order dims the program's
        // ARRAY nodes actually use (declaration order may differ for
        // Fortran); the total size is identical, only `peek`'s indexing
        // changes.
        if let Some(store) = self.arrays.get_mut(&root) {
            if store.dims != dims
                && dims.iter().product::<i64>() == store.data.len() as i64
            {
                store.dims = dims.clone();
            }
        }
        Ok((st, root, idx, dims))
    }

    fn load_element(&mut self, frame: &mut Frame, array_wn: WnId, line: u32) -> Result<Value> {
        let (local, root, idx, dims) = self.resolve_element(frame, array_wn)?;
        let flat = flat_index(&dims, &idx).ok_or_else(|| {
            Error::Analysis(format!(
                "out-of-bounds read of `{}` at {:?} (dims {:?}) line {line}",
                self.program.name_of(self.program.symbols.get(root).name),
                idx,
                dims
            ))
        })?;
        self.sink.access(frame.proc, local, DynMode::Read, &idx, line);
        let store = self
            .arrays
            .get(&root)
            .ok_or_else(|| Error::Analysis("array store missing after ensure".into()))?;
        let v = store.data.get(flat).copied().unwrap_or(0.0);
        Ok(Value::Float(v))
    }

    fn store_element(
        &mut self,
        frame: &mut Frame,
        array_wn: WnId,
        value: Value,
        line: u32,
    ) -> Result<()> {
        let (local, root, idx, dims) = self.resolve_element(frame, array_wn)?;
        let flat = flat_index(&dims, &idx).ok_or_else(|| {
            Error::Analysis(format!(
                "out-of-bounds write of `{}` at {:?} (dims {:?}) line {line}",
                self.program.name_of(self.program.symbols.get(root).name),
                idx,
                dims
            ))
        })?;
        self.sink.access(frame.proc, local, DynMode::Write, &idx, line);
        let store = self
            .arrays
            .get_mut(&root)
            .ok_or_else(|| Error::Analysis("array store missing after ensure".into()))?;
        if flat < store.data.len() {
            store.data[flat] = value.as_float();
        }
        Ok(())
    }
}

/// Row-major flattening with bounds check; dims of 0 (runtime) reject.
fn flat_index(dims: &[i64], idx: &[i64]) -> Option<usize> {
    if dims.len() != idx.len() {
        return None;
    }
    let mut flat: i64 = 0;
    for (&d, &i) in dims.iter().zip(idx) {
        if d <= 0 || i < 0 || i >= d {
            return None;
        }
        flat = flat * d + i;
    }
    Some(flat as usize)
}

/// A shared mutable scalar cell for by-reference scalar arguments.
#[derive(Debug, Clone)]
pub struct ScalarCell(std::rc::Rc<std::cell::Cell<Value>>);

impl ScalarCell {
    fn new(v: Value) -> Self {
        ScalarCell(std::rc::Rc::new(std::cell::Cell::new(v)))
    }

    fn get(&self) -> Value {
        self.0.get()
    }

    fn set(&self, v: Value) {
        self.0.set(v);
    }
}

/// One call argument.
pub enum CallArg {
    /// Whole array by reference (root symbol).
    Array(StIdx),
    /// Scalar by value.
    Scalar(Value),
    /// Scalar by reference (Fortran semantics).
    ScalarRef(ScalarCell),
}

/// A node that should carry a symbol but does not (e.g. front-end output
/// degraded by error recovery) must fail the run with a typed error, not
/// panic it.
fn require_st(st: Option<StIdx>, what: &str) -> Result<StIdx> {
    st.ok_or_else(|| Error::Analysis(format!("malformed tree: {what} without a symbol")))
}

fn args_clone_for_call(args: &[CallArg]) -> Vec<CallArg> {
    args.iter()
        .map(|a| match a {
            CallArg::Array(st) => CallArg::Array(*st),
            CallArg::Scalar(v) => CallArg::Scalar(*v),
            CallArg::ScalarRef(c) => CallArg::ScalarRef(c.clone()),
        })
        .collect()
}

fn arith(op: Opr, a: Value, b: Value) -> Result<Value> {
    use Value::*;
    Ok(match (a, b) {
        (Int(x), Int(y)) => match op {
            Opr::Add => Int(x.wrapping_add(y)),
            Opr::Sub => Int(x.wrapping_sub(y)),
            Opr::Mpy => Int(x.wrapping_mul(y)),
            Opr::Div => {
                if y == 0 {
                    return Err(Error::Analysis("integer division by zero".into()));
                }
                Int(x / y)
            }
            _ => unreachable!(),
        },
        _ => {
            let (x, y) = (a.as_float(), b.as_float());
            match op {
                Opr::Add => Float(x + y),
                Opr::Sub => Float(x - y),
                Opr::Mpy => Float(x * y),
                Opr::Div => Float(x / y),
                _ => unreachable!(),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_row_major() {
        assert_eq!(flat_index(&[3, 4], &[0, 0]), Some(0));
        assert_eq!(flat_index(&[3, 4], &[1, 2]), Some(6));
        assert_eq!(flat_index(&[3, 4], &[2, 3]), Some(11));
        assert_eq!(flat_index(&[3, 4], &[3, 0]), None, "row OOB");
        assert_eq!(flat_index(&[3, 4], &[0, 4]), None, "col OOB");
        assert_eq!(flat_index(&[3, 4], &[-1, 0]), None);
        assert_eq!(flat_index(&[3], &[0, 0]), None, "rank mismatch");
        assert_eq!(flat_index(&[0], &[0]), None, "runtime dim");
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(3).as_float(), 3.0);
        assert_eq!(Value::Float(2.9).as_int(), 2);
        assert!(Value::Int(1).is_true());
        assert!(!Value::Int(0).is_true());
        assert!(!Value::Float(0.0).is_true());
    }

    #[test]
    fn arith_int_and_float() {
        assert_eq!(arith(Opr::Add, Value::Int(2), Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            arith(Opr::Mpy, Value::Float(2.0), Value::Int(3)).unwrap(),
            Value::Float(6.0)
        );
        assert!(arith(Opr::Div, Value::Int(1), Value::Int(0)).is_err());
        assert_eq!(
            arith(Opr::Div, Value::Float(1.0), Value::Float(2.0)).unwrap(),
            Value::Float(0.5)
        );
    }

    #[test]
    fn scalar_cell_shares_state() {
        let c = ScalarCell::new(Value::Int(1));
        let c2 = c.clone();
        c2.set(Value::Int(9));
        assert_eq!(c.get(), Value::Int(9));
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.access(ProcId(0), StIdx(0), DynMode::Read, &[1, 2], 3);
    }
}
