//! WHIRL symbol (ST) and type (TY) tables.
//!
//! "The front-ends generate a WHIRL file that consists of WHIRL instructions
//! and WHIRL symbol tables. We have used the fields ST_IDX and TY_IDX to
//! refer to the symbol tables in order to extract the array information."
//! A [`SymbolTable`] stores every named entity of a compilation unit; a
//! [`TypeTable`] stores scalar and array types, including per-dimension
//! declared bounds, from which element size, dimension sizes, total size and
//! allocated bytes — the columns of the Dragon table — are all derived.

use support::define_idx;
use support::intern::Symbol;

define_idx! {
    /// Index into the symbol table (the paper's `ST_IDX`).
    pub struct StIdx;
}

define_idx! {
    /// Index into the type table (the paper's `TY_IDX`).
    pub struct TyIdx;
}

/// Scalar machine types with their display names and sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 1-byte character.
    Char,
    /// 4-byte signed integer (`int` / Fortran `INTEGER`).
    I4,
    /// 8-byte signed integer (`long` / `INTEGER*8`).
    I8,
    /// 4-byte float (`float` / `REAL`).
    F4,
    /// 8-byte float (`double` / `DOUBLE PRECISION`).
    F8,
    /// No value (procedures).
    Void,
}

impl DataType {
    /// Size of one element in bytes (the Dragon `Element Size` column).
    pub fn size_bytes(self) -> i64 {
        match self {
            DataType::Char => 1,
            DataType::I4 | DataType::F4 => 4,
            DataType::I8 | DataType::F8 => 8,
            DataType::Void => 0,
        }
    }

    /// The Dragon `Data Type` column spelling (C-style, as in Figs. 9/12/14).
    pub fn display_name(self) -> &'static str {
        match self {
            DataType::Char => "char",
            DataType::I4 => "int",
            DataType::I8 => "long",
            DataType::F4 => "float",
            DataType::F8 => "double",
            DataType::Void => "void",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// One declared dimension: inclusive `lb..=ub`, or a runtime extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimBound {
    /// Compile-time constant bounds (`A(1:200)`, `int a[20]` ⇒ `0:19`).
    Const { lb: i64, ub: i64 },
    /// Extent unknown at compile time (assumed-shape / VLA). The paper:
    /// "For variable length arrays, the size of entire array will be
    /// displayed as zero."
    Runtime,
}

impl DimBound {
    /// Number of elements along this dimension (0 when runtime).
    pub fn extent(self) -> i64 {
        match self {
            DimBound::Const { lb, ub } => (ub - lb + 1).max(0),
            DimBound::Runtime => 0,
        }
    }

    /// The declared lower bound (0 when runtime — the zero-based default).
    pub fn lower(self) -> i64 {
        match self {
            DimBound::Const { lb, .. } => lb,
            DimBound::Runtime => 0,
        }
    }

    /// The declared lower bound with the language's default for runtime
    /// dims: a Fortran assumed-size `x(*)` is still 1-based, a C `double
    /// *x` is 0-based.
    pub fn lower_in(self, lang: crate::Lang) -> i64 {
        match self {
            DimBound::Const { lb, .. } => lb,
            DimBound::Runtime => match lang {
                crate::Lang::Fortran => 1,
                crate::Lang::C => 0,
            },
        }
    }
}

/// The content of a type-table entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TyKind {
    /// A scalar.
    Scalar(DataType),
    /// An array of scalars with per-dimension declared bounds, in *source
    /// order* (dimension 0 = leftmost subscript in the source language).
    Array {
        /// Element type.
        elem: DataType,
        /// Declared bounds per source dimension.
        dims: Vec<DimBound>,
        /// False for F90 non-contiguous (assumed-shape/strided) arrays; the
        /// WHIRL convention surfaces this as a *negative* element size.
        contiguous: bool,
    },
    /// A procedure type (return type only; formals live in the symbol).
    Proc(DataType),
}

/// One type-table entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TyEntry {
    /// The type content.
    pub kind: TyKind,
}

/// The TY table.
#[derive(Debug, Default, Clone)]
pub struct TypeTable {
    entries: support::idx::IndexVec<TyIdx, TyEntry>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry.
    pub fn add(&mut self, kind: TyKind) -> TyIdx {
        self.entries.push(TyEntry { kind })
    }

    /// Convenience: add a scalar type.
    pub fn scalar(&mut self, dt: DataType) -> TyIdx {
        self.add(TyKind::Scalar(dt))
    }

    /// Convenience: add a contiguous array type.
    pub fn array(&mut self, elem: DataType, dims: Vec<DimBound>) -> TyIdx {
        self.add(TyKind::Array { elem, dims, contiguous: true })
    }

    /// Looks up an entry.
    pub fn get(&self, idx: TyIdx) -> &TyEntry {
        &self.entries[idx]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The element data type (scalars are their own elements).
    pub fn elem_type(&self, idx: TyIdx) -> DataType {
        match &self.get(idx).kind {
            TyKind::Scalar(dt) => *dt,
            TyKind::Array { elem, .. } => *elem,
            TyKind::Proc(dt) => *dt,
        }
    }

    /// WHIRL element size: positive for contiguous arrays, *negative* for
    /// non-contiguous F90 arrays ("If it is negative, it specifies a
    /// non-contiguous array").
    pub fn element_size(&self, idx: TyIdx) -> i64 {
        match &self.get(idx).kind {
            TyKind::Scalar(dt) => dt.size_bytes(),
            TyKind::Array { elem, contiguous, .. } => {
                let s = elem.size_bytes();
                if *contiguous {
                    s
                } else {
                    -s
                }
            }
            TyKind::Proc(_) => 0,
        }
    }

    /// Number of dimensions (0 for scalars).
    pub fn num_dims(&self, idx: TyIdx) -> u8 {
        match &self.get(idx).kind {
            TyKind::Array { dims, .. } => dims.len() as u8,
            _ => 0,
        }
    }

    /// The per-dimension extents in source order — the Dragon `Dim_Size`
    /// column (`64|65|65|5` for the LU `u` array).
    pub fn dim_sizes(&self, idx: TyIdx) -> Vec<i64> {
        match &self.get(idx).kind {
            TyKind::Array { dims, .. } => dims.iter().map(|d| d.extent()).collect(),
            _ => Vec::new(),
        }
    }

    /// Declared bounds in source order.
    pub fn dim_bounds(&self, idx: TyIdx) -> Vec<DimBound> {
        match &self.get(idx).kind {
            TyKind::Array { dims, .. } => dims.clone(),
            _ => Vec::new(),
        }
    }

    /// Total element count — the Dragon `Tot_Size` column. Zero when any
    /// dimension is runtime-sized (the paper's VLA rule).
    pub fn total_elements(&self, idx: TyIdx) -> i64 {
        match &self.get(idx).kind {
            TyKind::Array { dims, .. } => {
                let mut total = 1i64;
                for d in dims {
                    let e = d.extent();
                    if e == 0 {
                        return 0;
                    }
                    total = total.saturating_mul(e);
                }
                total
            }
            TyKind::Scalar(_) => 1,
            TyKind::Proc(_) => 0,
        }
    }

    /// Allocated bytes — the Dragon `Size_bytes` column.
    pub fn size_bytes(&self, idx: TyIdx) -> i64 {
        self.total_elements(idx) * self.element_size(idx).abs()
    }
}

/// How a symbol is stored / what it names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StClass {
    /// File-scope / COMMON-block variable.
    Global,
    /// Procedure-local variable.
    Local,
    /// Formal parameter of the owning procedure.
    Formal,
    /// A procedure name.
    Proc,
}

/// One symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StEntry {
    /// The symbol's name.
    pub name: Symbol,
    /// Its type.
    pub ty: TyIdx,
    /// Storage class.
    pub class: StClass,
    /// Assigned static address (the Dragon `Mem_Loc` column, shown in hex).
    /// Zero until layout runs; formals keep 0 because they alias actuals.
    pub address: u64,
}

/// The ST table.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    entries: support::idx::IndexVec<StIdx, StEntry>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a symbol.
    pub fn add(&mut self, name: Symbol, ty: TyIdx, class: StClass) -> StIdx {
        self.entries.push(StEntry { name, ty, class, address: 0 })
    }

    /// Looks up an entry.
    pub fn get(&self, idx: StIdx) -> &StEntry {
        &self.entries[idx]
    }

    /// Mutable lookup (layout assignment).
    pub fn get_mut(&mut self, idx: StIdx) -> &mut StEntry {
        &mut self.entries[idx]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(StIdx, &StEntry)`.
    pub fn iter(&self) -> impl Iterator<Item = (StIdx, &StEntry)> {
        self.entries.iter_enumerated()
    }

    /// Finds a symbol by name (linear scan; tables are per-unit and small).
    pub fn find(&self, name: Symbol) -> Option<StIdx> {
        self.iter().find(|(_, e)| e.name == name).map(|(i, _)| i)
    }

    /// Assigns static addresses to every global/local array, mimicking the
    /// compiler's data layout so `Mem_Loc` is populated. Arrays are placed
    /// sequentially from `base`, 16-byte aligned. Scalars and procedures
    /// keep address 0; formals keep 0 because they alias their actuals.
    pub fn assign_layout(&mut self, types: &TypeTable, base: u64) -> u64 {
        let mut next = base;
        for e in self.entries.iter_mut() {
            let is_array = matches!(types.get(e.ty).kind, TyKind::Array { .. });
            if is_array && e.class != StClass::Formal {
                e.address = next;
                let bytes = types.size_bytes(e.ty).max(0) as u64;
                next = (next + bytes + 15) & !15;
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::Interner;

    fn aarr_ty(types: &mut TypeTable) -> TyIdx {
        // int aarr[20]  ⇒  bounds 0:19.
        types.array(DataType::I4, vec![DimBound::Const { lb: 0, ub: 19 }])
    }

    #[test]
    fn data_type_sizes_and_names() {
        assert_eq!(DataType::I4.size_bytes(), 4);
        assert_eq!(DataType::F8.size_bytes(), 8);
        assert_eq!(DataType::Char.size_bytes(), 1);
        assert_eq!(DataType::F8.display_name(), "double");
        assert_eq!(DataType::I4.to_string(), "int");
    }

    #[test]
    fn fig9_aarr_metrics() {
        // Paper Fig. 9: aarr — elem 4, int, dim 20, tot 20, 80 bytes.
        let mut types = TypeTable::new();
        let ty = aarr_ty(&mut types);
        assert_eq!(types.element_size(ty), 4);
        assert_eq!(types.elem_type(ty), DataType::I4);
        assert_eq!(types.dim_sizes(ty), vec![20]);
        assert_eq!(types.total_elements(ty), 20);
        assert_eq!(types.size_bytes(ty), 80);
        assert_eq!(types.num_dims(ty), 1);
    }

    #[test]
    fn table2_xcr_metrics() {
        // Paper Table II: xcr — double, dims 1:5, tot 5, 40 bytes.
        let mut types = TypeTable::new();
        let ty = types.array(DataType::F8, vec![DimBound::Const { lb: 1, ub: 5 }]);
        assert_eq!(types.element_size(ty), 8);
        assert_eq!(types.total_elements(ty), 5);
        assert_eq!(types.size_bytes(ty), 40);
    }

    #[test]
    fn table3_u_metrics() {
        // Paper Table III / Fig. 14: u — 4-D double 64|65|65|5,
        // tot 1_352_000, bytes 10_816_000.
        let mut types = TypeTable::new();
        let ty = types.array(
            DataType::F8,
            vec![
                DimBound::Const { lb: 1, ub: 64 },
                DimBound::Const { lb: 1, ub: 65 },
                DimBound::Const { lb: 1, ub: 65 },
                DimBound::Const { lb: 1, ub: 5 },
            ],
        );
        assert_eq!(types.dim_sizes(ty), vec![64, 65, 65, 5]);
        assert_eq!(types.total_elements(ty), 1_352_000);
        assert_eq!(types.size_bytes(ty), 10_816_000);
    }

    #[test]
    fn runtime_dimension_zeroes_total_size() {
        let mut types = TypeTable::new();
        let ty = types.add(TyKind::Array {
            elem: DataType::F8,
            dims: vec![DimBound::Runtime],
            contiguous: true,
        });
        assert_eq!(types.total_elements(ty), 0);
        assert_eq!(types.size_bytes(ty), 0);
    }

    #[test]
    fn noncontiguous_array_has_negative_element_size() {
        let mut types = TypeTable::new();
        let ty = types.add(TyKind::Array {
            elem: DataType::F8,
            dims: vec![DimBound::Const { lb: 1, ub: 10 }],
            contiguous: false,
        });
        assert_eq!(types.element_size(ty), -8);
        // Allocated bytes still use the magnitude.
        assert_eq!(types.size_bytes(ty), 80);
    }

    #[test]
    fn symbol_lookup_by_name() {
        let mut it = Interner::new();
        let mut types = TypeTable::new();
        let ty = aarr_ty(&mut types);
        let mut st = SymbolTable::new();
        let name = it.intern("aarr");
        let idx = st.add(name, ty, StClass::Global);
        assert_eq!(st.find(name), Some(idx));
        assert_eq!(st.find(it.intern("missing")), None);
        assert_eq!(st.get(idx).class, StClass::Global);
    }

    #[test]
    fn layout_assigns_aligned_disjoint_addresses() {
        let mut it = Interner::new();
        let mut types = TypeTable::new();
        let t1 = aarr_ty(&mut types); // 80 bytes
        let t2 = types.array(DataType::F8, vec![DimBound::Const { lb: 1, ub: 5 }]); // 40 B
        let scalar = types.scalar(DataType::I4);
        let mut st = SymbolTable::new();
        let a = st.add(it.intern("a"), t1, StClass::Global);
        let b = st.add(it.intern("b"), t2, StClass::Local);
        let s = st.add(it.intern("n"), scalar, StClass::Local);
        let f = st.add(it.intern("x"), t2, StClass::Formal);
        let end = st.assign_layout(&types, 0x5559_9870);
        let (aa, ba) = (st.get(a).address, st.get(b).address);
        assert_eq!(aa, 0x5559_9870);
        assert!(ba > aa + 79, "b must not overlap a");
        assert_eq!(ba % 16, 0);
        assert_eq!(st.get(s).address, 0, "scalars are not placed");
        assert_eq!(st.get(f).address, 0, "formals alias their actuals");
        assert!(end > ba);
    }

    #[test]
    fn dim_bound_helpers() {
        let d = DimBound::Const { lb: 1, ub: 65 };
        assert_eq!(d.extent(), 65);
        assert_eq!(d.lower(), 1);
        assert_eq!(DimBound::Runtime.extent(), 0);
    }
}
