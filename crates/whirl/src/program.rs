//! Whole-program container: procedures, shared symbol/type tables.
//!
//! OpenUH's IPA phase works on merged per-unit summaries; we model the merged
//! view directly — one [`SymbolTable`]/[`TypeTable`] for the whole program,
//! one [`WhirlTree`] per procedure, and per-procedure metadata (source file,
//! formals, source language) that the later analysis stages need.

use crate::node::WhirlTree;
use crate::symtab::{StIdx, SymbolTable, TypeTable};
use support::define_idx;
use support::idx::IndexVec;
use support::intern::Symbol;
use support::Interner;

define_idx! {
    /// Index of a procedure within a [`Program`].
    pub struct ProcId;
}

/// Source language of a procedure — drives the array-subscript convention
/// ("OpenUH uses (row major, zero indexing) for all languages. To surpass
/// this obstacle, we modify the bounds ... to make our tool aware of the
/// application's source code language").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lang {
    /// C: row-major, zero-based — WHIRL order is source order.
    C,
    /// Fortran: column-major, declared (usually 1-based) bounds — lowered to
    /// row-major zero-based by reversing dimensions and shifting indices.
    Fortran,
}

/// The WHIRL abstraction level a tree currently sits at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Very High: `ARRAY` subscripts still in source order with declared
    /// lower bounds.
    VeryHigh,
    /// High: `ARRAY` rewritten to row-major zero-based — the level "where
    /// the IPA phase operates".
    High,
}

/// One procedure: its tree plus metadata.
#[derive(Debug, Clone)]
pub struct Procedure {
    /// Procedure name.
    pub name: Symbol,
    /// Its symbol-table entry.
    pub st: StIdx,
    /// Source file the procedure was parsed from (e.g. `verify.f`).
    pub file: Symbol,
    /// Line of the procedure header.
    pub linenum: u32,
    /// Source language.
    pub lang: Lang,
    /// Formal parameters, in declaration order.
    pub formals: Vec<StIdx>,
    /// The WHIRL tree.
    pub tree: WhirlTree,
    /// Current IR level of `tree`.
    pub level: Level,
}

impl Procedure {
    /// The object-file name the Dragon `File` column shows (`verify.f` →
    /// `verify.o`).
    pub fn object_file(&self, interner: &Interner) -> String {
        let src = interner.resolve(self.file);
        match src.rsplit_once('.') {
            Some((stem, _ext)) => format!("{stem}.o"),
            None => format!("{src}.o"),
        }
    }
}

/// A whole program after front-end processing.
#[derive(Debug, Default)]
pub struct Program {
    /// Identifier interner shared by every table.
    pub interner: Interner,
    /// Merged symbol table.
    pub symbols: SymbolTable,
    /// Merged type table.
    pub types: TypeTable,
    /// All procedures.
    pub procedures: IndexVec<ProcId, Procedure>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a procedure, returning its id.
    pub fn add_procedure(&mut self, p: Procedure) -> ProcId {
        self.procedures.push(p)
    }

    /// Finds a procedure by name.
    pub fn find_procedure(&self, name: &str) -> Option<ProcId> {
        let sym = self.interner.get(name)?;
        self.procedures
            .iter_enumerated()
            .find(|(_, p)| p.name == sym)
            .map(|(id, _)| id)
    }

    /// Procedure lookup.
    pub fn procedure(&self, id: ProcId) -> &Procedure {
        &self.procedures[id]
    }

    /// Mutable procedure lookup.
    pub fn procedure_mut(&mut self, id: ProcId) -> &mut Procedure {
        &mut self.procedures[id]
    }

    /// Number of procedures.
    pub fn procedure_count(&self) -> usize {
        self.procedures.len()
    }

    /// Resolves a symbol name.
    pub fn name_of(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Maps a procedure-name symbol to its `ProcId` (for call resolution).
    pub fn proc_by_symbol(&self, name: Symbol) -> Option<ProcId> {
        self.procedures
            .iter_enumerated()
            .find(|(_, p)| p.name == name)
            .map(|(id, _)| id)
    }

    /// Assigns static memory addresses to every array symbol (the Dragon
    /// `Mem_Loc` column). Returns the first free address.
    pub fn assign_layout(&mut self, base: u64) -> u64 {
        self.symbols.assign_layout(&self.types, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symtab::{DataType, StClass};

    fn skeleton_program() -> (Program, ProcId) {
        let mut p = Program::new();
        let name = p.interner.intern("verify");
        let file = p.interner.intern("verify.f");
        let ty = p.types.scalar(DataType::Void);
        let st = p.symbols.add(name, ty, StClass::Proc);
        let id = p.add_procedure(Procedure {
            name,
            st,
            file,
            linenum: 1,
            lang: Lang::Fortran,
            formals: vec![],
            tree: WhirlTree::new(),
            level: Level::VeryHigh,
        });
        (p, id)
    }

    #[test]
    fn find_procedure_by_name() {
        let (p, id) = skeleton_program();
        assert_eq!(p.find_procedure("verify"), Some(id));
        assert_eq!(p.find_procedure("missing"), None);
        assert_eq!(p.procedure_count(), 1);
    }

    #[test]
    fn object_file_name_mapping() {
        let (p, id) = skeleton_program();
        assert_eq!(p.procedure(id).object_file(&p.interner), "verify.o");
    }

    #[test]
    fn object_file_without_extension() {
        let mut p = Program::new();
        let name = p.interner.intern("main");
        let file = p.interner.intern("prog");
        let ty = p.types.scalar(DataType::Void);
        let st = p.symbols.add(name, ty, StClass::Proc);
        let id = p.add_procedure(Procedure {
            name,
            st,
            file,
            linenum: 1,
            lang: Lang::C,
            formals: vec![],
            tree: WhirlTree::new(),
            level: Level::VeryHigh,
        });
        assert_eq!(p.procedure(id).object_file(&p.interner), "prog.o");
    }

    #[test]
    fn proc_by_symbol_round_trip() {
        let (p, id) = skeleton_program();
        let sym = p.procedure(id).name;
        assert_eq!(p.proc_by_symbol(sym), Some(id));
    }
}
