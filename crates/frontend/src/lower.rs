//! AST → VH WHIRL lowering.
//!
//! Mirrors what OpenUH's front ends do: each procedure becomes a
//! `FuncEntry`-rooted [`WhirlTree`](whirl::WhirlTree), array references
//! become `ARRAY` operators (still in *source order* with declared lower
//! bounds — the VH convention), scalars become `LDID`/`STID`, loops become
//! `DO_LOOP` nodes carrying their exact step, and calls become `CALL` nodes
//! whose array arguments are `PARM(LDA array)`.

use crate::ast::{AstDim, BinOp, Expr, LValue, Module, ProcDecl, Stmt, TypeName};
use crate::sema::{ProgramEnv, VarInfo, VarScope};
use std::collections::BTreeMap;
use support::{Error, Result};
use whirl::builder::TreeBuilder;
use whirl::symtab::{DataType, DimBound, StClass, StIdx, TyIdx};
use whirl::{Lang, Level, Procedure, Program};

/// Maps a source type name to the WHIRL scalar type.
pub fn data_type(t: TypeName) -> DataType {
    match t {
        TypeName::Integer => DataType::I4,
        TypeName::Integer8 => DataType::I8,
        TypeName::Real => DataType::F4,
        TypeName::Double => DataType::F8,
        TypeName::Character => DataType::Char,
    }
}

fn dim_bound(d: AstDim) -> DimBound {
    match d {
        AstDim::Range(lb, ub) => DimBound::Const { lb, ub },
        AstDim::Unknown => DimBound::Runtime,
    }
}

/// Lowers a set of analyzed modules into one [`Program`] at VH level.
pub fn lower_modules(
    modules: &[Module],
    env: &ProgramEnv,
    langs: &[Lang],
) -> Result<Program> {
    assert_eq!(modules.len(), langs.len(), "one language tag per module");
    let mut program = Program::new();

    // Global symbols first (shared by every procedure).
    let mut global_sts: BTreeMap<String, StIdx> = BTreeMap::new();
    for (name, info) in &env.globals {
        let st = add_symbol(&mut program, name, info, StClass::Global);
        global_sts.insert(name.clone(), st);
    }

    // Procedure symbols next so calls resolve in any order.
    let mut proc_sts: BTreeMap<String, StIdx> = BTreeMap::new();
    for m in modules {
        for p in &m.procs {
            let ty = program.types.add(whirl::TyKind::Proc(DataType::Void));
            let sym = program.interner.intern(&p.name);
            let st = program.symbols.add(sym, ty, StClass::Proc);
            proc_sts.insert(p.name.clone(), st);
        }
    }

    for (m, &lang) in modules.iter().zip(langs) {
        for p in &m.procs {
            let proc = lower_proc(&mut program, m, p, env, lang, &global_sts, &proc_sts)?;
            program.add_procedure(proc);
        }
    }
    Ok(program)
}

fn add_symbol(
    program: &mut Program,
    name: &str,
    info: &VarInfo,
    class: StClass,
) -> StIdx {
    let dt = data_type(info.ty);
    let ty: TyIdx = if info.dims.is_empty() {
        program.types.scalar(dt)
    } else {
        program
            .types
            .array(dt, info.dims.iter().map(|&d| dim_bound(d)).collect())
    };
    let sym = program.interner.intern(name);
    program.symbols.add(sym, ty, class)
}

struct LowerCtx<'a> {
    program: &'a mut Program,
    b: TreeBuilder,
    /// name → (StIdx, VarInfo) for everything visible in this procedure.
    vars: BTreeMap<String, (StIdx, VarInfo)>,
    proc_sts: &'a BTreeMap<String, StIdx>,
    proc_name: String,
}

fn lower_proc(
    program: &mut Program,
    module: &Module,
    p: &ProcDecl,
    env: &ProgramEnv,
    lang: Lang,
    global_sts: &BTreeMap<String, StIdx>,
    proc_sts: &BTreeMap<String, StIdx>,
) -> Result<Procedure> {
    let penv = env
        .proc_envs
        .get(&p.name)
        .ok_or_else(|| Error::Lower(format!("no environment for `{}`", p.name)))?;

    let mut vars: BTreeMap<String, (StIdx, VarInfo)> = BTreeMap::new();
    // Visible globals resolve to the shared global symbols.
    for (name, st) in global_sts {
        if let Some(info) = penv.get(name) {
            if info.scope == VarScope::Global {
                vars.insert(name.clone(), (*st, info.clone()));
            }
        }
    }
    // Locals and formals get fresh symbols.
    for (name, info) in penv.iter() {
        if info.scope == VarScope::Global {
            continue;
        }
        let class = match info.scope {
            VarScope::Formal => StClass::Formal,
            _ => StClass::Local,
        };
        let st = add_symbol(program, name, info, class);
        vars.insert(name.clone(), (st, info.clone()));
    }

    let proc_st = proc_sts[&p.name];
    let mut ctx = LowerCtx {
        program,
        b: TreeBuilder::new(),
        vars,
        proc_sts,
        proc_name: p.name.clone(),
    };

    let body = ctx.b.block();
    for s in &p.body {
        let stmt = ctx.stmt(s)?;
        ctx.b.append(body, stmt);
    }
    let mut formal_ids = Vec::new();
    let mut formal_sts = Vec::new();
    for f in &p.formals {
        let (st, _) = ctx
            .vars
            .get(f)
            .copied_pair()
            .ok_or_else(|| Error::Lower(format!("formal `{f}` missing in `{}`", p.name)))?;
        formal_ids.push(ctx.b.idname(st));
        formal_sts.push(st);
    }
    ctx.b.func_entry(proc_st, formal_ids, body);

    let name = ctx.program.interner.intern(&p.name);
    let file = ctx.program.interner.intern(&module.file);
    Ok(Procedure {
        name,
        st: proc_st,
        file,
        linenum: p.pos.line,
        lang,
        formals: formal_sts,
        tree: ctx.b.finish(),
        level: Level::VeryHigh,
    })
}

/// Small helper trait: `Option<&(StIdx, VarInfo)>` → `Option<(StIdx, &VarInfo)>`.
trait CopiedPair {
    fn copied_pair(self) -> Option<(StIdx, VarInfo)>;
}

impl CopiedPair for Option<&(StIdx, VarInfo)> {
    fn copied_pair(self) -> Option<(StIdx, VarInfo)> {
        self.map(|(st, info)| (*st, info.clone()))
    }
}

impl<'a> LowerCtx<'a> {
    fn lookup(&mut self, name: &str) -> Result<(StIdx, VarInfo)> {
        if let Some(pair) = self.vars.get(name).copied_pair() {
            return Ok(pair);
        }
        // Sema allowed it ⇒ implicit scalar: materialize lazily.
        let info = VarInfo {
            ty: crate::sema::implicit_type(name),
            dims: Vec::new(),
            scope: VarScope::Local,
            coarray: false,
        };
        let st = add_symbol(self.program, name, &info, StClass::Local);
        self.vars.insert(name.to_string(), (st, info.clone()));
        Ok((st, info))
    }

    fn stmt(&mut self, s: &Stmt) -> Result<whirl::WnId> {
        match s {
            Stmt::Assign(lv, rhs, pos) => {
                let value = self.expr(rhs)?;
                match lv {
                    LValue::Var(name, _) => {
                        let (st, _) = self.lookup(name)?;
                        Ok(self.b.stid(st, value, pos.line))
                    }
                    LValue::Elem(name, subs, _) => {
                        let addr = self.array_ref(name, subs, pos.line)?;
                        Ok(self.b.istore(addr, value, pos.line))
                    }
                    LValue::CoElem(name, subs, image, _) => {
                        let addr = self.array_ref(name, subs, pos.line)?;
                        let img = self.expr(image)?;
                        let remote = self.remote_array(addr, img, pos.line);
                        Ok(self.b.istore(remote, value, pos.line))
                    }
                }
            }
            Stmt::Call(name, args, pos) => {
                let callee = *self.proc_sts.get(name).ok_or_else(|| {
                    Error::Lower(format!("unresolved callee `{name}` in `{}`", self.proc_name))
                })?;
                let mut parms = Vec::with_capacity(args.len());
                for a in args {
                    let v = match a {
                        // A bare array name as an argument passes the array:
                        // PARM(LDA array) — the PASSED access mode.
                        Expr::Var(n, p) => {
                            let (st, info) = self.lookup(n)?;
                            if info.is_array() {
                                self.b.lda(st, p.line)
                            } else {
                                self.expr(a)?
                            }
                        }
                        other => self.expr(other)?,
                    };
                    parms.push(self.b.parm(v));
                }
                Ok(self.b.call(callee, parms, pos.line))
            }
            Stmt::Do { var, lo, hi, step, body, pos } => {
                let (ivar, _) = self.lookup(var)?;
                let start = self.expr(lo)?;
                let end = self.expr(hi)?;
                let blk = self.b.block();
                for s in body {
                    let st = self.stmt(s)?;
                    self.b.append(blk, st);
                }
                Ok(self.b.do_loop(ivar, start, end, *step, blk, pos.line))
            }
            Stmt::If { cond, then_body, else_body, pos } => {
                let c = self.expr(cond)?;
                let t = self.b.block();
                for s in then_body {
                    let st = self.stmt(s)?;
                    self.b.append(t, st);
                }
                let e = self.b.block();
                for s in else_body {
                    let st = self.stmt(s)?;
                    self.b.append(e, st);
                }
                Ok(self.b.if_stmt(c, t, e, pos.line))
            }
            Stmt::Return(pos) => Ok(self.b.ret(None, pos.line)),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<whirl::WnId> {
        match e {
            Expr::Int(v, _) => Ok(self.b.intconst(*v)),
            Expr::Real(v, _) => Ok(self.b.fconst(*v)),
            Expr::Var(name, pos) => {
                let (st, info) = self.lookup(name)?;
                if info.is_array() {
                    // Whole-array rvalue (outside call arguments): its
                    // address.
                    Ok(self.b.lda(st, pos.line))
                } else {
                    Ok(self.b.ldid(st, data_type(info.ty), pos.line))
                }
            }
            Expr::Index(name, subs, pos) => {
                let addr = self.array_ref(name, subs, pos.line)?;
                let (_, info) = self.lookup(name)?;
                Ok(self.b.iload(addr, data_type(info.ty), pos.line))
            }
            Expr::CoIndex(name, subs, image, pos) => {
                let addr = self.array_ref(name, subs, pos.line)?;
                let img = self.expr(image)?;
                let remote = self.remote_array(addr, img, pos.line);
                let (_, info) = self.lookup(name)?;
                Ok(self.b.iload(remote, data_type(info.ty), pos.line))
            }
            Expr::Call(name, _, pos) => Err(Error::semantic_at(
                *pos,
                format!("expression call `{name}` survived sema"),
            )),
            Expr::Bin(op, a, b, _) => {
                let a = self.expr(a)?;
                let bb = self.expr(b)?;
                let opr = match op {
                    BinOp::Add => whirl::Opr::Add,
                    BinOp::Sub => whirl::Opr::Sub,
                    BinOp::Mul => whirl::Opr::Mpy,
                    BinOp::Div => whirl::Opr::Div,
                    BinOp::Lt => whirl::Opr::Lt,
                    BinOp::Le => whirl::Opr::Le,
                    BinOp::Gt => whirl::Opr::Gt,
                    BinOp::Ge => whirl::Opr::Ge,
                    BinOp::Eq => whirl::Opr::Eq,
                    BinOp::Ne => whirl::Opr::Ne,
                    BinOp::And => whirl::Opr::Land,
                    BinOp::Or => whirl::Opr::Lior,
                };
                Ok(self.b.binary(opr, a, bb))
            }
            Expr::Neg(a, _) => {
                let a = self.expr(a)?;
                Ok(self.b.neg(a))
            }
        }
    }

    /// Wraps an `ARRAY` address in a `REMOTE_ARRAY` coindex node.
    fn remote_array(&mut self, addr: whirl::WnId, image: whirl::WnId, line: u32) -> whirl::WnId {
        let id = self.b.tree_mut().alloc(whirl::Opr::RemoteArray);
        let n = self.b.tree_mut().node_mut(id);
        n.kids = vec![addr, image];
        n.linenum = line;
        id
    }

    /// Builds the `ARRAY` node for `name(subs)` — VH level: dims and
    /// subscripts in source order, subscripts unadjusted.
    fn array_ref(&mut self, name: &str, subs: &[Expr], line: u32) -> Result<whirl::WnId> {
        let (st, info) = self.lookup(name)?;
        let base = self.b.lda(st, line);
        let mut dim_kids = Vec::with_capacity(info.dims.len());
        for d in &info.dims {
            let extent = match d {
                AstDim::Range(lb, ub) => ub - lb + 1,
                AstDim::Unknown => 0,
            };
            dim_kids.push(self.b.intconst(extent));
        }
        let mut index_kids = Vec::with_capacity(subs.len());
        for s in subs {
            index_kids.push(self.expr(s)?);
        }
        let elem = data_type(info.ty).size_bytes();
        Ok(self.b.array(base, dim_kids, index_kids, elem, line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cparse, fortran, sema};
    use whirl::Opr;

    fn compile_f(src: &str) -> Program {
        let m = fortran::parse("t.f", src).unwrap();
        let env = sema::analyze(std::slice::from_ref(&m)).unwrap();
        lower_modules(&[m], &env, &[Lang::Fortran]).unwrap()
    }

    fn compile_c(src: &str) -> Program {
        let m = cparse::parse("t.c", src).unwrap();
        let env = sema::analyze(std::slice::from_ref(&m)).unwrap();
        lower_modules(&[m], &env, &[Lang::C]).unwrap()
    }

    fn count_ops(p: &Program, proc: &str, op: Opr) -> usize {
        let id = p.find_procedure(proc).unwrap();
        let tree = &p.procedure(id).tree;
        tree.iter().filter(|&n| tree.node(n).operator == op).count()
    }

    #[test]
    fn lowers_simple_fortran_assign() {
        let p = compile_f("subroutine s\n  real a(10)\n  integer i\n  do i = 1, 10\n    a(i) = 0.0\n  end do\nend\n");
        assert_eq!(count_ops(&p, "s", Opr::DoLoop), 1);
        assert_eq!(count_ops(&p, "s", Opr::Istore), 1);
        assert_eq!(count_ops(&p, "s", Opr::Array), 1);
    }

    #[test]
    fn array_node_carries_vh_source_order() {
        let p = compile_f("subroutine s\n  real a(4, 9)\n  a(2, 5) = 1.0\nend\n");
        let id = p.find_procedure("s").unwrap();
        let tree = &p.procedure(id).tree;
        let arr = tree
            .iter()
            .find(|&n| tree.node(n).operator == Opr::Array)
            .unwrap();
        let n = tree.node(arr);
        assert_eq!(n.num_dim(), 2);
        assert_eq!(tree.eval_const(n.array_dim_kid(0)), Some(4));
        assert_eq!(tree.eval_const(n.array_dim_kid(1)), Some(9));
        assert_eq!(tree.eval_const(n.array_index_kid(0)), Some(2), "VH keeps source index");
        assert_eq!(n.elem_size, 4, "REAL is 4 bytes");
    }

    #[test]
    fn call_with_array_arg_passes_lda() {
        let p = compile_f("\
subroutine main
  real a(10)
  call q(a, 3)
end
subroutine q(x, n)
  real x(10)
  integer n
  x(1) = 0.0
end
");
        let id = p.find_procedure("main").unwrap();
        let tree = &p.procedure(id).tree;
        let call = tree
            .iter()
            .find(|&n| tree.node(n).operator == Opr::Call)
            .unwrap();
        let parms = &tree.node(call).kids;
        assert_eq!(parms.len(), 2);
        let first = tree.node(tree.node(parms[0]).kids[0]);
        assert_eq!(first.operator, Opr::Lda, "array argument is an LDA");
        let second = tree.node(tree.node(parms[1]).kids[0]);
        assert_eq!(second.operator, Opr::Intconst);
    }

    #[test]
    fn formals_become_idnames() {
        let p = compile_f("subroutine q(x, n)\n  real x(10)\n  integer n\n  x(n) = 0.0\nend\n");
        let id = p.find_procedure("q").unwrap();
        let proc = p.procedure(id);
        assert_eq!(proc.formals.len(), 2);
        let root = proc.tree.root().unwrap();
        let kids = &proc.tree.node(root).kids;
        assert_eq!(kids.len(), 3); // two Idnames + body Block
        assert_eq!(proc.tree.node(kids[0]).operator, Opr::Idname);
    }

    #[test]
    fn globals_share_one_symbol() {
        let p = compile_f("\
subroutine a
  double precision u(8)
  common /c/ u
  u(1) = 0.0
end
subroutine b
  double precision u(8)
  common /c/ u
  u(2) = 0.0
end
");
        let sts: Vec<_> = [p.find_procedure("a").unwrap(), p.find_procedure("b").unwrap()]
            .iter()
            .map(|&id| {
                let tree = &p.procedure(id).tree;
                let arr = tree
                    .iter()
                    .find(|&n| tree.node(n).operator == Opr::Array)
                    .unwrap();
                let base = tree.node(arr).array_base_kid();
                tree.node(base).st_idx.unwrap()
            })
            .collect();
        assert_eq!(sts[0], sts[1], "COMMON array must resolve to one symbol");
    }

    #[test]
    fn c_module_lowers() {
        let p = compile_c("\
int aarr[20];
void main() {
    int i;
    for (i = 0; i <= 7; i++)
        aarr[i] = i;
}
");
        assert_eq!(count_ops(&p, "main", Opr::DoLoop), 1);
        assert_eq!(count_ops(&p, "main", Opr::Istore), 1);
        let id = p.find_procedure("main").unwrap();
        let tree = &p.procedure(id).tree;
        let arr = tree
            .iter()
            .find(|&n| tree.node(n).operator == Opr::Array)
            .unwrap();
        assert_eq!(tree.eval_const(tree.node(arr).array_dim_kid(0)), Some(20));
    }

    #[test]
    fn if_lowering_produces_two_blocks() {
        let p = compile_f("subroutine s\n  integer i\n  if (i .le. 5) then\n    i = 1\n  else\n    i = 2\n  end if\nend\n");
        assert_eq!(count_ops(&p, "s", Opr::If), 1);
        assert_eq!(count_ops(&p, "s", Opr::Land), 0);
    }

    #[test]
    fn logical_ops_lower() {
        let p = compile_f("subroutine s\n  integer i, j\n  if (i .le. 5 .and. j .ge. 1) then\n    i = 1\n  end if\nend\n");
        assert_eq!(count_ops(&p, "s", Opr::Land), 1);
    }

    #[test]
    fn linenum_propagates() {
        let p = compile_f("subroutine s\n  real a(10)\n  a(1) = 0.0\nend\n");
        let id = p.find_procedure("s").unwrap();
        let tree = &p.procedure(id).tree;
        let st = tree
            .iter()
            .find(|&n| tree.node(n).operator == Opr::Istore)
            .unwrap();
        assert_eq!(tree.node(st).linenum, 3);
    }
}
