//! Semantic analysis: name resolution and subset checks.
//!
//! Merges COMMON/file-scope globals across modules, builds per-procedure
//! symbol environments (formal < local < global precedence), applies the
//! Fortran implicit-typing rule for undeclared scalars, and rejects the
//! constructs the analysis subset cannot express (expression-position calls,
//! indexing non-arrays, subscript-count mismatches, unknown callees).

use crate::ast::{AstDim, Expr, LValue, Module, ProcDecl, Stmt, TypeName};
use std::collections::{BTreeMap, BTreeSet};
use support::{Error, Result};

/// Where a resolved variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarScope {
    /// Module-level (COMMON / file scope).
    Global,
    /// Procedure-local.
    Local,
    /// Formal parameter.
    Formal,
}

/// One resolved variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Element type.
    pub ty: TypeName,
    /// Source-order dimensions (empty ⇒ scalar).
    pub dims: Vec<AstDim>,
    /// Scope.
    pub scope: VarScope,
    /// True for coarrays (remotely addressable, CAF `[*]`).
    pub coarray: bool,
}

impl VarInfo {
    /// True when the variable is an array.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }
}

/// Per-procedure environment.
#[derive(Debug, Default)]
pub struct ProcEnv {
    vars: BTreeMap<String, VarInfo>,
}

impl ProcEnv {
    /// Looks up a name.
    pub fn get(&self, name: &str) -> Option<&VarInfo> {
        self.vars.get(name)
    }

    /// Iterates all resolved variables.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &VarInfo)> {
        self.vars.iter()
    }
}

/// Whole-program resolution result.
#[derive(Debug, Default)]
pub struct ProgramEnv {
    /// Canonical merged globals, name → info.
    pub globals: BTreeMap<String, VarInfo>,
    /// Every defined procedure name.
    pub proc_names: BTreeSet<String>,
    /// Per-procedure environments, keyed by procedure name.
    pub proc_envs: BTreeMap<String, ProcEnv>,
}

/// Fortran implicit typing: names starting `i`–`n` are integer, others real.
pub fn implicit_type(name: &str) -> TypeName {
    match name.chars().next() {
        Some(c @ ('i' | 'j' | 'k' | 'l' | 'm' | 'n')) => {
            let _ = c;
            TypeName::Integer
        }
        _ => TypeName::Real,
    }
}

/// Runs semantic analysis over all modules of a program.
pub fn analyze(modules: &[Module]) -> Result<ProgramEnv> {
    let mut env = ProgramEnv::default();

    // Pass 1: merge globals. A placeholder from a COMMON statement (no dims)
    // is upgraded by any declaration with dims/type information.
    for m in modules {
        for g in &m.globals {
            let info = VarInfo { ty: g.ty, dims: g.dims.clone(), scope: VarScope::Global, coarray: g.coarray };
            match env.globals.get(&g.name) {
                Some(existing) if existing.is_array() => {
                    if info.is_array() && existing.dims != info.dims {
                        return Err(Error::semantic_at(
                            g.pos,
                            format!(
                                "global array `{}` redeclared with conflicting dimensions",
                                g.name
                            ),
                        ));
                    }
                }
                _ => {
                    env.globals.insert(g.name.clone(), info);
                }
            }
        }
        for p in &m.procs {
            if !env.proc_names.insert(p.name.clone()) {
                return Err(Error::semantic_at(
                    p.pos,
                    format!("procedure `{}` defined more than once", p.name),
                ));
            }
        }
    }

    // Patch COMMON placeholders whose declaration lives inside a unit: any
    // later unit declaring the same name with dims supplies the real shape.
    for m in modules {
        for p in &m.procs {
            for d in &p.decls {
                if let Some(g) = env.globals.get_mut(&d.name) {
                    if !g.is_array() && !d.dims.is_empty() {
                        g.ty = d.ty;
                        g.dims = d.dims.clone();
                    } else if g.is_array()
                        && !d.dims.is_empty()
                        && g.dims != d.dims
                    {
                        return Err(Error::semantic_at(
                            d.pos,
                            format!(
                                "global array `{}` redeclared with conflicting dimensions",
                                d.name
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Pass 2: build per-procedure environments and check bodies.
    for m in modules {
        for p in &m.procs {
            let penv = build_proc_env(p, &env)?;
            check_body(p, &penv, &env)?;
            env.proc_envs.insert(p.name.clone(), penv);
        }
    }
    Ok(env)
}

fn build_proc_env(p: &ProcDecl, env: &ProgramEnv) -> Result<ProcEnv> {
    let mut vars: BTreeMap<String, VarInfo> = BTreeMap::new();
    // Globals are visible unless shadowed.
    for (name, info) in &env.globals {
        vars.insert(name.clone(), info.clone());
    }
    // Declarations (locals and formals).
    let mut declared = BTreeSet::new();
    for d in &p.decls {
        if !declared.insert(d.name.clone()) {
            return Err(Error::semantic_at(
                d.pos,
                format!("`{}` declared twice in `{}`", d.name, p.name),
            ));
        }
        let scope = if p.formals.contains(&d.name) {
            VarScope::Formal
        } else if env.globals.contains_key(&d.name) {
            // A unit-level declaration of a COMMON member re-describes the
            // global; keep the global scope.
            VarScope::Global
        } else {
            VarScope::Local
        };
        vars.insert(
            d.name.clone(),
            VarInfo { ty: d.ty, dims: d.dims.clone(), scope, coarray: d.coarray },
        );
    }
    // Undeclared formals get implicit scalar types (F77).
    for f in &p.formals {
        vars.entry(f.clone()).or_insert_with(|| VarInfo {
            ty: implicit_type(f),
            dims: Vec::new(),
            scope: VarScope::Formal,
            coarray: false,
        });
    }
    Ok(ProcEnv { vars })
}

fn check_body(p: &ProcDecl, penv: &ProcEnv, env: &ProgramEnv) -> Result<()> {
    let mut implicit: BTreeMap<String, VarInfo> = BTreeMap::new();
    for s in &p.body {
        check_stmt(p, s, penv, env, &mut implicit)?;
    }
    Ok(())
}

fn check_stmt(
    p: &ProcDecl,
    s: &Stmt,
    penv: &ProcEnv,
    env: &ProgramEnv,
    implicit: &mut BTreeMap<String, VarInfo>,
) -> Result<()> {
    match s {
        Stmt::Assign(lv, rhs, _) => {
            match lv {
                LValue::Var(name, pos) => {
                    ensure_scalar(p, name, *pos, penv, implicit)?;
                }
                LValue::Elem(name, subs, pos) => {
                    ensure_array(p, name, subs.len(), *pos, penv, env)?;
                    for sub in subs {
                        check_expr(p, sub, penv, env, implicit)?;
                    }
                }
                LValue::CoElem(name, subs, image, pos) => {
                    ensure_array(p, name, subs.len(), *pos, penv, env)?;
                    ensure_coarray(p, name, *pos, penv)?;
                    for sub in subs {
                        check_expr(p, sub, penv, env, implicit)?;
                    }
                    check_expr(p, image, penv, env, implicit)?;
                }
            }
            check_expr(p, rhs, penv, env, implicit)
        }
        Stmt::Call(name, args, pos) => {
            if !env.proc_names.contains(name) {
                return Err(Error::semantic_at(
                    *pos,
                    format!("call to undefined procedure `{name}` in `{}`", p.name),
                ));
            }
            for a in args {
                check_expr(p, a, penv, env, implicit)?;
            }
            Ok(())
        }
        Stmt::Do { var, lo, hi, body, pos, .. } => {
            ensure_scalar(p, var, *pos, penv, implicit)?;
            check_expr(p, lo, penv, env, implicit)?;
            check_expr(p, hi, penv, env, implicit)?;
            for s in body {
                check_stmt(p, s, penv, env, implicit)?;
            }
            Ok(())
        }
        Stmt::If { cond, then_body, else_body, .. } => {
            check_expr(p, cond, penv, env, implicit)?;
            for s in then_body.iter().chain(else_body) {
                check_stmt(p, s, penv, env, implicit)?;
            }
            Ok(())
        }
        Stmt::Return(_) => Ok(()),
    }
}

fn check_expr(
    p: &ProcDecl,
    e: &Expr,
    penv: &ProcEnv,
    env: &ProgramEnv,
    implicit: &mut BTreeMap<String, VarInfo>,
) -> Result<()> {
    match e {
        Expr::Int(..) | Expr::Real(..) => Ok(()),
        Expr::Var(name, pos) => {
            // Scalars and whole-array references are both fine here; an
            // unknown name becomes an implicit scalar.
            if penv.get(name).is_none() && !implicit.contains_key(name) {
                if env.proc_names.contains(name) {
                    return Err(Error::semantic_at(
                        *pos,
                        format!("procedure `{name}` used as a variable in `{}`", p.name),
                    ));
                }
                implicit.insert(
                    name.clone(),
                    VarInfo {
                        ty: implicit_type(name),
                        dims: Vec::new(),
                        scope: VarScope::Local,
                        coarray: false,
                    },
                );
            }
            Ok(())
        }
        Expr::Index(name, subs, pos) => {
            ensure_array(p, name, subs.len(), *pos, penv, env)?;
            for s in subs {
                check_expr(p, s, penv, env, implicit)?;
            }
            Ok(())
        }
        Expr::CoIndex(name, subs, image, pos) => {
            ensure_array(p, name, subs.len(), *pos, penv, env)?;
            ensure_coarray(p, name, *pos, penv)?;
            for s in subs {
                check_expr(p, s, penv, env, implicit)?;
            }
            check_expr(p, image, penv, env, implicit)
        }
        Expr::Call(name, _, pos) => Err(Error::semantic_at(
            *pos,
            format!("function call `{name}(...)` in expression position is outside the analyzed subset"),
        )),
        Expr::Bin(_, a, b, _) => {
            check_expr(p, a, penv, env, implicit)?;
            check_expr(p, b, penv, env, implicit)
        }
        Expr::Neg(a, _) => check_expr(p, a, penv, env, implicit),
    }
}

fn ensure_scalar(
    p: &ProcDecl,
    name: &str,
    pos: support::Pos,
    penv: &ProcEnv,
    implicit: &mut BTreeMap<String, VarInfo>,
) -> Result<()> {
    if let Some(info) = penv.get(name) {
        if info.is_array() {
            return Err(Error::semantic_at(
                pos,
                format!("array `{name}` used without subscripts as a scalar in `{}`", p.name),
            ));
        }
        return Ok(());
    }
    implicit.entry(name.to_string()).or_insert_with(|| VarInfo {
        ty: implicit_type(name),
        dims: Vec::new(),
        scope: VarScope::Local,
        coarray: false,
    });
    Ok(())
}

fn ensure_coarray(
    p: &ProcDecl,
    name: &str,
    pos: support::Pos,
    penv: &ProcEnv,
) -> Result<()> {
    match penv.get(name) {
        Some(info) if info.coarray => Ok(()),
        _ => Err(Error::semantic_at(
            pos,
            format!("`{name}` is coindexed but not declared as a coarray in `{}`", p.name),
        )),
    }
}

fn ensure_array(
    p: &ProcDecl,
    name: &str,
    nsubs: usize,
    pos: support::Pos,
    penv: &ProcEnv,
    env: &ProgramEnv,
) -> Result<()> {
    match penv.get(name) {
        Some(info) if info.is_array() => {
            if info.dims.len() != nsubs {
                return Err(Error::semantic_at(
                    pos,
                    format!(
                        "`{name}` has {} dimension(s) but is subscripted with {} in `{}`",
                        info.dims.len(),
                        nsubs,
                        p.name
                    ),
                ));
            }
            Ok(())
        }
        Some(_) => Err(Error::semantic_at(
            pos,
            format!("`{name}` is scalar but subscripted in `{}`", p.name),
        )),
        None => {
            if env.proc_names.contains(name) {
                Err(Error::semantic_at(
                    pos,
                    format!(
                        "function call `{name}(...)` in expression position is outside the analyzed subset"
                    ),
                ))
            } else {
                Err(Error::semantic_at(
                    pos,
                    format!("`{name}` subscripted but never declared in `{}`", p.name),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fortran;

    fn f(src: &str) -> Result<ProgramEnv> {
        analyze(&[fortran::parse("t.f", src).unwrap()])
    }

    #[test]
    fn resolves_fig1_environment() {
        let env = f("\
subroutine add
  integer, dimension(1:200, 1:200) :: a
  integer :: m, j
  do j = 1, m
    call p1(a, j)
  end do
end
subroutine p1(x, k)
  integer, dimension(1:200, 1:200) :: x
  integer k
  x(1, k) = 0
end
")
        .unwrap();
        let add = &env.proc_envs["add"];
        assert!(add.get("a").unwrap().is_array());
        assert_eq!(add.get("a").unwrap().scope, VarScope::Local);
        let p1 = &env.proc_envs["p1"];
        assert_eq!(p1.get("x").unwrap().scope, VarScope::Formal);
        assert_eq!(p1.get("k").unwrap().scope, VarScope::Formal);
    }

    #[test]
    fn common_globals_visible_everywhere() {
        let env = f("\
subroutine a
  double precision u(5, 64)
  common /cvar/ u
  u(1, 1) = 0.0
end
subroutine b
  double precision u(5, 64)
  common /cvar/ u
  u(2, 2) = 1.0
end
")
        .unwrap();
        assert_eq!(env.globals["u"].dims.len(), 2);
        assert_eq!(env.proc_envs["b"].get("u").unwrap().scope, VarScope::Global);
    }

    #[test]
    fn implicit_typing_rule() {
        assert_eq!(implicit_type("i"), TypeName::Integer);
        assert_eq!(implicit_type("n"), TypeName::Integer);
        assert_eq!(implicit_type("x"), TypeName::Real);
    }

    #[test]
    fn rejects_unknown_callee() {
        let err = f("subroutine s\n  call nowhere\nend\n").unwrap_err();
        assert!(err.to_string().contains("undefined procedure"), "{err}");
    }

    #[test]
    fn rejects_subscripting_a_scalar() {
        let err = f("subroutine s\n  integer x\n  x(1) = 0\nend\n").unwrap_err();
        assert!(err.to_string().contains("scalar but subscripted"), "{err}");
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let err = f("subroutine s\n  integer a(5, 5)\n  a(1) = 0\nend\n").unwrap_err();
        assert!(err.to_string().contains("2 dimension(s)"), "{err}");
    }

    #[test]
    fn rejects_duplicate_procedure() {
        let err = f("subroutine s\n  return\nend\nsubroutine s\n  return\nend\n").unwrap_err();
        assert!(err.to_string().contains("more than once"), "{err}");
    }

    #[test]
    fn rejects_duplicate_local() {
        let err = f("subroutine s\n  integer x\n  integer x\n  x = 1\nend\n").unwrap_err();
        assert!(err.to_string().contains("declared twice"), "{err}");
    }

    #[test]
    fn rejects_expression_call() {
        let err =
            f("subroutine s\n  integer x\n  x = foo(1)\nend\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("never declared") || msg.contains("expression position"), "{msg}");
    }

    #[test]
    fn rejects_conflicting_global_shapes() {
        let err = f("\
subroutine a
  double precision u(5)
  common /c/ u
  u(1) = 0.0
end
subroutine b
  double precision u(7)
  common /c/ u
  u(1) = 0.0
end
")
        .unwrap_err();
        assert!(err.to_string().contains("conflicting dimensions"), "{err}");
    }

    #[test]
    fn undeclared_loop_variable_gets_implicit_type() {
        let env = f("subroutine s\n  real a(10)\n  do i = 1, 10\n    a(i) = 0.0\n  end do\nend\n");
        assert!(env.is_ok());
    }
}
