//! Front ends: Fortran and C subsets → VH WHIRL.
//!
//! "OpenUH front ends (FE) are based on GNU technology ... These front ends
//! parse C/C++/Fortran programs ... and translate them into VHL WHIRL." This
//! crate is our from-scratch substitute: a shared lexer ([`lex`]), the two
//! parsers ([`fortran`], [`cparse`]) meeting at one AST ([`ast`]), semantic
//! analysis ([`sema`]), and AST→WHIRL lowering ([`lower`]).
//!
//! The one-call entry point is [`compile`]:
//!
//! ```
//! use frontend::{compile, SourceFile};
//! use whirl::Lang;
//!
//! let program = compile(&[SourceFile {
//!     name: "matrix.c".into(),
//!     text: "int a[20];\nvoid main() { int i; for (i = 0; i <= 7; i++) a[i] = i; }\n".into(),
//!     lang: Lang::C,
//! }])
//! .unwrap();
//! assert_eq!(program.procedure_count(), 1);
//! ```

pub mod ast;
pub mod cparse;
pub mod diag;
pub mod fortran;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod sema;

use support::Result;
use whirl::{Lang, Program};

/// One input source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// File name (drives the Dragon `File` column, e.g. `verify.f`).
    pub name: String,
    /// Full source text.
    pub text: String,
    /// Language.
    pub lang: Lang,
}

impl SourceFile {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, text: impl Into<String>, lang: Lang) -> Self {
        SourceFile { name: name.into(), text: text.into(), lang }
    }
}

/// Parses, checks, and lowers a set of source files into one VH-level
/// [`Program`]. Call [`whirl::lower::lower_program`] afterwards to reach the
/// H level where the IPA-based analysis operates.
pub fn compile(sources: &[SourceFile]) -> Result<Program> {
    let mut modules = Vec::with_capacity(sources.len());
    let mut langs = Vec::with_capacity(sources.len());
    for s in sources {
        let module = match s.lang {
            Lang::Fortran => fortran::parse(&s.name, &s.text)?,
            Lang::C => cparse::parse(&s.name, &s.text)?,
        };
        modules.push(module);
        langs.push(s.lang);
    }
    let env = sema::analyze(&modules)?;
    lower::lower_modules(&modules, &env, &langs)
}

/// Like [`compile`] but also lowers to H WHIRL and assigns the static data
/// layout — the state the paper's IPA extension sees. `layout_base` seeds
/// the `Mem_Loc` addresses (Fig. 9 shows `0x55599870`).
pub fn compile_to_h(sources: &[SourceFile], layout_base: u64) -> Result<Program> {
    let mut program = compile(sources)?;
    whirl::lower::lower_program(&mut program);
    program.assign_layout(layout_base);
    Ok(program)
}

/// The layout base used throughout the examples/tests, matching the hex
/// address shown for `aarr` in Fig. 9 of the paper.
pub const DEFAULT_LAYOUT_BASE: u64 = 0x5559_9870;

#[cfg(test)]
mod tests {
    use super::*;
    use whirl::{Level, Opr};

    #[test]
    fn compile_mixed_language_program() {
        let program = compile(&[
            SourceFile::new(
                "driver.f",
                "program main\n  real a(10)\n  common /c/ a\n  call fill\nend\n",
                Lang::Fortran,
            ),
            SourceFile::new(
                "fill.f",
                "subroutine fill\n  real a(10)\n  common /c/ a\n  integer i\n  do i = 1, 10\n    a(i) = 0.0\n  end do\nend\n",
                Lang::Fortran,
            ),
        ])
        .unwrap();
        assert_eq!(program.procedure_count(), 2);
        assert!(program.find_procedure("main").is_some());
        assert!(program.find_procedure("fill").is_some());
    }

    #[test]
    fn compile_to_h_lowers_and_lays_out() {
        let program = compile_to_h(
            &[SourceFile::new(
                "t.f",
                "subroutine s\n  real a(5)\n  common /c/ a\n  a(3) = 1.0\nend\n",
                Lang::Fortran,
            )],
            DEFAULT_LAYOUT_BASE,
        )
        .unwrap();
        let id = program.find_procedure("s").unwrap();
        let proc = program.procedure(id);
        assert_eq!(proc.level, Level::High);
        // Index shifted to zero-based: a(3) → 2.
        let tree = &proc.tree;
        let arr = tree
            .iter()
            .find(|&n| tree.node(n).operator == Opr::Array)
            .unwrap();
        assert_eq!(tree.eval_const(tree.node(arr).array_index_kid(0)), Some(2));
        // The global got an address.
        let sym = program.interner.get("a").unwrap();
        let st = program.symbols.find(sym).unwrap();
        assert_eq!(program.symbols.get(st).address, DEFAULT_LAYOUT_BASE);
    }

    #[test]
    fn parse_error_propagates() {
        let err = compile(&[SourceFile::new("bad.f", "subroutine\n", Lang::Fortran)]);
        assert!(err.is_err());
    }

    #[test]
    fn sema_error_propagates() {
        let err = compile(&[SourceFile::new(
            "bad.f",
            "subroutine s\n  call nowhere\nend\n",
            Lang::Fortran,
        )]);
        assert!(err.is_err());
    }
}
