//! Front ends: Fortran and C subsets → VH WHIRL.
//!
//! "OpenUH front ends (FE) are based on GNU technology ... These front ends
//! parse C/C++/Fortran programs ... and translate them into VHL WHIRL." This
//! crate is our from-scratch substitute: a shared lexer ([`lex`]), the two
//! parsers ([`fortran`], [`cparse`]) meeting at one AST ([`ast`]), semantic
//! analysis ([`sema`]), and AST→WHIRL lowering ([`lower`]).
//!
//! The one-call entry point is [`compile`]:
//!
//! ```
//! use frontend::{compile, SourceFile};
//! use whirl::Lang;
//!
//! let program = compile(&[SourceFile {
//!     name: "matrix.c".into(),
//!     text: "int a[20];\nvoid main() { int i; for (i = 0; i <= 7; i++) a[i] = i; }\n".into(),
//!     lang: Lang::C,
//! }])
//! .unwrap();
//! assert_eq!(program.procedure_count(), 1);
//! ```

pub mod ast;
pub mod cparse;
pub mod diag;
pub mod fortran;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod sema;

use ast::{Module, ProcDecl, Stmt};
use std::collections::BTreeSet;
use support::{Error, Result};
use whirl::{Lang, Program};

/// One input source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// File name (drives the Dragon `File` column, e.g. `verify.f`).
    pub name: String,
    /// Full source text.
    pub text: String,
    /// Language.
    pub lang: Lang,
}

impl SourceFile {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, text: impl Into<String>, lang: Lang) -> Self {
        SourceFile { name: name.into(), text: text.into(), lang }
    }
}

impl From<&SourceFile> for SourceFile {
    fn from(s: &SourceFile) -> Self {
        s.clone()
    }
}

impl support::persist::Persist for SourceFile {
    fn save(&self, w: &mut support::persist::ByteWriter) {
        w.str(&self.name);
        w.u8(match self.lang {
            Lang::C => 0,
            Lang::Fortran => 1,
        });
        w.str(&self.text);
    }
    fn load(r: &mut support::persist::ByteReader<'_>) -> Result<Self> {
        let name = r.str()?;
        let lang = match r.u8()? {
            0 => Lang::C,
            1 => Lang::Fortran,
            t => return Err(Error::Format(format!("invalid Lang tag {t}"))),
        };
        let text = r.str()?;
        Ok(SourceFile { name, text, lang })
    }
}

/// One source file after recovering parsing but before cross-file assembly
/// (stubbing, semantic analysis, lowering). This is the unit the incremental
/// session caches per file: parsing depends only on the file itself, while
/// everything downstream mixes files together.
#[derive(Debug, Clone)]
pub struct ParsedSource {
    /// The (possibly partially recovered) module.
    pub module: Module,
    /// The language the file was parsed as.
    pub lang: Lang,
    /// Diagnostics describing anything the parser had to drop.
    pub diags: Vec<Error>,
}

/// Parses one source file with recovery. Never fails: an unparseable file
/// yields an empty module plus the diagnostics explaining what was lost.
pub fn parse_source_with_recovery(s: &SourceFile) -> ParsedSource {
    let _span = support::obs::span_arg("frontend.parse", || s.name.clone());
    let (module, diags) = match s.lang {
        Lang::Fortran => fortran::parse_with_recovery(&s.name, &s.text),
        Lang::C => cparse::parse_with_recovery(&s.name, &s.text),
    };
    ParsedSource { module, lang: s.lang, diags }
}

/// Assembles pre-parsed modules into a program with the recovery semantics
/// of [`compile_with_recovery`]: undefined callees are stubbed, procedures
/// that fail semantic checking are gutted, and every incident is reported.
/// Fails only when no procedure at all survived parsing, or on a structural
/// error that cannot be pinned to one procedure.
pub fn assemble_with_recovery(parsed: Vec<ParsedSource>) -> Result<(Program, Vec<Error>)> {
    let mut modules = Vec::with_capacity(parsed.len());
    let mut langs = Vec::with_capacity(parsed.len());
    let mut diags = Vec::new();
    for p in parsed {
        diags.extend(p.diags);
        modules.push(p.module);
        langs.push(p.lang);
    }
    if modules.iter().all(|m| m.procs.is_empty()) {
        // Nothing survived: degrading further would mean analyzing an empty
        // program, which only hides the failure. Surface the first cause.
        return Err(diags
            .into_iter()
            .next()
            .unwrap_or_else(|| Error::semantic("no procedures found in any source file")));
    }
    let _span = support::obs::span("frontend.assemble");
    stub_undefined_callees(&mut modules, &mut diags);
    let env = {
        let _sema = support::obs::span("frontend.sema");
        loop {
            match sema::analyze(&modules) {
                Ok(env) => break env,
                Err(e) => {
                    if !degrade_offender(&mut modules, &e, &mut diags) {
                        return Err(e);
                    }
                }
            }
        }
    };
    let _lower = support::obs::span("frontend.lower");
    let program = lower::lower_modules(&modules, &env, &langs)?;
    Ok((program, diags))
}

/// Like [`assemble_with_recovery`] but also lowers to H WHIRL and assigns
/// the static data layout.
pub fn assemble_to_h_with_recovery(
    parsed: Vec<ParsedSource>,
    layout_base: u64,
) -> Result<(Program, Vec<Error>)> {
    let (mut program, diags) = assemble_with_recovery(parsed)?;
    whirl::lower::lower_program(&mut program);
    program.assign_layout(layout_base);
    Ok((program, diags))
}

/// Parses, checks, and lowers a set of source files into one VH-level
/// [`Program`]. Call [`whirl::lower::lower_program`] afterwards to reach the
/// H level where the IPA-based analysis operates.
pub fn compile(sources: &[SourceFile]) -> Result<Program> {
    let mut modules = Vec::with_capacity(sources.len());
    let mut langs = Vec::with_capacity(sources.len());
    for s in sources {
        let module = match s.lang {
            Lang::Fortran => fortran::parse(&s.name, &s.text)?,
            Lang::C => cparse::parse(&s.name, &s.text)?,
        };
        modules.push(module);
        langs.push(s.lang);
    }
    let env = sema::analyze(&modules)?;
    lower::lower_modules(&modules, &env, &langs)
}

/// Like [`compile`] but also lowers to H WHIRL and assigns the static data
/// layout — the state the paper's IPA extension sees. `layout_base` seeds
/// the `Mem_Loc` addresses (Fig. 9 shows `0x55599870`).
pub fn compile_to_h(sources: &[SourceFile], layout_base: u64) -> Result<Program> {
    let mut program = compile(sources)?;
    whirl::lower::lower_program(&mut program);
    program.assign_layout(layout_base);
    Ok(program)
}

/// Like [`compile`], but degrades instead of failing wherever a failure can
/// be contained: parser diagnostics drop only the offending statements or
/// units, calls to procedures that did not survive parsing are satisfied by
/// empty stub definitions, and a procedure whose body fails semantic
/// checking is gutted to an empty shell. Returns the program plus every
/// diagnostic describing what was lost. Fails only when no procedure at all
/// survives, or on a structural error that cannot be pinned to one
/// procedure.
pub fn compile_with_recovery(sources: &[SourceFile]) -> Result<(Program, Vec<Error>)> {
    assemble_with_recovery(sources.iter().map(parse_source_with_recovery).collect())
}

/// Like [`compile_to_h`] with the recovery semantics of
/// [`compile_with_recovery`].
pub fn compile_to_h_with_recovery(
    sources: &[SourceFile],
    layout_base: u64,
) -> Result<(Program, Vec<Error>)> {
    let (mut program, diags) = compile_with_recovery(sources)?;
    whirl::lower::lower_program(&mut program);
    program.assign_layout(layout_base);
    Ok((program, diags))
}

/// Satisfies calls to procedures lost during recovery (or simply never
/// defined) with empty stub definitions, so one unparseable unit doesn't
/// take every caller down with it. Stubs have no formals and no effects —
/// [`ipa`] propagation treats them as pure no-ops.
fn stub_undefined_callees(modules: &mut [Module], diags: &mut Vec<Error>) {
    let defined: BTreeSet<String> = modules
        .iter()
        .flat_map(|m| m.procs.iter().map(|p| p.name.clone()))
        .collect();
    for mi in 0..modules.len() {
        let mut missing: Vec<(String, support::Pos)> = Vec::new();
        for p in &modules[mi].procs {
            collect_missing_callees(&p.body, &defined, &mut missing);
        }
        for (name, pos) in missing {
            if modules.iter().any(|m| m.procs.iter().any(|p| p.name == name)) {
                continue; // already defined or stubbed by an earlier caller
            }
            diags.push(Error::semantic_at(
                pos,
                format!("call to undefined procedure `{name}`; replaced by an empty stub"),
            ));
            modules[mi].procs.push(ProcDecl {
                name,
                formals: Vec::new(),
                decls: Vec::new(),
                body: Vec::new(),
                pos,
                is_entry: false,
            });
        }
    }
}

fn collect_missing_callees(
    body: &[Stmt],
    defined: &BTreeSet<String>,
    missing: &mut Vec<(String, support::Pos)>,
) {
    for s in body {
        match s {
            Stmt::Call(name, _, pos) => {
                if !defined.contains(name) && !missing.iter().any(|(n, _)| n == name) {
                    missing.push((name.clone(), *pos));
                }
            }
            Stmt::Do { body, .. } => collect_missing_callees(body, defined, missing),
            Stmt::If { then_body, else_body, .. } => {
                collect_missing_callees(then_body, defined, missing);
                collect_missing_callees(else_body, defined, missing);
            }
            Stmt::Assign(..) | Stmt::Return(_) => {}
        }
    }
}

/// The first backtick-quoted name in a diagnostic message.
fn quoted_name(msg: &str) -> Option<&str> {
    let start = msg.find('`')? + 1;
    let end = msg[start..].find('`')? + start;
    Some(&msg[start..end])
}

/// Degrades whatever construct a semantic error points at: the second
/// definition of a duplicated procedure is removed, a conflicting global
/// redeclaration is dropped, and any other attributable error guts the
/// enclosing procedure to an empty shell (kept so callers still resolve).
/// Returns `false` when the error cannot be attributed — the caller then
/// fails hard rather than looping.
fn degrade_offender(modules: &mut [Module], e: &Error, diags: &mut Vec<Error>) -> bool {
    let Some(pos) = e.pos() else { return false };
    let msg = e.to_string();
    let name = quoted_name(&msg).map(str::to_string);

    // A duplicated procedure: remove the definition the error points at.
    if msg.contains("more than once") {
        if let Some(name) = &name {
            for m in modules.iter_mut() {
                if let Some(i) =
                    m.procs.iter().position(|p| &p.name == name && p.pos == pos)
                {
                    m.procs.remove(i);
                    diags.push(Error::degraded(
                        name.clone(),
                        "sema",
                        format!("duplicate definition at {pos} dropped"),
                    ));
                    return true;
                }
            }
        }
        return false;
    }

    // A conflicting global redeclaration: drop the redeclaration.
    if msg.contains("conflicting dimensions") {
        if let Some(name) = &name {
            for m in modules.iter_mut() {
                if let Some(i) =
                    m.globals.iter().position(|g| &g.name == name && g.pos == pos)
                {
                    m.globals.remove(i);
                    diags.push(Error::degraded(
                        name.clone(),
                        "sema",
                        format!("conflicting redeclaration at {pos} dropped"),
                    ));
                    return true;
                }
            }
        }
        // The conflict may come from a unit-level declaration instead; fall
        // through to gutting the enclosing procedure.
    }

    // Otherwise: gut the procedure enclosing the error position. Candidates
    // are the procedures starting at or before the error line; the closest
    // non-empty one across all modules is the best attribution we have.
    let mut best: Option<(usize, usize, u32)> = None;
    for (mi, m) in modules.iter().enumerate() {
        for (pi, p) in m.procs.iter().enumerate() {
            if p.pos.line > pos.line || (p.body.is_empty() && p.decls.is_empty()) {
                continue;
            }
            let dist = pos.line - p.pos.line;
            if best.is_none_or(|(_, _, d)| dist < d) {
                best = Some((mi, pi, dist));
            }
        }
    }
    match best {
        Some((mi, pi, _)) => {
            let p = &mut modules[mi].procs[pi];
            diags.push(Error::degraded(
                p.name.clone(),
                "sema",
                format!("procedure emptied: {msg}"),
            ));
            p.body.clear();
            p.decls.clear();
            true
        }
        None => false,
    }
}

/// The layout base used throughout the examples/tests, matching the hex
/// address shown for `aarr` in Fig. 9 of the paper.
pub const DEFAULT_LAYOUT_BASE: u64 = 0x5559_9870;

#[cfg(test)]
mod tests {
    use super::*;
    use whirl::{Level, Opr};

    #[test]
    fn compile_mixed_language_program() {
        let program = compile(&[
            SourceFile::new(
                "driver.f",
                "program main\n  real a(10)\n  common /c/ a\n  call fill\nend\n",
                Lang::Fortran,
            ),
            SourceFile::new(
                "fill.f",
                "subroutine fill\n  real a(10)\n  common /c/ a\n  integer i\n  do i = 1, 10\n    a(i) = 0.0\n  end do\nend\n",
                Lang::Fortran,
            ),
        ])
        .unwrap();
        assert_eq!(program.procedure_count(), 2);
        assert!(program.find_procedure("main").is_some());
        assert!(program.find_procedure("fill").is_some());
    }

    #[test]
    fn compile_to_h_lowers_and_lays_out() {
        let program = compile_to_h(
            &[SourceFile::new(
                "t.f",
                "subroutine s\n  real a(5)\n  common /c/ a\n  a(3) = 1.0\nend\n",
                Lang::Fortran,
            )],
            DEFAULT_LAYOUT_BASE,
        )
        .unwrap();
        let id = program.find_procedure("s").unwrap();
        let proc = program.procedure(id);
        assert_eq!(proc.level, Level::High);
        // Index shifted to zero-based: a(3) → 2.
        let tree = &proc.tree;
        let arr = tree
            .iter()
            .find(|&n| tree.node(n).operator == Opr::Array)
            .unwrap();
        assert_eq!(tree.eval_const(tree.node(arr).array_index_kid(0)), Some(2));
        // The global got an address.
        let sym = program.interner.get("a").unwrap();
        let st = program.symbols.find(sym).unwrap();
        assert_eq!(program.symbols.get(st).address, DEFAULT_LAYOUT_BASE);
    }

    #[test]
    fn recovery_compiles_healthy_units_past_a_broken_one() {
        let (program, diags) = compile_with_recovery(&[SourceFile::new(
            "mix.f",
            "\
program main
  call good
  call broken
end
subroutine good
  real a(10)
  common /c/ a
  a(1) = 0.0
end
subroutine broken
  integer i
  i = = 1
end
",
            Lang::Fortran,
        )])
        .unwrap();
        assert_eq!(program.procedure_count(), 3);
        assert!(program.find_procedure("good").is_some());
        assert!(program.find_procedure("broken").is_some());
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn recovery_stubs_callees_lost_to_parse_errors() {
        // `helper` fails to parse entirely (bad header) — the call in main
        // must still resolve via a stub.
        let (program, diags) = compile_with_recovery(&[SourceFile::new(
            "stub.f",
            "\
program main
  call helper
end
subroutine 5helper
  integer i
end
",
            Lang::Fortran,
        )])
        .unwrap();
        assert!(program.find_procedure("helper").is_some());
        assert!(diags.iter().any(|d| d.to_string().contains("empty stub")), "{diags:?}");
    }

    #[test]
    fn recovery_guts_a_semantically_broken_procedure() {
        let (program, diags) = compile_with_recovery(&[SourceFile::new(
            "sema.f",
            "\
subroutine fine
  real a(10)
  a(1) = 0.0
end
subroutine wrong
  integer x
  x(3) = 1
end
",
            Lang::Fortran,
        )])
        .unwrap();
        assert_eq!(program.procedure_count(), 2);
        assert!(
            diags.iter().any(|d| d.to_string().contains("wrong")),
            "gutting must be reported: {diags:?}"
        );
    }

    #[test]
    fn recovery_with_nothing_salvageable_fails() {
        let err = compile_with_recovery(&[SourceFile::new(
            "bad.f",
            "subroutine\n",
            Lang::Fortran,
        )]);
        assert!(err.is_err());
    }

    #[test]
    fn recovery_on_clean_input_matches_strict_compile() {
        let src = "subroutine s\n  real a(5)\n  common /c/ a\n  a(3) = 1.0\nend\n";
        let strict =
            compile_to_h(&[SourceFile::new("t.f", src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
                .unwrap();
        let (recovered, diags) = compile_to_h_with_recovery(
            &[SourceFile::new("t.f", src, Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        )
        .unwrap();
        assert!(diags.is_empty());
        assert_eq!(strict.procedure_count(), recovered.procedure_count());
    }

    #[test]
    fn split_parse_then_assemble_matches_one_shot_recovery() {
        let files = [
            SourceFile::new(
                "driver.f",
                "program main\n  real a(10)\n  common /c/ a\n  call fill\nend\n",
                Lang::Fortran,
            ),
            SourceFile::new(
                "broken.f",
                "subroutine fill\n  real a(10)\n  common /c/ a\n  a(1) = = 0.0\nend\n",
                Lang::Fortran,
            ),
        ];
        let (one_shot, d1) = compile_with_recovery(&files).unwrap();
        let parsed: Vec<ParsedSource> =
            files.iter().map(parse_source_with_recovery).collect();
        assert!(parsed[1].diags.iter().any(|d| d.pos().is_some()));
        let (split, d2) = assemble_with_recovery(parsed).unwrap();
        assert_eq!(one_shot.procedure_count(), split.procedure_count());
        assert_eq!(d1.len(), d2.len());
    }

    #[test]
    fn parse_error_propagates() {
        let err = compile(&[SourceFile::new("bad.f", "subroutine\n", Lang::Fortran)]);
        assert!(err.is_err());
    }

    #[test]
    fn sema_error_propagates() {
        let err = compile(&[SourceFile::new(
            "bad.f",
            "subroutine s\n  call nowhere\nend\n",
            Lang::Fortran,
        )]);
        assert!(err.is_err());
    }
}
