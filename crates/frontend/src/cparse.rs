//! C (subset) parser.
//!
//! Grammar covered — enough for the paper's `matrix.c` example (Fig. 10) and
//! C-flavoured synthetic workloads:
//!
//! ```text
//! file      := { global-decl | func }
//! global-decl := type declarator {',' declarator} ';'
//! declarator  := ['*'] name { '[' [INT] ']' }
//! func      := ('void' | type) name '(' params ')' '{' { decl ';' } { stmt } '}'
//! params    := [ param {',' param} ];  param := type ['*'] name { '[' [INT] ']' }
//! stmt      := 'for' '(' name '=' expr ';' name ('<' | '<=') expr ';' incr ')' body
//!            | 'if' '(' expr ')' body [ 'else' body ]
//!            | 'return' [expr] ';'
//!            | lvalue '=' expr ';'  |  name '(' args ')' ';'
//! incr      := name '++' | name '+=' INT | name '=' name '+' INT
//! body      := '{' { stmt } '}' | stmt
//! ```

use crate::ast::{AstDim, BinOp, Expr, LValue, Module, ProcDecl, Stmt, TypeName, VarDecl};
use crate::lex::{lex, LexMode, Tok};
use crate::parse::{arg_list, expr, Cursor, IndexStyle};
use support::{Error, Pos, Result};

/// Parses one C source file into a [`Module`], failing on the first
/// diagnostic.
pub fn parse(file: &str, src: &str) -> Result<Module> {
    let (module, mut diags) = parse_with_recovery(file, src);
    if diags.is_empty() {
        Ok(module)
    } else {
        Err(diags.remove(0))
    }
}

/// Most diagnostics kept per file before recovery gives up collecting.
pub const MAX_DIAGS: usize = 20;

/// Error-recovering variant of [`parse`]. A syntax error inside a function
/// body drops the offending statement and resynchronizes just past the next
/// `;` at the same brace depth (statement-boundary sync); an error in a
/// declaration or function header skips to the next plausible top-level
/// start. Never fails — worst case is an empty module plus diagnostics.
pub fn parse_with_recovery(file: &str, src: &str) -> (Module, Vec<Error>) {
    let mut module = Module::new(file);
    let toks = match lex(src, LexMode::C) {
        Ok(t) => t,
        // Lex errors poison the token stream wholesale; nothing to recover.
        Err(e) => return (module, vec![e]),
    };
    let mut c = Cursor::new(toks);
    let mut diags = Vec::new();
    while !c.at_eof() {
        match parse_top(&mut c, &mut module, &mut diags) {
            Ok(()) => {}
            Err(e) => {
                if diags.len() >= MAX_DIAGS {
                    break;
                }
                diags.push(e);
                if diags.len() >= MAX_DIAGS {
                    break;
                }
                sync_top(&mut c);
            }
        }
    }
    (module, diags)
}

/// Skips to the next plausible top-level construct: a type keyword or
/// `void` at brace depth zero. A `}` seen at depth zero closes the body we
/// were inside and is consumed.
fn sync_top(c: &mut Cursor) {
    let mut depth: u32 = 0;
    while !c.at_eof() {
        match c.peek() {
            Tok::LBrace => depth += 1,
            Tok::RBrace => depth = depth.saturating_sub(1),
            Tok::Ident(s)
                if depth == 0
                    && matches!(
                        s.as_str(),
                        "void" | "int" | "long" | "float" | "double" | "char"
                    ) =>
            {
                return;
            }
            _ => {}
        }
        c.bump();
    }
}

/// Statement-boundary sync: skips to just past the next `;` at the current
/// brace depth, or stops before the `}` that closes the enclosing block.
fn sync_stmt(c: &mut Cursor) {
    let mut depth: u32 = 0;
    loop {
        match c.peek() {
            Tok::Eof => return,
            Tok::Semi if depth == 0 => {
                c.bump();
                return;
            }
            Tok::RBrace => {
                if depth == 0 {
                    return; // leave it for the block close
                }
                depth -= 1;
                c.bump();
            }
            Tok::LBrace => {
                depth += 1;
                c.bump();
            }
            _ => {
                c.bump();
            }
        }
    }
}

fn type_name(c: &mut Cursor) -> Option<TypeName> {
    let t = match c.peek() {
        Tok::Ident(s) => match s.as_str() {
            "int" => TypeName::Integer,
            "long" => TypeName::Integer8,
            "float" => TypeName::Real,
            "double" => TypeName::Double,
            "char" => TypeName::Character,
            _ => return None,
        },
        _ => return None,
    };
    c.bump();
    Some(t)
}

fn parse_top(c: &mut Cursor, module: &mut Module, diags: &mut Vec<Error>) -> Result<()> {
    let pos = c.pos();
    let is_void = c.eat_kw("void");
    let ty = if is_void {
        None
    } else {
        match type_name(c) {
            Some(t) => Some(t),
            None => {
                return Err(Error::parse(
                    pos,
                    format!("expected a type or `void`, found {:?}", c.peek()),
                ))
            }
        }
    };
    let name = c.ident("declarator name")?;
    if *c.peek() == Tok::LParen {
        // Function definition.
        c.bump();
        let (formals, mut decls) = parse_params(c)?;
        c.expect(&Tok::LBrace, "`{` starting function body")?;
        if let Err(e) = parse_local_decls(c, &mut decls) {
            diags.push(e);
            if diags.len() >= MAX_DIAGS {
                return Err(Error::parse(c.pos(), "too many syntax errors"));
            }
            sync_stmt(c);
        }
        let body = parse_block_rest(c, diags)?;
        module.procs.push(ProcDecl {
            is_entry: name == "main",
            name,
            formals,
            decls,
            body,
            pos,
        });
        return Ok(());
    }
    // Global variable declaration(s).
    let ty = ty.ok_or_else(|| Error::parse(pos, "`void` variable".to_string()))?;
    let mut name = name;
    loop {
        let dims = parse_c_dims(c)?;
        module.globals.push(VarDecl { name: name.clone(), ty, dims, coarray: false, pos });
        if c.eat(&Tok::Comma) {
            name = c.ident("declarator name")?;
            continue;
        }
        c.expect(&Tok::Semi, "`;` after declaration")?;
        return Ok(());
    }
}

/// Parses `[n][m]...` suffixes into source-order dims (C arrays are 0-based).
fn parse_c_dims(c: &mut Cursor) -> Result<Vec<AstDim>> {
    let mut dims = Vec::new();
    while c.eat(&Tok::LBracket) {
        if c.eat(&Tok::RBracket) {
            dims.push(AstDim::Unknown);
        } else {
            let n = c.int("array extent")?;
            c.expect(&Tok::RBracket, "`]`")?;
            dims.push(AstDim::Range(0, n - 1));
        }
    }
    Ok(dims)
}

fn parse_params(c: &mut Cursor) -> Result<(Vec<String>, Vec<VarDecl>)> {
    let mut formals = Vec::new();
    let mut decls = Vec::new();
    if c.eat(&Tok::RParen) {
        return Ok((formals, decls));
    }
    if c.eat_kw("void") {
        c.expect(&Tok::RParen, "`)` after void")?;
        return Ok((formals, decls));
    }
    loop {
        let pos = c.pos();
        let ty = type_name(c)
            .ok_or_else(|| Error::parse(pos, "expected parameter type".to_string()))?;
        let is_ptr = c.eat(&Tok::Star);
        let name = c.ident("parameter name")?;
        let mut dims = parse_c_dims(c)?;
        if is_ptr && dims.is_empty() {
            dims.push(AstDim::Unknown); // `double *x` ≡ `double x[]`
        }
        formals.push(name.clone());
        decls.push(VarDecl { name, ty, dims, coarray: false, pos });
        if c.eat(&Tok::RParen) {
            return Ok((formals, decls));
        }
        c.expect(&Tok::Comma, "`,` in parameter list")?;
    }
}

fn parse_local_decls(c: &mut Cursor, decls: &mut Vec<VarDecl>) -> Result<()> {
    loop {
        // A declaration starts with a type keyword.
        let save = matches!(c.peek(), Tok::Ident(s)
            if matches!(s.as_str(), "int" | "long" | "float" | "double" | "char"));
        if !save {
            return Ok(());
        }
        let pos = c.pos();
        let Some(ty) = type_name(c) else {
            return Err(Error::parse(pos, "expected a type keyword".to_string()));
        };
        loop {
            let is_ptr = c.eat(&Tok::Star);
            let name = c.ident("local name")?;
            let mut dims = parse_c_dims(c)?;
            if is_ptr && dims.is_empty() {
                dims.push(AstDim::Unknown);
            }
            // Optional initializer: `int i = 0`.
            if c.eat(&Tok::Assign) {
                let _ = expr(c, IndexStyle::Bracket)?;
            }
            decls.push(VarDecl { name, ty, dims, coarray: false, pos });
            if !c.eat(&Tok::Comma) {
                break;
            }
        }
        c.expect(&Tok::Semi, "`;` after declaration")?;
    }
}

/// Parses statements until the closing `}` (which is consumed). A bad
/// statement is dropped and recovery resumes at the next boundary.
fn parse_block_rest(c: &mut Cursor, diags: &mut Vec<Error>) -> Result<Vec<Stmt>> {
    let mut out = Vec::new();
    loop {
        if c.eat(&Tok::RBrace) {
            return Ok(out);
        }
        if c.at_eof() {
            return Err(Error::parse(c.pos(), "unexpected end of file in block".to_string()));
        }
        match parse_stmt(c, diags) {
            Ok(s) => out.push(s),
            Err(e) => {
                diags.push(e);
                if diags.len() >= MAX_DIAGS {
                    return Err(Error::parse(c.pos(), "too many syntax errors"));
                }
                sync_stmt(c);
            }
        }
    }
}

fn parse_body(c: &mut Cursor, diags: &mut Vec<Error>) -> Result<Vec<Stmt>> {
    if c.eat(&Tok::LBrace) {
        parse_block_rest(c, diags)
    } else {
        Ok(vec![parse_stmt(c, diags)?])
    }
}

fn parse_stmt(c: &mut Cursor, diags: &mut Vec<Error>) -> Result<Stmt> {
    let pos = c.pos();
    if c.eat_kw("for") {
        return parse_for(c, pos, diags);
    }
    if c.eat_kw("if") {
        c.expect(&Tok::LParen, "`(` after if")?;
        let cond = expr(c, IndexStyle::Bracket)?;
        c.expect(&Tok::RParen, "`)` after condition")?;
        let then_body = parse_body(c, diags)?;
        let else_body = if c.eat_kw("else") { parse_body(c, diags)? } else { Vec::new() };
        return Ok(Stmt::If { cond, then_body, else_body, pos });
    }
    if c.eat_kw("return") {
        if !c.eat(&Tok::Semi) {
            let _ = expr(c, IndexStyle::Bracket)?;
            c.expect(&Tok::Semi, "`;` after return value")?;
        }
        return Ok(Stmt::Return(pos));
    }
    // Assignment or call statement.
    let name = c.ident("statement head")?;
    if *c.peek() == Tok::LParen {
        c.bump();
        let args = arg_list(c, IndexStyle::Bracket)?;
        c.expect(&Tok::Semi, "`;` after call")?;
        return Ok(Stmt::Call(name, args, pos));
    }
    let lv = if *c.peek() == Tok::LBracket {
        let mut subs = Vec::new();
        while c.eat(&Tok::LBracket) {
            subs.push(expr(c, IndexStyle::Bracket)?);
            c.expect(&Tok::RBracket, "`]`")?;
        }
        LValue::Elem(name, subs, pos)
    } else {
        LValue::Var(name, pos)
    };
    // `x += e` sugar.
    if c.eat(&Tok::PlusEq) {
        let rhs = expr(c, IndexStyle::Bracket)?;
        c.expect(&Tok::Semi, "`;` after assignment")?;
        let read_back = lv_to_expr(&lv, pos);
        return Ok(Stmt::Assign(
            lv,
            Expr::Bin(BinOp::Add, Box::new(read_back), Box::new(rhs), pos),
            pos,
        ));
    }
    if c.eat(&Tok::PlusPlus) {
        c.expect(&Tok::Semi, "`;` after increment")?;
        let read_back = lv_to_expr(&lv, pos);
        return Ok(Stmt::Assign(
            lv,
            Expr::Bin(BinOp::Add, Box::new(read_back), Box::new(Expr::Int(1, pos)), pos),
            pos,
        ));
    }
    c.expect(&Tok::Assign, "`=` in assignment")?;
    let rhs = expr(c, IndexStyle::Bracket)?;
    c.expect(&Tok::Semi, "`;` after assignment")?;
    Ok(Stmt::Assign(lv, rhs, pos))
}

fn lv_to_expr(lv: &LValue, pos: Pos) -> Expr {
    match lv {
        LValue::Var(n, _) => Expr::Var(n.clone(), pos),
        LValue::Elem(n, subs, _) => Expr::Index(n.clone(), subs.clone(), pos),
        // C has no coarrays; unreachable in this parser.
        LValue::CoElem(n, subs, image, _) => {
            Expr::CoIndex(n.clone(), subs.clone(), image.clone(), pos)
        }
    }
}

fn parse_for(c: &mut Cursor, pos: Pos, diags: &mut Vec<Error>) -> Result<Stmt> {
    c.expect(&Tok::LParen, "`(` after for")?;
    let var = c.ident("loop variable")?;
    c.expect(&Tok::Assign, "`=` in for init")?;
    let lo = expr(c, IndexStyle::Bracket)?;
    c.expect(&Tok::Semi, "`;` after for init")?;
    let var2 = c.ident("loop variable in test")?;
    if var2 != var {
        return Err(Error::parse(
            pos,
            format!("for-loop test must use `{var}`, found `{var2}`"),
        ));
    }
    let strict = if c.eat(&Tok::Le) {
        false
    } else if c.eat(&Tok::Lt) {
        true
    } else {
        return Err(Error::parse(c.pos(), "expected `<` or `<=` in for test".to_string()));
    };
    let mut hi = expr(c, IndexStyle::Bracket)?;
    if strict {
        // `i < n` ⇒ inclusive upper bound `n - 1` (folded when constant).
        hi = match hi {
            Expr::Int(v, p) => Expr::Int(v - 1, p),
            e => {
                let p = e.pos();
                Expr::Bin(BinOp::Sub, Box::new(e), Box::new(Expr::Int(1, p)), p)
            }
        };
    }
    c.expect(&Tok::Semi, "`;` after for test")?;
    let var3 = c.ident("loop variable in increment")?;
    if var3 != var {
        return Err(Error::parse(
            pos,
            format!("for-loop increment must use `{var}`, found `{var3}`"),
        ));
    }
    let step = if c.eat(&Tok::PlusPlus) {
        1
    } else if c.eat(&Tok::PlusEq) {
        c.int("step")?
    } else if c.eat(&Tok::Assign) {
        // `i = i + k`
        let v = c.ident("loop variable")?;
        if v != var {
            return Err(Error::parse(pos, "unsupported for-loop increment".to_string()));
        }
        c.expect(&Tok::Plus, "`+` in increment")?;
        c.int("step")?
    } else {
        return Err(Error::parse(c.pos(), "unsupported for-loop increment".to_string()));
    };
    c.expect(&Tok::RParen, "`)` closing for header")?;
    let body = parse_body(c, diags)?;
    Ok(Stmt::Do { var, lo, hi, step, body, pos })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reconstruction of the paper's Fig. 10 `matrix.c`: aarr defined twice
    /// (0..7 and 1..8) and used three times (0..7 twice, 2..6:2 once).
    const MATRIX_C: &str = "\
int aarr[20];

void main() {
    int i;
    for (i = 0; i <= 7; i++)
        aarr[i] = i;
    for (i = 0; i < 8; i++)
        aarr[i + 1] = aarr[i] + aarr[i];
    for (i = 2; i <= 6; i += 2)
        aarr[i] = aarr[i] + 1;
}
";

    #[test]
    fn parses_matrix_c() {
        let m = parse("matrix.c", MATRIX_C).unwrap();
        assert_eq!(m.globals.len(), 1);
        assert_eq!(m.globals[0].name, "aarr");
        assert_eq!(m.globals[0].dims, vec![AstDim::Range(0, 19)]);
        let main = m.find_proc("main").unwrap();
        assert!(main.is_entry);
        assert_eq!(main.body.len(), 3);
    }

    #[test]
    fn for_lt_normalizes_upper_bound() {
        let m = parse("matrix.c", MATRIX_C).unwrap();
        let main = m.find_proc("main").unwrap();
        match &main.body[1] {
            Stmt::Do { hi, .. } => assert_eq!(*hi, Expr::Int(7, hi.pos())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strided_for() {
        let m = parse("matrix.c", MATRIX_C).unwrap();
        let main = m.find_proc("main").unwrap();
        match &main.body[2] {
            Stmt::Do { lo, hi, step, .. } => {
                assert_eq!(*lo, Expr::Int(2, lo.pos()));
                assert_eq!(*hi, Expr::Int(6, hi.pos()));
                assert_eq!(*step, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multidim_global() {
        let src = "double u[64][65][65][5];\nvoid f() { int i; u[1][2][3][4] = 0.0; }\n";
        let m = parse("rhs.c", src).unwrap();
        assert_eq!(
            m.globals[0].dims,
            vec![
                AstDim::Range(0, 63),
                AstDim::Range(0, 64),
                AstDim::Range(0, 64),
                AstDim::Range(0, 4)
            ]
        );
    }

    #[test]
    fn params_including_array_and_pointer() {
        let src = "void f(double x[], double *y, int n) { x[0] = y[0]; }\n";
        let m = parse("f.c", src).unwrap();
        let f = m.find_proc("f").unwrap();
        assert_eq!(f.formals, vec!["x", "y", "n"]);
        assert_eq!(f.decls[0].dims, vec![AstDim::Unknown]);
        assert_eq!(f.decls[1].dims, vec![AstDim::Unknown]);
        assert!(f.decls[2].dims.is_empty());
    }

    #[test]
    fn call_statement_passes_array() {
        let src = "double a[10];\nvoid g(double x[]) { x[0] = 1.0; }\nvoid main() { g(a); }\n";
        let m = parse("c.c", src).unwrap();
        let main = m.find_proc("main").unwrap();
        assert!(matches!(&main.body[0], Stmt::Call(n, args, _)
            if n == "g" && matches!(&args[0], Expr::Var(v, _) if v == "a")));
    }

    #[test]
    fn if_else_braces_and_single_statement() {
        let src = "void f() { int i; if (i < 3) i = 1; else { i = 2; } }\n";
        let m = parse("f.c", src).unwrap();
        match &m.procs[0].body[0] {
            Stmt::If { then_body, else_body, .. } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plus_eq_statement_sugar() {
        let src = "void f() { int x; x += 3; }\n";
        let m = parse("f.c", src).unwrap();
        assert!(matches!(&m.procs[0].body[0], Stmt::Assign(_, Expr::Bin(BinOp::Add, _, _, _), _)));
    }

    #[test]
    fn local_initializer_is_consumed() {
        let src = "void f() { int i = 0; i = 1; }\n";
        let m = parse("f.c", src).unwrap();
        assert_eq!(m.procs[0].decls.len(), 1);
        assert_eq!(m.procs[0].body.len(), 1);
    }

    #[test]
    fn void_param_list() {
        let src = "void f(void) { return; }\n";
        let m = parse("f.c", src).unwrap();
        assert!(m.procs[0].formals.is_empty());
    }

    #[test]
    fn rejects_mismatched_loop_var() {
        let src = "void f() { int i, j; for (i = 0; j < 3; i++) { i = 1; } }\n";
        assert!(parse("f.c", src).is_err());
    }

    #[test]
    fn recovery_keeps_healthy_functions() {
        // `g` has a broken statement; `f` and `h` must still parse, and the
        // rest of `g` survives past the dropped line.
        let src = "\
void f() { int i; i = 1; }
void g() { int i; i = = 2; i = 3; }
void h() { int i; i = 4; }
";
        let (m, diags) = parse_with_recovery("r.c", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(m.procs.len(), 3);
        let g = m.find_proc("g").unwrap();
        assert_eq!(g.body.len(), 1, "statement after the bad one is kept");
    }

    #[test]
    fn recovery_resyncs_at_next_top_level() {
        let src = "int 5x;\nvoid ok() { int i; i = 1; }\n";
        let (m, diags) = parse_with_recovery("r.c", src);
        assert!(!diags.is_empty());
        assert!(m.find_proc("ok").is_some());
    }

    #[test]
    fn recovery_never_loses_everything_silently() {
        let (m, diags) = parse_with_recovery("junk.c", "@#$");
        assert!(m.procs.is_empty());
        assert!(!diags.is_empty());
    }

    #[test]
    fn recovery_caps_diagnostics() {
        let mut src = String::new();
        for _ in 0..100 {
            src.push_str("int ;\n");
        }
        let (_, diags) = parse_with_recovery("caps.c", &src);
        assert!(diags.len() <= MAX_DIAGS);
    }

    #[test]
    fn increment_assignment_form() {
        let src = "void f() { int i; double a[9]; for (i = 0; i <= 8; i = i + 3) a[i] = 0.0; }\n";
        let m = parse("f.c", src).unwrap();
        match &m.procs[0].body[0] {
            Stmt::Do { step, .. } => assert_eq!(*step, 3),
            other => panic!("unexpected {other:?}"),
        }
    }
}
