//! Language-neutral AST.
//!
//! Both front ends (the Fortran and C subsets) parse into this one AST,
//! mirroring how OpenUH's GNU-derived front ends meet at VH WHIRL. The AST
//! keeps source-level array semantics — declared bounds per dimension in
//! *source order*, 1-based or 0-based as written — and lowering to WHIRL
//! performs the row-major zero-based normalization.

use support::Pos;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` / `.eq.`
    Eq,
    /// `!=` / `.ne.`
    Ne,
    /// `&&` / `.and.`
    And,
    /// `||` / `.or.`
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Floating literal.
    Real(f64, Pos),
    /// Scalar variable reference, or a whole-array reference when the name
    /// resolves to an array (e.g. an array passed as a call argument).
    Var(String, Pos),
    /// `name(args)` in Fortran / `name[i][j]` in C before resolution:
    /// becomes an array element reference when `name` is a declared array.
    Index(String, Vec<Expr>, Pos),
    /// Coindexed (remote) coarray reference `name(subs)[image]` — the CAF
    /// extension of the paper's future work ("a programmer can easily
    /// express remote data accesses based on a one-sided communication
    /// model").
    CoIndex(String, Vec<Expr>, Box<Expr>, Pos),
    /// A function call in expression position (parsed, rejected by sema —
    /// the analysis subset has no expression calls).
    Call(String, Vec<Expr>, Pos),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>, Pos),
    /// Unary minus.
    Neg(Box<Expr>, Pos),
}

impl Expr {
    /// The source position of the expression's head token.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Real(_, p)
            | Expr::Var(_, p)
            | Expr::Index(_, _, p)
            | Expr::CoIndex(_, _, _, p)
            | Expr::Call(_, _, p)
            | Expr::Bin(_, _, _, p)
            | Expr::Neg(_, p) => *p,
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String, Pos),
    /// Array element `name(subs)` / `name[subs]`.
    Elem(String, Vec<Expr>, Pos),
    /// Remote coarray element `name(subs)[image]`.
    CoElem(String, Vec<Expr>, Box<Expr>, Pos),
}

impl LValue {
    /// The target's name.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(n, _) | LValue::Elem(n, _, _) | LValue::CoElem(n, _, _, _) => n,
        }
    }

    /// Source position.
    pub fn pos(&self) -> Pos {
        match self {
            LValue::Var(_, p) | LValue::Elem(_, _, p) | LValue::CoElem(_, _, _, p) => *p,
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = rhs`.
    Assign(LValue, Expr, Pos),
    /// Procedure call statement (`call p(...)` / `p(...);`).
    Call(String, Vec<Expr>, Pos),
    /// Counted loop `do v = lo, hi [, step]` / `for (v = lo; v <= hi; v += step)`.
    Do {
        /// Induction variable name.
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper bound (inclusive).
        hi: Expr,
        /// Constant step (defaults to 1).
        step: i64,
        /// Loop body.
        body: Vec<Stmt>,
        /// Header position.
        pos: Pos,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Header position.
        pos: Pos,
    },
    /// `return`.
    Return(Pos),
}

/// Element type names as written in source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    /// `integer` / `int`.
    Integer,
    /// `integer*8` / `long`.
    Integer8,
    /// `real` / `float`.
    Real,
    /// `double precision` / `double`.
    Double,
    /// `character` / `char`.
    Character,
}

/// One declared dimension `lb:ub` (Fortran defaults `lb = 1`; C is `0:n-1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstDim {
    /// Constant bounds, inclusive.
    Range(i64, i64),
    /// Assumed-size / runtime dimension (`*` or `:`).
    Unknown,
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// The variable name.
    pub name: String,
    /// Element type.
    pub ty: TypeName,
    /// Dimensions in source order (empty ⇒ scalar).
    pub dims: Vec<AstDim>,
    /// True for coarrays (`x(10)[*]`): remotely addressable across images.
    pub coarray: bool,
    /// Declaration position.
    pub pos: Pos,
}

/// A procedure (subroutine / void function).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcDecl {
    /// Procedure name.
    pub name: String,
    /// Formal parameter names, in order.
    pub formals: Vec<String>,
    /// Local + formal declarations.
    pub decls: Vec<VarDecl>,
    /// The body.
    pub body: Vec<Stmt>,
    /// Header position.
    pub pos: Pos,
    /// True for the program entry (`program` / `main`).
    pub is_entry: bool,
}

/// One parsed source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Source file name (e.g. `verify.f`, `matrix.c`).
    pub file: String,
    /// Global (file-scope / COMMON) declarations.
    pub globals: Vec<VarDecl>,
    /// Procedures, in source order.
    pub procs: Vec<ProcDecl>,
}

impl Module {
    /// Creates an empty module for `file`.
    pub fn new(file: impl Into<String>) -> Self {
        Module { file: file.into(), globals: Vec::new(), procs: Vec::new() }
    }

    /// Finds a procedure by (case-sensitive) name.
    pub fn find_proc(&self, name: &str) -> Option<&ProcDecl> {
        self.procs.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_pos_extraction() {
        let p = Pos::new(3, 9);
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Int(1, Pos::START)),
            Box::new(Expr::Int(2, Pos::START)),
            p,
        );
        assert_eq!(e.pos(), p);
        assert_eq!(Expr::Var("x".into(), p).pos(), p);
    }

    #[test]
    fn lvalue_name_and_pos() {
        let p = Pos::new(1, 5);
        let lv = LValue::Elem("aarr".into(), vec![Expr::Int(0, p)], p);
        assert_eq!(lv.name(), "aarr");
        assert_eq!(lv.pos(), p);
    }

    #[test]
    fn module_find_proc() {
        let mut m = Module::new("t.f");
        m.procs.push(ProcDecl {
            name: "verify".into(),
            formals: vec![],
            decls: vec![],
            body: vec![],
            pos: Pos::START,
            is_entry: false,
        });
        assert!(m.find_proc("verify").is_some());
        assert!(m.find_proc("other").is_none());
    }
}
