//! Fortran (free-form F77/F90 subset) parser.
//!
//! Grammar covered — exactly what the paper's examples and the NAS-LU-style
//! workload need:
//!
//! ```text
//! unit      := ('program' | 'subroutine') name ['(' formals ')'] NL
//!              { decl NL } { stmt NL } 'end' [unit-kw [name]]
//! decl      := type-spec [',' 'dimension' '(' dims ')'] ['::'] declarator {',' declarator}
//!            | 'common' '/' name '/' name {',' name}
//! type-spec := 'integer' ['*' INT] | 'real' ['*' INT]
//!            | 'double' 'precision' | 'character'
//! declarator:= name ['(' dims ')']
//! dims      := dim {',' dim};  dim := [INT ':'] INT | '*' | ':'
//! stmt      := 'do' name '=' expr ',' expr [',' INT] NL {stmt NL} 'end' 'do'
//!            | 'if' '(' expr ')' 'then' NL {stmt NL} ['else' NL {stmt NL}] 'end' 'if'
//!            | 'call' name ['(' args ')'] | 'return'
//!            | lvalue '=' expr
//! ```

use crate::ast::{AstDim, Expr, LValue, Module, ProcDecl, Stmt, TypeName, VarDecl};
use crate::lex::{lex, LexMode, Tok};
use crate::parse::{arg_list, expr, Cursor, IndexStyle};
use support::{Error, Result};

/// Parses one free-form Fortran source file into a [`Module`], failing on
/// the first diagnostic.
pub fn parse(file: &str, src: &str) -> Result<Module> {
    let (module, mut diags) = parse_with_recovery(file, src);
    if diags.is_empty() {
        Ok(module)
    } else {
        Err(diags.remove(0))
    }
}

/// Most diagnostics kept per file before recovery gives up collecting.
pub const MAX_DIAGS: usize = 20;

/// Error-recovering variant of [`parse`]. A syntax error inside a
/// declaration or statement drops that line and resynchronizes at the next
/// newline (statement-boundary sync), keeping the rest of the unit; an
/// error in a unit header drops the unit and resynchronizes at the next
/// `program`/`subroutine` header. Never fails — worst case is an empty
/// module plus diagnostics.
pub fn parse_with_recovery(file: &str, src: &str) -> (Module, Vec<Error>) {
    let mut module = Module::new(file);
    let toks = match lex(src, LexMode::Fortran) {
        Ok(t) => t,
        // Lex errors poison the token stream wholesale; nothing to recover.
        Err(e) => return (module, vec![e]),
    };
    let mut c = Cursor::new(toks);
    let mut diags = Vec::new();
    c.skip_newlines();
    while !c.at_eof() {
        match parse_unit(&mut c, &mut module, &mut diags) {
            Ok(proc) => module.procs.push(proc),
            Err(e) => {
                if diags.len() >= MAX_DIAGS {
                    break;
                }
                diags.push(e);
                if diags.len() >= MAX_DIAGS {
                    break;
                }
                sync_to_unit(&mut c);
            }
        }
        c.skip_newlines();
    }
    (module, diags)
}

/// Records `e` and skips to the end of the current line. Returns `false`
/// when the diagnostic budget is spent and the caller should bail out.
fn recover_line(c: &mut Cursor, e: Error, diags: &mut Vec<Error>) -> bool {
    diags.push(e);
    if diags.len() >= MAX_DIAGS {
        return false;
    }
    while !matches!(c.peek(), Tok::Newline | Tok::Eof) {
        c.bump();
    }
    true
}

/// Skips forward to the start of the next program unit (a line beginning
/// with `program` or `subroutine`) or to end of input.
fn sync_to_unit(c: &mut Cursor) {
    loop {
        // Finish the current line, then look at the next line's first token.
        while !matches!(c.peek(), Tok::Newline | Tok::Eof) {
            c.bump();
        }
        c.skip_newlines();
        if c.at_eof() || c.at_kw("program") || c.at_kw("subroutine") {
            return;
        }
    }
}

fn parse_unit(c: &mut Cursor, module: &mut Module, diags: &mut Vec<Error>) -> Result<ProcDecl> {
    let pos = c.pos();
    let is_entry = if c.eat_kw("program") {
        true
    } else if c.eat_kw("subroutine") {
        false
    } else {
        return Err(Error::parse(
            pos,
            format!("expected `program` or `subroutine`, found {:?}", c.peek()),
        ));
    };
    let name = c.ident("unit name")?;
    let mut formals = Vec::new();
    if c.eat(&Tok::LParen)
        && !c.eat(&Tok::RParen) {
            loop {
                formals.push(c.ident("formal parameter")?);
                if c.eat(&Tok::RParen) {
                    break;
                }
                c.expect(&Tok::Comma, "`,` in formal list")?;
            }
        }
    c.expect(&Tok::Newline, "end of unit header line")?;
    c.skip_newlines();

    // Declarations come first.
    let mut decls = Vec::new();
    loop {
        if c.at_kw("integer")
            || c.at_kw("real")
            || c.at_kw("double")
            || c.at_kw("character")
        {
            if let Err(e) = parse_type_decl(c, &mut decls) {
                if !recover_line(c, e, diags) {
                    return Err(Error::parse(c.pos(), "too many syntax errors"));
                }
            }
            c.skip_newlines();
        } else if c.at_kw("common") {
            if let Err(e) = parse_common(c, module, &decls) {
                if !recover_line(c, e, diags) {
                    return Err(Error::parse(c.pos(), "too many syntax errors"));
                }
            }
            c.skip_newlines();
        } else if c.at_kw("implicit") {
            // `implicit none` — accepted and ignored.
            while !matches!(c.peek(), Tok::Newline | Tok::Eof) {
                c.bump();
            }
            c.skip_newlines();
        } else {
            break;
        }
    }

    // Statements until the matching `end`.
    let body = parse_stmts(c, &["end"], diags)?;
    c.expect_kw("end")?;
    // Optional `end program|subroutine [name]`.
    if c.eat_kw("program") || c.eat_kw("subroutine") {
        if let Tok::Ident(_) = c.peek() {
            c.bump();
        }
    }
    if !c.at_eof() {
        c.expect(&Tok::Newline, "newline after `end`")?;
    }

    Ok(ProcDecl { name, formals, decls, body, pos, is_entry })
}

fn parse_type_decl(c: &mut Cursor, decls: &mut Vec<VarDecl>) -> Result<()> {
    let pos = c.pos();
    let ty = if c.eat_kw("integer") {
        if c.eat(&Tok::Star) {
            match c.int("kind width")? {
                8 => TypeName::Integer8,
                _ => TypeName::Integer,
            }
        } else {
            TypeName::Integer
        }
    } else if c.eat_kw("real") {
        if c.eat(&Tok::Star) {
            match c.int("kind width")? {
                8 => TypeName::Double,
                _ => TypeName::Real,
            }
        } else {
            TypeName::Real
        }
    } else if c.eat_kw("double") {
        c.expect_kw("precision")?;
        TypeName::Double
    } else if c.eat_kw("character") {
        TypeName::Character
    } else {
        return Err(Error::parse(pos, "expected a type keyword".to_string()));
    };

    // Optional `, dimension(dims)` attribute applying to every declarator.
    let mut attr_dims: Option<Vec<AstDim>> = None;
    if c.eat(&Tok::Comma) {
        c.expect_kw("dimension")?;
        c.expect(&Tok::LParen, "`(` after dimension")?;
        attr_dims = Some(parse_dims(c)?);
    }
    // Optional `::`.
    if c.eat(&Tok::Colon) {
        c.expect(&Tok::Colon, "`::`")?;
    }

    loop {
        let dpos = c.pos();
        let name = c.ident("variable name")?;
        let dims = if c.eat(&Tok::LParen) {
            parse_dims(c)?
        } else {
            attr_dims.clone().unwrap_or_default()
        };
        // Codimension: `x(10)[*]` declares a coarray.
        let coarray = if c.eat(&Tok::LBracket) {
            c.expect(&Tok::Star, "`*` codimension")?;
            c.expect(&Tok::RBracket, "`]` closing codimension")?;
            true
        } else {
            false
        };
        decls.push(VarDecl { name, ty, dims, coarray, pos: dpos });
        if !c.eat(&Tok::Comma) {
            break;
        }
    }
    Ok(())
}

/// Parses `dim {, dim} )` — the opening paren is already consumed.
fn parse_dims(c: &mut Cursor) -> Result<Vec<AstDim>> {
    let mut dims = Vec::new();
    loop {
        if c.eat(&Tok::Star) || c.eat(&Tok::Colon) {
            dims.push(AstDim::Unknown);
        } else {
            let first = c.int("dimension bound")?;
            if c.eat(&Tok::Colon) {
                let ub = c.int("upper bound")?;
                dims.push(AstDim::Range(first, ub));
            } else {
                // `A(n)` means `A(1:n)` in Fortran.
                dims.push(AstDim::Range(1, first));
            }
        }
        if c.eat(&Tok::RParen) {
            return Ok(dims);
        }
        c.expect(&Tok::Comma, "`,` in dimension list")?;
    }
}

/// `common /blk/ a, b` — promotes the listed names to module globals; their
/// types come from this unit's prior declarations.
fn parse_common(c: &mut Cursor, module: &mut Module, decls: &[VarDecl]) -> Result<()> {
    c.expect_kw("common")?;
    c.expect(&Tok::Slash, "`/` before common block name")?;
    let _block = c.ident("common block name")?;
    c.expect(&Tok::Slash, "`/` after common block name")?;
    loop {
        let pos = c.pos();
        let name = c.ident("common member")?;
        if !module.globals.iter().any(|g| g.name == name) {
            if let Some(d) = decls.iter().find(|d| d.name == name) {
                module.globals.push(d.clone());
            } else {
                // Declared later or in another unit: record a placeholder the
                // sema pass patches from any unit's declaration.
                module.globals.push(VarDecl {
                    name,
                    ty: TypeName::Real,
                    dims: Vec::new(),
                    coarray: false,
                    pos,
                });
            }
        }
        if !c.eat(&Tok::Comma) {
            break;
        }
    }
    Ok(())
}

fn parse_stmts(
    c: &mut Cursor,
    terminators: &[&str],
    diags: &mut Vec<Error>,
) -> Result<Vec<Stmt>> {
    let mut out = Vec::new();
    loop {
        c.skip_newlines();
        if c.at_eof() || terminators.iter().any(|t| c.at_kw(t)) {
            return Ok(out);
        }
        match parse_stmt(c, diags) {
            Ok(s) => out.push(s),
            // Statement-boundary sync: drop the bad line, keep the block.
            Err(e) => {
                if !recover_line(c, e, diags) {
                    return Err(Error::parse(c.pos(), "too many syntax errors"));
                }
            }
        }
    }
}

fn parse_stmt(c: &mut Cursor, diags: &mut Vec<Error>) -> Result<Stmt> {
    let pos = c.pos();
    if c.eat_kw("do") {
        let var = c.ident("loop variable")?;
        c.expect(&Tok::Assign, "`=` in do header")?;
        let lo = expr(c, IndexStyle::Paren)?;
        c.expect(&Tok::Comma, "`,` in do header")?;
        let hi = expr(c, IndexStyle::Paren)?;
        let step = if c.eat(&Tok::Comma) { c.int("loop step")? } else { 1 };
        c.expect(&Tok::Newline, "newline after do header")?;
        let body = parse_stmts(c, &["end"], diags)?;
        c.expect_kw("end")?;
        c.expect_kw("do")?;
        return Ok(Stmt::Do { var, lo, hi, step, body, pos });
    }
    if c.eat_kw("if") {
        c.expect(&Tok::LParen, "`(` after if")?;
        let cond = expr(c, IndexStyle::Paren)?;
        c.expect(&Tok::RParen, "`)` after condition")?;
        c.expect_kw("then")?;
        c.expect(&Tok::Newline, "newline after then")?;
        let then_body = parse_stmts(c, &["else", "end"], diags)?;
        let else_body = if c.eat_kw("else") {
            c.expect(&Tok::Newline, "newline after else")?;
            parse_stmts(c, &["end"], diags)?
        } else {
            Vec::new()
        };
        c.expect_kw("end")?;
        c.expect_kw("if")?;
        return Ok(Stmt::If { cond, then_body, else_body, pos });
    }
    if c.eat_kw("call") {
        let name = c.ident("callee name")?;
        let args = if c.eat(&Tok::LParen) {
            arg_list(c, IndexStyle::Paren)?
        } else {
            Vec::new()
        };
        return Ok(Stmt::Call(name, args, pos));
    }
    if c.eat_kw("return") {
        return Ok(Stmt::Return(pos));
    }
    if c.eat_kw("continue") {
        // A no-op: model as `return`-free empty if? Simplest: parse the next
        // statement; but `continue` can be the only body line. Represent it
        // as an empty If with a true condition — or simply skip by recursing.
        return parse_stmt_after_continue(c, pos);
    }
    // Assignment.
    let name = c.ident("assignment target")?;
    let lv = if c.eat(&Tok::LParen) {
        let subs = arg_list(c, IndexStyle::Paren)?;
        if c.eat(&Tok::LBracket) {
            // Coindexed target: `x(i)[p] = ...` writes image `p`'s copy.
            let image = expr(c, IndexStyle::Paren)?;
            c.expect(&Tok::RBracket, "`]` closing image selector")?;
            LValue::CoElem(name, subs, Box::new(image), pos)
        } else {
            LValue::Elem(name, subs, pos)
        }
    } else {
        LValue::Var(name, pos)
    };
    c.expect(&Tok::Assign, "`=` in assignment")?;
    let rhs = expr(c, IndexStyle::Paren)?;
    Ok(Stmt::Assign(lv, rhs, pos))
}

fn parse_stmt_after_continue(c: &mut Cursor, pos: support::Pos) -> Result<Stmt> {
    // `continue` is a placeholder statement; represent it as an empty
    // conditional so statement counts stay faithful without a new AST node.
    let _ = c;
    Ok(Stmt::If {
        cond: Expr::Int(1, pos),
        then_body: Vec::new(),
        else_body: Vec::new(),
        pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AstDim, BinOp, TypeName};

    const FIG1: &str = "\
subroutine add
  integer, dimension(1:200, 1:200) :: a
  integer :: m, j
  do j = 1, m
    call p1(a, j)
    call p2(a, j)
  end do
end subroutine add
";

    #[test]
    fn parses_fig1_shape() {
        let m = parse("fig1.f", FIG1).unwrap();
        assert_eq!(m.procs.len(), 1);
        let p = &m.procs[0];
        assert_eq!(p.name, "add");
        assert!(!p.is_entry);
        assert_eq!(p.decls.len(), 3);
        let a = &p.decls[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.ty, TypeName::Integer);
        assert_eq!(a.dims, vec![AstDim::Range(1, 200), AstDim::Range(1, 200)]);
        match &p.body[0] {
            Stmt::Do { var, step, body, .. } => {
                assert_eq!(var, "j");
                assert_eq!(*step, 1);
                assert_eq!(body.len(), 2);
                assert!(matches!(&body[0], Stmt::Call(n, args, _) if n == "p1" && args.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn program_unit_is_entry() {
        let src = "program applu\n  call verify\nend program applu\n";
        let m = parse("lu.f", src).unwrap();
        assert!(m.procs[0].is_entry);
        assert_eq!(m.procs[0].name, "applu");
    }

    #[test]
    fn f77_style_declarations() {
        let src = "\
subroutine s
  double precision xcr(5), xce(5)
  integer*8 big
  real r
  xcr(1) = 0.0
end
";
        let m = parse("v.f", src).unwrap();
        let d = &m.procs[0].decls;
        assert_eq!(d[0].name, "xcr");
        assert_eq!(d[0].ty, TypeName::Double);
        assert_eq!(d[0].dims, vec![AstDim::Range(1, 5)]);
        assert_eq!(d[1].name, "xce");
        assert_eq!(d[2].ty, TypeName::Integer8);
        assert_eq!(d[3].ty, TypeName::Real);
    }

    #[test]
    fn strided_do_loop() {
        let src = "subroutine s\n  integer i\n  real a(10)\n  do i = 2, 6, 2\n    a(i) = 1.0\n  end do\nend\n";
        let m = parse("s.f", src).unwrap();
        match &m.procs[0].body[0] {
            Stmt::Do { step, .. } => assert_eq!(*step, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_step_do_loop() {
        let src = "subroutine s\n  integer i\n  real a(10)\n  do i = 10, 1, -1\n    a(i) = 1.0\n  end do\nend\n";
        let m = parse("s.f", src).unwrap();
        match &m.procs[0].body[0] {
            Stmt::Do { step, .. } => assert_eq!(*step, -1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_then_else() {
        let src = "\
subroutine s
  integer i
  if (i .le. 5) then
    i = 1
  else
    i = 2
  end if
end
";
        let m = parse("s.f", src).unwrap();
        match &m.procs[0].body[0] {
            Stmt::If { cond, then_body, else_body, .. } => {
                assert!(matches!(cond, Expr::Bin(BinOp::Le, _, _, _)));
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn common_promotes_to_globals() {
        let src = "\
subroutine s
  double precision u(5, 64)
  common /cvar/ u
  u(1, 1) = 0.0
end
";
        let m = parse("s.f", src).unwrap();
        assert_eq!(m.globals.len(), 1);
        assert_eq!(m.globals[0].name, "u");
        assert_eq!(m.globals[0].dims.len(), 2);
    }

    #[test]
    fn implicit_none_is_skipped() {
        let src = "subroutine s\n  implicit none\n  integer i\n  i = 1\nend\n";
        assert!(parse("s.f", src).is_ok());
    }

    #[test]
    fn case_insensitivity() {
        let src = "SUBROUTINE S\n  INTEGER I\n  I = 1\nEND\n";
        let m = parse("s.f", src).unwrap();
        assert_eq!(m.procs[0].name, "s");
    }

    #[test]
    fn call_without_parens() {
        let src = "program p\n  call setup\nend\n";
        let m = parse("p.f", src).unwrap();
        assert!(matches!(&m.procs[0].body[0], Stmt::Call(n, a, _) if n == "setup" && a.is_empty()));
    }

    #[test]
    fn continuation_line() {
        let src = "subroutine s\n  integer a(10)\n  integer i\n  a(1) = 1 + &\n      2\nend\n";
        let m = parse("s.f", src).unwrap();
        assert!(matches!(&m.procs[0].body[0], Stmt::Assign(_, _, _)));
    }

    #[test]
    fn assumed_size_dimension() {
        let src = "subroutine s(x)\n  double precision x(*)\n  x(1) = 0.0\nend\n";
        let m = parse("s.f", src).unwrap();
        assert_eq!(m.procs[0].decls[0].dims, vec![AstDim::Unknown]);
        assert_eq!(m.procs[0].formals, vec!["x"]);
    }

    #[test]
    fn multiple_units_per_file() {
        let src = "subroutine a\n  return\nend\nsubroutine b\n  return\nend\n";
        let m = parse("two.f", src).unwrap();
        assert_eq!(m.procs.len(), 2);
    }

    #[test]
    fn coarray_declaration_and_coindex() {
        let src = "\
program p
  double precision x(10)[*]
  double precision y(10)
  integer i
  do i = 1, 10
    y(i) = x(i)[2]
    x(i)[3] = y(i)
  end do
end
";
        let m = parse("caf.f", src).unwrap();
        let x = &m.procs[0].decls[0];
        assert!(x.coarray);
        assert!(!m.procs[0].decls[1].coarray);
        // The loop body holds one coindexed read and one coindexed write.
        match &m.procs[0].body[0] {
            Stmt::Do { body, .. } => {
                assert!(matches!(&body[0], Stmt::Assign(_, Expr::CoIndex(..), _)));
                assert!(matches!(&body[1], Stmt::Assign(LValue::CoElem(..), _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse("bad.f", "subroutine\n").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn recovery_keeps_statements_after_a_bad_line() {
        let src = "\
subroutine s
  integer i
  i = = 1
  i = 2
end
";
        let (m, diags) = parse_with_recovery("r.f", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(m.procs.len(), 1);
        assert_eq!(m.procs[0].body.len(), 1, "good line after the bad one survives");
    }

    #[test]
    fn recovery_resyncs_at_next_unit() {
        let src = "\
subroutine 5
  integer i
end
subroutine ok
  integer i
  i = 1
end
";
        let (m, diags) = parse_with_recovery("r.f", src);
        assert!(!diags.is_empty());
        assert!(m.find_proc("ok").is_some());
    }

    #[test]
    fn recovery_keeps_unit_on_bad_declaration() {
        let src = "\
subroutine s
  integer a(
  integer i
  i = 1
end
";
        let (m, diags) = parse_with_recovery("r.f", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(m.procs.len(), 1);
        assert_eq!(m.procs[0].decls.len(), 1, "second declaration survives");
    }

    #[test]
    fn recovery_caps_diagnostics() {
        let mut src = String::from("subroutine s\n");
        for _ in 0..100 {
            src.push_str("  i = = 1\n");
        }
        src.push_str("end\n");
        let (_, diags) = parse_with_recovery("caps.f", &src);
        assert!(diags.len() <= MAX_DIAGS);
    }

    #[test]
    fn recovery_of_empty_garbage_yields_diags_not_procs() {
        let (m, diags) = parse_with_recovery("bad.f", "subroutine\n");
        assert!(m.procs.is_empty());
        assert_eq!(diags.len(), 1);
    }
}
