//! Shared lexer for the Fortran and C subsets.
//!
//! One token stream feeds both parsers; the `LexMode` flag switches the few
//! genuinely language-specific rules — Fortran's `!` comments, dotted
//! operators (`.eq.`, `.and.`), `&` continuation lines, significant
//! newlines, and `1.0d0` double literals versus C's `//` and `/* */`
//! comments and compound operators (`++`, `+=`, `&&`).

use support::{Error, Pos, Result};

/// Lexer dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LexMode {
    /// Fortran free-form: `!` comments, dotted operators, significant
    /// newlines, `&` continuation.
    Fortran,
    /// C: `//` and `/* */` comments, newlines are whitespace.
    C,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (Fortran identifiers are lower-cased — the language is
    /// case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal (including Fortran `d` exponents).
    Real(f64),
    /// String literal (either quote style).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<` / `.lt.`
    Lt,
    /// `<=` / `.le.`
    Le,
    /// `>` / `.gt.`
    Gt,
    /// `>=` / `.ge.`
    Ge,
    /// `==` / `.eq.`
    EqEq,
    /// `!=` / `.ne.`
    Ne,
    /// `&&` / `.and.`
    AndAnd,
    /// `||` / `.or.`
    OrOr,
    /// `!` / `.not.` (C only as operator; Fortran `!` starts a comment)
    Not,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `&` (C address-of; in Fortran consumed as continuation)
    Amp,
    /// End of statement (Fortran newline / explicitly emitted)
    Newline,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind and payload.
    pub tok: Tok,
    /// Position of the first character.
    pub pos: Pos,
}

/// Lexes `src` completely. The stream always ends with a single `Eof` token;
/// in Fortran mode, logical line ends appear as `Newline` tokens (with
/// consecutive newlines collapsed).
pub fn lex(src: &str, mode: LexMode) -> Result<Vec<Token>> {
    let _span = support::obs::span("frontend.lex");
    Lexer { src: src.as_bytes(), i: 0, line: 1, col: 1, mode, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    mode: LexMode,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, pos: Pos) {
        self.out.push(Token { tok, pos });
    }

    fn push_newline(&mut self, pos: Pos) {
        // Collapse consecutive newlines.
        if !matches!(self.out.last().map(|t| &t.tok), Some(Tok::Newline) | None) {
            self.push(Tok::Newline, pos);
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        while let Some(c) = self.peek() {
            let pos = self.pos();
            match c {
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'\n' => {
                    self.bump();
                    if self.mode == LexMode::Fortran {
                        self.push_newline(pos);
                    }
                }
                b'&' if self.mode == LexMode::Fortran => {
                    // Continuation: swallow `&`, trailing spaces, and the
                    // newline so the logical line continues.
                    self.bump();
                    while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
                        self.bump();
                    }
                    if self.peek() == Some(b'\n') {
                        self.bump();
                    }
                }
                b'&' => {
                    self.bump();
                    if self.peek() == Some(b'&') {
                        self.bump();
                        self.push(Tok::AndAnd, pos);
                    } else {
                        self.push(Tok::Amp, pos);
                    }
                }
                b'!' if self.mode == LexMode::Fortran => {
                    // Comment to end of line.
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(Tok::Ne, pos);
                    } else {
                        self.push(Tok::Not, pos);
                    }
                }
                b'/' if self.mode == LexMode::C && self.peek2() == Some(b'/') => {
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                }
                b'/' if self.mode == LexMode::C && self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => {
                                return Err(Error::lex(pos, "unterminated block comment"))
                            }
                        }
                    }
                }
                b'0'..=b'9' => self.number(pos)?,
                b'.' if self.mode == LexMode::Fortran
                    && self.peek2().is_some_and(|c| c.is_ascii_alphabetic()) =>
                {
                    self.dotted_op(pos)?
                }
                b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                    self.number(pos)?
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(pos),
                b'\'' | b'"' => self.string(pos, c)?,
                _ => self.punct(pos)?,
            }
        }
        let pos = self.pos();
        if self.mode == LexMode::Fortran {
            self.push_newline(pos);
        }
        self.push(Tok::Eof, pos);
        Ok(self.out)
    }

    fn ident(&mut self, pos: Pos) {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
        let mut s = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        if self.mode == LexMode::Fortran {
            s.make_ascii_lowercase();
        }
        self.push(Tok::Ident(s), pos);
    }

    fn number(&mut self, pos: Pos) -> Result<()> {
        let start = self.i;
        let mut is_real = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        // Fraction — but not Fortran `1.eq.` style dotted operators.
        if self.peek() == Some(b'.') {
            let next = self.peek2();
            let dotted_op = self.mode == LexMode::Fortran
                && next.is_some_and(|c| c.is_ascii_alphabetic());
            if !dotted_op {
                is_real = true;
                self.bump();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        // Exponent: e/E always, d/D in Fortran.
        if let Some(e) = self.peek() {
            let is_exp = matches!(e, b'e' | b'E')
                || (self.mode == LexMode::Fortran && matches!(e, b'd' | b'D'));
            let follows = self.peek2();
            if is_exp
                && follows
                    .is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-')
            {
                is_real = true;
                self.bump();
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.bump();
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        if is_real {
            let norm = text.replace(['d', 'D'], "e");
            let v: f64 = norm
                .parse()
                .map_err(|_| Error::lex(pos, format!("bad real literal `{text}`")))?;
            self.push(Tok::Real(v), pos);
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| Error::lex(pos, format!("bad integer literal `{text}`")))?;
            self.push(Tok::Int(v), pos);
        }
        Ok(())
    }

    fn dotted_op(&mut self, pos: Pos) -> Result<()> {
        self.bump(); // leading '.'
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
            self.bump();
        }
        let word = String::from_utf8_lossy(&self.src[start..self.i]).to_lowercase();
        if self.peek() != Some(b'.') {
            return Err(Error::lex(pos, format!("unterminated dotted operator `.{word}`")));
        }
        self.bump(); // trailing '.'
        let tok = match word.as_str() {
            "eq" => Tok::EqEq,
            "ne" => Tok::Ne,
            "lt" => Tok::Lt,
            "le" => Tok::Le,
            "gt" => Tok::Gt,
            "ge" => Tok::Ge,
            "and" => Tok::AndAnd,
            "or" => Tok::OrOr,
            "not" => Tok::Not,
            "true" => Tok::Int(1),
            "false" => Tok::Int(0),
            other => {
                return Err(Error::lex(pos, format!("unknown dotted operator `.{other}.`")))
            }
        };
        self.push(tok, pos);
        Ok(())
    }

    fn string(&mut self, pos: Pos, quote: u8) -> Result<()> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some(b'\\') if self.mode == LexMode::C => {
                    match self.bump() {
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(c) => s.push(c as char),
                        None => return Err(Error::lex(pos, "unterminated string")),
                    }
                }
                Some(c) => s.push(c as char),
                None => return Err(Error::lex(pos, "unterminated string")),
            }
        }
        self.push(Tok::Str(s), pos);
        Ok(())
    }

    fn punct(&mut self, pos: Pos) -> Result<()> {
        let Some(c) = self.bump() else {
            return Err(Error::lex(pos, "unexpected end of input"));
        };
        let tok = match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b',' => Tok::Comma,
            b';' => Tok::Semi,
            b':' => Tok::Colon,
            b'+' => match self.peek() {
                Some(b'+') => {
                    self.bump();
                    Tok::PlusPlus
                }
                Some(b'=') => {
                    self.bump();
                    Tok::PlusEq
                }
                _ => Tok::Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => {
                    self.bump();
                    Tok::MinusMinus
                }
                Some(b'=') => {
                    self.bump();
                    Tok::MinusEq
                }
                _ => Tok::Minus,
            },
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::EqEq
                } else {
                    Tok::Assign
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::OrOr
                } else {
                    return Err(Error::lex(pos, "stray `|`"));
                }
            }
            other => {
                return Err(Error::lex(pos, format!("unexpected character `{}`", other as char)))
            }
        };
        self.push(tok, pos);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str, mode: LexMode) -> Vec<Tok> {
        lex(src, mode).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn fortran_idents_are_lowercased() {
        let toks = kinds("Call P1(A, J)", LexMode::Fortran);
        assert_eq!(
            toks,
            vec![
                Tok::Ident("call".into()),
                Tok::Ident("p1".into()),
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Ident("j".into()),
                Tok::RParen,
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn c_idents_keep_case() {
        let toks = kinds("Foo bar", LexMode::C);
        assert_eq!(toks, vec![Tok::Ident("Foo".into()), Tok::Ident("bar".into()), Tok::Eof]);
    }

    #[test]
    fn fortran_dotted_operators() {
        let toks = kinds("a .eq. b .and. c .le. 5", LexMode::Fortran);
        assert!(toks.contains(&Tok::EqEq));
        assert!(toks.contains(&Tok::AndAnd));
        assert!(toks.contains(&Tok::Le));
    }

    #[test]
    fn fortran_comment_and_newline_collapse() {
        let toks = kinds("x = 1 ! set x\n\n\ny = 2\n", LexMode::Fortran);
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn fortran_continuation_joins_lines() {
        let toks = kinds("x = 1 + &\n    2\n", LexMode::Fortran);
        // No newline between `+` and `2`.
        let idx_plus = toks.iter().position(|t| *t == Tok::Plus).unwrap();
        assert_eq!(toks[idx_plus + 1], Tok::Int(2));
    }

    #[test]
    fn fortran_double_literal() {
        let toks = kinds("x = 1.5d0", LexMode::Fortran);
        assert!(toks.contains(&Tok::Real(1.5)));
        let toks = kinds("x = 2.0e3", LexMode::Fortran);
        assert!(toks.contains(&Tok::Real(2000.0)));
    }

    #[test]
    fn number_then_dotted_op_disambiguates() {
        let toks = kinds("if (i .eq. 1.and.j .eq. 2) then", LexMode::Fortran);
        // `1.and.` must lex as Int(1), AndAnd — not Real(1.0).
        assert!(toks.contains(&Tok::Int(1)));
        assert!(toks.contains(&Tok::AndAnd));
    }

    #[test]
    fn c_comments_are_skipped() {
        let toks = kinds("int /* hi */ x; // tail\ny", LexMode::C);
        assert_eq!(
            toks,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Semi,
                Tok::Ident("y".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn c_compound_operators() {
        let toks = kinds("i++ ; i += 2; a != b && c == d", LexMode::C);
        assert!(toks.contains(&Tok::PlusPlus));
        assert!(toks.contains(&Tok::PlusEq));
        assert!(toks.contains(&Tok::Ne));
        assert!(toks.contains(&Tok::AndAnd));
        assert!(toks.contains(&Tok::EqEq));
    }

    #[test]
    fn c_newlines_are_whitespace() {
        let toks = kinds("a\nb\n", LexMode::C);
        assert!(!toks.contains(&Tok::Newline));
    }

    #[test]
    fn brackets_and_braces() {
        let toks = kinds("a[3] = {1};", LexMode::C);
        assert!(toks.contains(&Tok::LBracket));
        assert!(toks.contains(&Tok::RBracket));
        assert!(toks.contains(&Tok::LBrace));
        assert!(toks.contains(&Tok::RBrace));
    }

    #[test]
    fn string_literals() {
        let toks = kinds("s = \"hi\\n\"", LexMode::C);
        assert!(toks.contains(&Tok::Str("hi\n".into())));
        let toks = kinds("print 'done'", LexMode::Fortran);
        assert!(toks.contains(&Tok::Str("done".into())));
    }

    #[test]
    fn errors_surface_position() {
        let err = lex("x = $", LexMode::C).unwrap_err();
        assert!(err.to_string().contains("1:5"), "{err}");
        assert!(lex("\"open", LexMode::C).is_err());
        assert!(lex(".bogus.", LexMode::Fortran).is_err());
    }

    #[test]
    fn negative_numbers_lex_as_minus_int() {
        let toks = kinds("x = -5", LexMode::C);
        assert!(toks.contains(&Tok::Minus));
        assert!(toks.contains(&Tok::Int(5)));
    }

    #[test]
    fn leading_dot_real() {
        let toks = kinds("x = .5", LexMode::C);
        assert!(toks.contains(&Tok::Real(0.5)));
    }
}
