//! Human-readable diagnostics: the offending source line with a caret.
//!
//! The paper's tool is aimed at "programmers, professionals and even
//! beginners"; when their source does not parse, the error should point at
//! the exact character, not just name a line number.

use support::{Error, Pos};

/// Extracts the position carried by an error, when it has one.
pub fn error_pos(err: &Error) -> Option<Pos> {
    match err {
        Error::Lex { pos, .. } | Error::Parse { pos, .. } => Some(*pos),
        Error::Semantic { pos, .. } => *pos,
        _ => None,
    }
}

/// Renders an error against its source text:
///
/// ```text
/// error: parse error at 3:9: expected `)`, found Newline
///   --> bad.f:3:9
///    |
///  3 |   call p(x,
///    |         ^
/// ```
pub fn render(file: &str, source: &str, err: &Error) -> String {
    let mut out = format!("error: {err}\n");
    let Some(pos) = error_pos(err) else { return out };
    out.push_str(&format!("  --> {file}:{pos}\n"));
    let Some(line_text) = source.lines().nth(pos.line.saturating_sub(1) as usize) else {
        return out;
    };
    let gutter_width = pos.line.to_string().len().max(2);
    let pad = " ".repeat(gutter_width);
    out.push_str(&format!("{pad} |\n"));
    out.push_str(&format!("{:>gutter_width$} | {line_text}\n", pos.line));
    let caret_col = (pos.col.saturating_sub(1)) as usize;
    // Tabs in the prefix keep their width in the caret line.
    let prefix: String = line_text
        .chars()
        .take(caret_col)
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect();
    out.push_str(&format!("{pad} | {prefix}^\n"));
    out
}

/// Convenience: compile one source and render any failure against it.
pub fn check_source(file: &str, source: &str, lang: whirl::Lang) -> Result<(), String> {
    let sf = crate::SourceFile::new(file, source, lang);
    match crate::compile(std::slice::from_ref(&sf)) {
        Ok(_) => Ok(()),
        Err(e) => Err(render(file, source, &e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirl::Lang;

    #[test]
    fn parse_error_points_at_the_character() {
        let src = "subroutine s\n  integer a(5)\n  a(1 = 0\nend\n";
        let err = check_source("bad.f", src, Lang::Fortran).unwrap_err();
        assert!(err.starts_with("error: parse error"), "{err}");
        assert!(err.contains("--> bad.f:3:"), "{err}");
        assert!(err.contains("a(1 = 0"), "{err}");
        assert!(err.lines().last().unwrap().trim_end().ends_with('^'), "{err}");
    }

    #[test]
    fn lex_error_renders() {
        let src = "void f() { int x; x = $; }\n";
        let err = check_source("bad.c", src, Lang::C).unwrap_err();
        assert!(err.contains("lex error"), "{err}");
        assert!(err.contains("--> bad.c:1:23"), "{err}");
        // Caret under the `$`: gutter "   | " is 5 chars, then col-1 spaces.
        let caret_line = err.lines().last().unwrap();
        assert_eq!(caret_line.find('^'), Some(5 + 22), "{err}");
    }

    #[test]
    fn semantic_error_with_position_renders() {
        let src = "subroutine s\n  integer x\n  x(1) = 0\nend\n";
        let err = check_source("bad.f", src, Lang::Fortran).unwrap_err();
        assert!(err.contains("semantic error"), "{err}");
        assert!(err.contains("x(1) = 0"), "{err}");
    }

    #[test]
    fn errors_without_position_render_message_only() {
        let e = Error::Lower("boom".into());
        let out = render("f.f", "text", &e);
        assert_eq!(out, "error: lowering error: boom\n");
    }

    #[test]
    fn ok_source_is_ok() {
        assert!(check_source(
            "ok.f",
            "subroutine s\n  integer i\n  i = 1\nend\n",
            Lang::Fortran
        )
        .is_ok());
    }

    #[test]
    fn out_of_range_line_is_tolerated() {
        let e = Error::parse(support::Pos::new(99, 1), "synthetic");
        let out = render("f.f", "one line only", &e);
        assert!(out.contains("--> f.f:99:1"));
        assert!(!out.contains('^'));
    }
}
