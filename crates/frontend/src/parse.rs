//! Shared parsing infrastructure: token cursor and the expression grammar.
//!
//! Both subset parsers (Fortran, C) drive the same cursor and the same
//! precedence-climbing expression parser; only the statement grammars differ.

use crate::ast::{BinOp, Expr};
use crate::lex::{Tok, Token};
use support::{Error, Pos, Result};

/// A cursor over a lexed token stream.
#[derive(Debug)]
pub struct Cursor {
    toks: Vec<Token>,
    i: usize,
}

impl Cursor {
    /// Wraps a token stream (must end with `Eof`).
    pub fn new(toks: Vec<Token>) -> Self {
        debug_assert!(matches!(toks.last().map(|t| &t.tok), Some(Tok::Eof)));
        Cursor { toks, i: 0 }
    }

    /// The current token.
    pub fn peek(&self) -> &Tok {
        &self.toks[self.i.min(self.toks.len() - 1)].tok
    }

    /// The token after the current one.
    pub fn peek2(&self) -> &Tok {
        &self.toks[(self.i + 1).min(self.toks.len() - 1)].tok
    }

    /// Position of the current token.
    pub fn pos(&self) -> Pos {
        self.toks[self.i.min(self.toks.len() - 1)].pos
    }

    /// Advances and returns the consumed token.
    pub fn bump(&mut self) -> Tok {
        let t = self.toks[self.i.min(self.toks.len() - 1)].tok.clone();
        if self.i < self.toks.len() - 1 {
            self.i += 1;
        }
        t
    }

    /// Consumes the current token if it equals `t`.
    pub fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Requires the current token to be `t`.
    pub fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::parse(
                self.pos(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    /// Requires and returns an identifier.
    pub fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(Error::parse(
                self.pos(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    /// Requires and returns an integer literal, allowing a leading minus.
    pub fn int(&mut self, what: &str) -> Result<i64> {
        let neg = self.eat(&Tok::Minus);
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            other => Err(Error::parse(
                self.pos(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    /// True when the current token is an identifier equal to `kw`
    /// (identifiers from the Fortran lexer are already lower-cased).
    pub fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    /// Consumes a keyword identifier.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Requires a keyword identifier.
    pub fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(
                self.pos(),
                format!("expected `{kw}`, found {:?}", self.peek()),
            ))
        }
    }

    /// Skips any `Newline` tokens.
    pub fn skip_newlines(&mut self) {
        while self.eat(&Tok::Newline) {}
    }

    /// True at end of input.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }
}

/// Which call syntax expression-position parentheses use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexStyle {
    /// Fortran: `name(e, e)` is an index-or-call, resolved by sema.
    Paren,
    /// C: `name[e][e]` chains are indices; `name(...)` is a function call.
    Bracket,
}

fn bin_prec(t: &Tok) -> Option<(BinOp, u8)> {
    Some(match t {
        Tok::OrOr => (BinOp::Or, 1),
        Tok::AndAnd => (BinOp::And, 2),
        Tok::EqEq => (BinOp::Eq, 3),
        Tok::Ne => (BinOp::Ne, 3),
        Tok::Lt => (BinOp::Lt, 3),
        Tok::Le => (BinOp::Le, 3),
        Tok::Gt => (BinOp::Gt, 3),
        Tok::Ge => (BinOp::Ge, 3),
        Tok::Plus => (BinOp::Add, 4),
        Tok::Minus => (BinOp::Sub, 4),
        Tok::Star => (BinOp::Mul, 5),
        Tok::Slash => (BinOp::Div, 5),
        _ => return None,
    })
}

/// Parses an expression at the lowest precedence.
pub fn expr(c: &mut Cursor, style: IndexStyle) -> Result<Expr> {
    expr_prec(c, style, 1)
}

fn expr_prec(c: &mut Cursor, style: IndexStyle, min_prec: u8) -> Result<Expr> {
    // Bound recursion depth: pathological nesting (thousands of parens or
    // unary minuses) must surface as a parse error, not a stack overflow —
    // overflow aborts the process and cannot be contained by catch_unwind.
    let Some(_guard) = support::budget::recursion_guard() else {
        return Err(Error::parse(c.pos(), "expression nesting too deep"));
    };
    let mut lhs = unary(c, style)?;
    while let Some((op, prec)) = bin_prec(c.peek()) {
        if prec < min_prec {
            break;
        }
        let pos = c.pos();
        c.bump();
        let rhs = expr_prec(c, style, prec + 1)?;
        lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), pos);
    }
    Ok(lhs)
}

fn unary(c: &mut Cursor, style: IndexStyle) -> Result<Expr> {
    // `-`/`!`/`&` chains recurse without passing through `expr_prec`; bound
    // them too.
    let Some(_guard) = support::budget::recursion_guard() else {
        return Err(Error::parse(c.pos(), "expression nesting too deep"));
    };
    let pos = c.pos();
    if c.eat(&Tok::Minus) {
        let inner = unary(c, style)?;
        return Ok(Expr::Neg(Box::new(inner), pos));
    }
    if c.eat(&Tok::Not) {
        // Logical negation: structurally a unary node; the region analysis
        // never evaluates conditions, so Neg stands in for all unaries.
        let inner = unary(c, style)?;
        return Ok(Expr::Neg(Box::new(inner), pos));
    }
    primary(c, style)
}

fn primary(c: &mut Cursor, style: IndexStyle) -> Result<Expr> {
    let pos = c.pos();
    match c.peek().clone() {
        Tok::Int(v) => {
            c.bump();
            Ok(Expr::Int(v, pos))
        }
        Tok::Real(v) => {
            c.bump();
            Ok(Expr::Real(v, pos))
        }
        Tok::Str(_) => {
            // Strings only appear as call arguments (print_results etc.);
            // model them as an opaque integer.
            c.bump();
            Ok(Expr::Int(0, pos))
        }
        Tok::LParen => {
            c.bump();
            let e = expr(c, style)?;
            c.expect(&Tok::RParen, "`)`")?;
            Ok(e)
        }
        Tok::Amp => {
            // C address-of on an argument: transparent for our analysis.
            // Route through `unary` so `&` chains hit the recursion guard.
            c.bump();
            unary(c, style)
        }
        Tok::Ident(name) => {
            c.bump();
            match style {
                IndexStyle::Paren => {
                    if c.eat(&Tok::LParen) {
                        let args = arg_list(c, style)?;
                        if c.eat(&Tok::LBracket) {
                            // Coindexed read: `x(i)[p]` fetches from image p.
                            let image = expr(c, style)?;
                            c.expect(&Tok::RBracket, "`]` closing image selector")?;
                            Ok(Expr::CoIndex(name, args, Box::new(image), pos))
                        } else {
                            Ok(Expr::Index(name, args, pos))
                        }
                    } else {
                        Ok(Expr::Var(name, pos))
                    }
                }
                IndexStyle::Bracket => {
                    if *c.peek() == Tok::LBracket {
                        let mut subs = Vec::new();
                        while c.eat(&Tok::LBracket) {
                            subs.push(expr(c, style)?);
                            c.expect(&Tok::RBracket, "`]`")?;
                        }
                        Ok(Expr::Index(name, subs, pos))
                    } else if c.eat(&Tok::LParen) {
                        let args = arg_list(c, style)?;
                        Ok(Expr::Call(name, args, pos))
                    } else {
                        Ok(Expr::Var(name, pos))
                    }
                }
            }
        }
        other => Err(Error::parse(pos, format!("expected expression, found {other:?}"))),
    }
}

/// Parses a possibly-empty comma-separated argument list up to `)`.
pub fn arg_list(c: &mut Cursor, style: IndexStyle) -> Result<Vec<Expr>> {
    let mut args = Vec::new();
    if c.eat(&Tok::RParen) {
        return Ok(args);
    }
    loop {
        args.push(expr(c, style)?);
        if c.eat(&Tok::RParen) {
            return Ok(args);
        }
        c.expect(&Tok::Comma, "`,` or `)`")?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex, LexMode};

    fn parse_c_expr(src: &str) -> Expr {
        let mut c = Cursor::new(lex(src, LexMode::C).unwrap());
        expr(&mut c, IndexStyle::Bracket).unwrap()
    }

    fn parse_f_expr(src: &str) -> Expr {
        let mut c = Cursor::new(lex(src, LexMode::Fortran).unwrap());
        expr(&mut c, IndexStyle::Paren).unwrap()
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_c_expr("1 + 2 * 3");
        match e {
            Expr::Bin(BinOp::Add, _, rhs, _) => {
                assert!(matches!(*rhs, Expr::Bin(BinOp::Mul, _, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        // 10 - 3 - 2 must parse as (10 - 3) - 2.
        let e = parse_c_expr("10 - 3 - 2");
        match e {
            Expr::Bin(BinOp::Sub, lhs, _, _) => {
                assert!(matches!(*lhs, Expr::Bin(BinOp::Sub, _, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parens_override() {
        let e = parse_c_expr("(1 + 2) * 3");
        assert!(matches!(e, Expr::Bin(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn c_bracket_indexing_chains() {
        let e = parse_c_expr("u[i][j][k]");
        match e {
            Expr::Index(name, subs, _) => {
                assert_eq!(name, "u");
                assert_eq!(subs.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn c_call_in_expression() {
        let e = parse_c_expr("f(x, 1)");
        assert!(matches!(e, Expr::Call(_, _, _)));
    }

    #[test]
    fn fortran_paren_index_or_call() {
        let e = parse_f_expr("a(i, j+1)");
        match e {
            Expr::Index(name, subs, _) => {
                assert_eq!(name, "a");
                assert_eq!(subs.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fortran_relational_dotted() {
        let e = parse_f_expr("i .le. n .and. j .ge. 1");
        assert!(matches!(e, Expr::Bin(BinOp::And, _, _, _)));
    }

    #[test]
    fn unary_minus_binds_tight() {
        let e = parse_c_expr("-x + 1");
        assert!(matches!(e, Expr::Bin(BinOp::Add, _, _, _)));
    }

    #[test]
    fn address_of_is_transparent() {
        let e = parse_c_expr("&x");
        assert!(matches!(e, Expr::Var(_, _)));
    }

    #[test]
    fn error_on_missing_operand() {
        let toks = lex("1 +", LexMode::C).unwrap();
        let mut c = Cursor::new(toks);
        assert!(expr(&mut c, IndexStyle::Bracket).is_err());
    }

    #[test]
    fn cursor_helpers() {
        let toks = lex("do i = 1", LexMode::Fortran).unwrap();
        let mut c = Cursor::new(toks);
        assert!(c.at_kw("do"));
        assert!(c.eat_kw("do"));
        assert_eq!(c.ident("name").unwrap(), "i");
        assert!(c.eat(&Tok::Assign));
        assert_eq!(c.int("bound").unwrap(), 1);
        c.skip_newlines();
        assert!(c.at_eof());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let depth = 5000;
        let src = format!("{}x{}", "(".repeat(depth), ")".repeat(depth));
        let toks = lex(&src, LexMode::C).unwrap();
        let mut c = Cursor::new(toks);
        let err = expr(&mut c, IndexStyle::Bracket).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");
    }

    #[test]
    fn deep_unary_chain_errors_instead_of_overflowing() {
        let src = format!("{}x", "!".repeat(5000));
        let toks = lex(&src, LexMode::C).unwrap();
        let mut c = Cursor::new(toks);
        let err = expr(&mut c, IndexStyle::Bracket).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");
    }

    #[test]
    fn negative_int_helper() {
        let toks = lex("-42", LexMode::C).unwrap();
        let mut c = Cursor::new(toks);
        assert_eq!(c.int("n").unwrap(), -42);
    }
}
