//! Property tests for the front ends: lexer totality on generated programs,
//! parse→emit→parse stability, and structural agreement between the Fortran
//! and C paths for equivalent programs.

use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
use proptest::prelude::*;
use whirl::{Lang, Opr};

/// A tiny structured program generator: `n` loops over one array with
/// assorted offsets — always valid in both languages.
#[derive(Debug, Clone)]
struct MiniProgram {
    loops: Vec<(i64, i64, i64, i64)>, // (lo, hi, step, offset)
    extent: i64,
}

fn mini_program() -> impl Strategy<Value = MiniProgram> {
    (
        proptest::collection::vec((1i64..5, 5i64..12, 1i64..3, 0i64..3), 1..5),
        30i64..60,
    )
        .prop_map(|(loops, extent)| MiniProgram { loops, extent })
}

impl MiniProgram {
    fn fortran(&self) -> String {
        let mut s = format!(
            "subroutine s\n  double precision a({})\n  common /g/ a\n  integer i\n",
            self.extent
        );
        for &(lo, hi, step, off) in &self.loops {
            if step == 1 {
                s.push_str(&format!("  do i = {lo}, {hi}\n"));
            } else {
                s.push_str(&format!("  do i = {lo}, {hi}, {step}\n"));
            }
            if off == 0 {
                s.push_str("    a(i) = 1.0\n");
            } else {
                s.push_str(&format!("    a(i + {off}) = 1.0\n"));
            }
            s.push_str("  end do\n");
        }
        s.push_str("end\n");
        s
    }

    fn c(&self) -> String {
        // Same accesses, zero-based: a[i-1 (+off)] over 0..extent-1.
        let mut s = format!("double a[{}];\nvoid s() {{\n    int i;\n", self.extent);
        for &(lo, hi, step, off) in &self.loops {
            s.push_str(&format!("    for (i = {lo}; i <= {hi}; i += {step})\n"));
            let shift = off - 1; // one-based Fortran index i+off ↦ i+off-1
            if shift == 0 {
                s.push_str("        a[i] = 1.0;\n");
            } else if shift > 0 {
                s.push_str(&format!("        a[i + {shift}] = 1.0;\n"));
            } else {
                s.push_str(&format!("        a[i - {}] = 1.0;\n", -shift));
            }
        }
        s.push_str("}\n");
        s
    }
}

fn count_ops(program: &whirl::Program, op: Opr) -> usize {
    program
        .procedures
        .iter()
        .map(|p| p.tree.iter().filter(|&n| p.tree.node(n).operator == op).count())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both frontends accept their rendering of the same program and agree
    /// on statement structure.
    #[test]
    fn fortran_and_c_agree_structurally(p in mini_program()) {
        let f = compile_to_h(
            &[SourceFile::new("p.f", p.fortran(), Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        ).unwrap();
        let c = compile_to_h(
            &[SourceFile::new("p.c", p.c(), Lang::C)],
            DEFAULT_LAYOUT_BASE,
        ).unwrap();
        prop_assert_eq!(count_ops(&f, Opr::DoLoop), p.loops.len());
        prop_assert_eq!(count_ops(&c, Opr::DoLoop), p.loops.len());
        prop_assert_eq!(count_ops(&f, Opr::Istore), count_ops(&c, Opr::Istore));
        prop_assert_eq!(count_ops(&f, Opr::Array), count_ops(&c, Opr::Array));
    }

    /// Both paths produce identical zero-based H-level regions for the same
    /// logical accesses.
    #[test]
    fn fortran_and_c_regions_coincide(p in mini_program()) {
        let f = compile_to_h(
            &[SourceFile::new("p.f", p.fortran(), Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        ).unwrap();
        let c = compile_to_h(
            &[SourceFile::new("p.c", p.c(), Lang::C)],
            DEFAULT_LAYOUT_BASE,
        ).unwrap();
        let summarize = |prog: &whirl::Program, name: &str| -> Vec<String> {
            let id = prog.find_procedure(name).unwrap();
            ipa::local::summarize_procedure(prog, id)
                .accesses
                .iter()
                .map(|r| format!("{} {}", r.mode, r.region))
                .collect()
        };
        prop_assert_eq!(summarize(&f, "s"), summarize(&c, "s"));
    }

    /// whirl2f output of a parsed Fortran program re-parses and re-lowers to
    /// the same statement structure (the source-to-source property; "minor
    /// loss of semantics" may rename, but structure is stable).
    #[test]
    fn whirl2f_round_trip_is_stable(p in mini_program()) {
        let f = compile_to_h(
            &[SourceFile::new("p.f", p.fortran(), Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        ).unwrap();
        let emitted = whirl::emit::emit_program(&f, whirl::emit::Dialect::Fortran);
        // Re-wrap with the declarations the emitter omits.
        let redecl = format!(
            "subroutine s\n  double precision a({})\n  common /g/ a\n  integer i\n{}\nend\n",
            p.extent,
            emitted
                .lines()
                .filter(|l| !l.contains("subroutine"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        let f2 = compile_to_h(
            &[SourceFile::new("p2.f", redecl, Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        ).unwrap();
        prop_assert_eq!(count_ops(&f, Opr::DoLoop), count_ops(&f2, Opr::DoLoop));
        prop_assert_eq!(count_ops(&f, Opr::Istore), count_ops(&f2, Opr::Istore));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lexer never panics on arbitrary input (errors are values).
    #[test]
    fn lexer_is_total(input in "\\PC*") {
        let _ = frontend::lex::lex(&input, frontend::lex::LexMode::Fortran);
        let _ = frontend::lex::lex(&input, frontend::lex::LexMode::C);
    }

    /// The parsers never panic on arbitrary token-ish text.
    #[test]
    fn parsers_are_total(input in "[a-z0-9 ()=+,:\\n]*") {
        let _ = frontend::fortran::parse("f.f", &input);
        let _ = frontend::cparse::parse("f.c", &input);
    }
}
