//! Seeded synthetic program families for the scaling benches.
//!
//! The Algorithm 1 extraction bench (and the parallel-IPL ablation) need
//! programs whose size is a controlled parameter: number of procedures,
//! arrays per procedure, loop-nest depth, and statements per loop body.
//! Generation is deterministic for a given [`SynthConfig`] (seeded
//! `SmallRng`), so bench runs are reproducible.

use crate::GenSource;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic program family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Number of worker procedures (total procedures = this + 1 for main).
    pub procedures: usize,
    /// Global arrays shared by the workers.
    pub arrays: usize,
    /// Loop-nest depth inside each worker (1..=3).
    pub loop_depth: usize,
    /// Array-access statements per innermost body.
    pub stmts_per_loop: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { procedures: 8, arrays: 4, loop_depth: 2, stmts_per_loop: 4, seed: 42 }
    }
}

/// Extent of every synthetic array dimension.
pub const EXTENT: i64 = 100;

/// Generates one Fortran source implementing the family.
pub fn generate(cfg: &SynthConfig) -> GenSource {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let depth = cfg.loop_depth.clamp(1, 3);
    let mut s = String::new();

    let commons = |s: &mut String| {
        for a in 0..cfg.arrays {
            match depth {
                1 => s.push_str(&format!("  double precision g{a}({EXTENT})\n")),
                2 => s.push_str(&format!("  double precision g{a}({EXTENT}, {EXTENT})\n")),
                _ => s.push_str(&format!(
                    "  double precision g{a}({EXTENT}, {EXTENT}, {EXTENT})\n"
                )),
            }
        }
        s.push('\n');
        s.push_str("  common /gsyn/ ");
        let names: Vec<String> = (0..cfg.arrays).map(|a| format!("g{a}")).collect();
        s.push_str(&names.join(", "));
        s.push('\n');
    };

    s.push_str("program main\n");
    commons(&mut s);
    for p in 0..cfg.procedures {
        s.push_str(&format!("  call work{p}\n"));
    }
    s.push_str("end program main\n\n");

    let ivars = ["i", "j", "k"];
    for p in 0..cfg.procedures {
        s.push_str(&format!("subroutine work{p}\n"));
        commons(&mut s);
        s.push_str("  integer i, j, k\n");
        // Open the nest; vary bounds/strides deterministically. Subscripts
        // below reach back up to 2 (`iv - 2`), so the lower loop bound must
        // stay ≥ 3 to keep every access inside the declared `1..EXTENT`.
        for (d, iv) in ivars.iter().enumerate().take(depth) {
            let lo = 3 + rng.gen_range(0..5) as i64;
            let hi = EXTENT - rng.gen_range(0..5) as i64;
            let step = [1, 1, 1, 2, 3][rng.gen_range(0..5usize)];
            let indent = "  ".repeat(d + 1);
            if step == 1 {
                s.push_str(&format!("{indent}do {iv} = {lo}, {hi}\n"));
            } else {
                s.push_str(&format!("{indent}do {iv} = {lo}, {hi}, {step}\n"));
            }
        }
        let body_indent = "  ".repeat(depth + 1);
        for _ in 0..cfg.stmts_per_loop {
            let dst = rng.gen_range(0..cfg.arrays);
            let src = rng.gen_range(0..cfg.arrays);
            let off = rng.gen_range(0..3);
            let sub = |off: i64| -> String {
                let parts: Vec<String> = (0..depth)
                    .map(|d| {
                        if off == 0 {
                            ivars[d].to_string()
                        } else {
                            format!("{} - {off}", ivars[d])
                        }
                    })
                    .collect();
                parts.join(", ")
            };
            s.push_str(&format!(
                "{body_indent}g{dst}({}) = g{src}({}) + 1.0\n",
                sub(0),
                sub(off)
            ));
        }
        for d in (0..depth).rev() {
            let indent = "  ".repeat(d + 1);
            s.push_str(&format!("{indent}end do\n"));
        }
        s.push_str(&format!("end subroutine work{p}\n\n"));
    }
    GenSource::fortran(format!("synth_p{}.f", cfg.procedures), s)
}

/// A family sweep: one program per procedure count in `counts`.
pub fn sweep_procedures(counts: &[usize], base: SynthConfig) -> Vec<(usize, GenSource)> {
    counts
        .iter()
        .map(|&n| {
            let cfg = SynthConfig { procedures: n, ..base };
            (n, generate(&cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig { seed: 1, ..Default::default() });
        let b = generate(&SynthConfig { seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn procedure_count_matches_config() {
        let cfg = SynthConfig { procedures: 5, ..Default::default() };
        let s = generate(&cfg);
        assert_eq!(s.text.matches("subroutine work").count(), 2 * 5); // decl + end
        assert_eq!(s.text.matches("  call work").count(), 5);
    }

    #[test]
    fn depth_controls_dimensions() {
        let one = generate(&SynthConfig { loop_depth: 1, ..Default::default() });
        assert!(one.text.contains(&format!("g0({EXTENT})")));
        let three = generate(&SynthConfig { loop_depth: 3, ..Default::default() });
        assert!(three.text.contains(&format!("g0({EXTENT}, {EXTENT}, {EXTENT})")));
    }

    #[test]
    fn sweep_produces_one_program_per_count() {
        let out = sweep_procedures(&[1, 4, 8], SynthConfig::default());
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].0, 4);
    }
}
