//! A Coarray Fortran (PGAS) workload — the paper's future-work target:
//! "support for the Partitioned Global Address Space (PGAS) model has been
//! incorporated into the OpenUH compiler via coarrays ... We plan to extend
//! our array analysis tool to support the analysis and visualization of
//! remote array accesses."
//!
//! The generated program performs a classic halo exchange: each image reads
//! its left neighbour's boundary strip and writes its right neighbour's,
//! plus purely local compute — so the analysis must separate remote from
//! local regions.

use crate::GenSource;

/// The halo-exchange source.
pub fn source() -> GenSource {
    GenSource::fortran(
        "halo.f",
        "\
program halo
  double precision x(100)[*]
  double precision halo_left(8), work(100)
  common /cg/ halo_left, work
  integer i, left, right
  left = 1
  right = 2
  do i = 1, 8
    halo_left(i) = x(i + 92)[left]
  end do
  do i = 1, 8
    x(i)[right] = work(i + 92)
  end do
  do i = 9, 92
    work(i) = x(i) + halo_left(1)
  end do
end program halo
",
    )
}

/// Width of the exchanged halo strips.
pub const HALO_WIDTH: i64 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_a_coarray() {
        let s = source();
        assert!(s.text.contains("x(100)[*]"));
    }

    #[test]
    fn has_remote_reads_and_writes() {
        let s = source();
        assert!(s.text.contains("x(i + 92)[left]"), "remote read");
        assert!(s.text.contains("x(i)[right] ="), "remote write");
        assert!(s.text.contains("work(i) = x(i)"), "local read");
    }
}
