//! A structurally-faithful miniature of the NAS LU benchmark (serial).
//!
//! "The NAS Parallel Benchmarks (NPB 3.3) is a suite of eight codes ... We
//! use the serial version of LU" — "the LU benchmark has 24 procedures"
//! (Fig. 11). This generator reproduces the *analysis-relevant* structure:
//!
//! - the 24 procedures of Fig. 11 with the same names and caller/callee
//!   wiring;
//! - Case 1 (Fig. 12/13, Table II): `xcr`/`xce` are 5-element `double`
//!   formals of `verify`, each **used 4 times** — once in a first loop over
//!   `1:5` and three times in a second loop over the same region — so the
//!   tool reports `USE refs 4, (1:5:1), 40 bytes, AD 10` and `FORMAL refs 1,
//!   AD 2`, and the advisor proposes fusing the two loops;
//! - Case 2 (Fig. 14, Table III): `u` is a global 4-D `double` array with
//!   source dims `64|65|65|5` (1 352 000 elements, 10 816 000 bytes), **used
//!   110 times** in one loop nest of `rhs` over the region
//!   `(1:3, 1:5, 1:10, 1:4)` with the last dimension accessed separately —
//!   so AD truncates to 0 and the advisor proposes
//!   `!$acc region copyin(u(1:3,1:5,1:10,1:4))`;
//! - the global `class` character cell defined 9 times in `verify`
//!   (`AD 900`, the hotspot row of Fig. 12).

use crate::GenSource;

/// The 24 procedure names of Fig. 11, entry first.
pub const PROC_NAMES: [&str; 24] = [
    "applu",
    "read_input",
    "domain",
    "setcoeff",
    "setbv",
    "setiv",
    "erhs",
    "ssor",
    "rhs",
    "jacld",
    "blts",
    "jacu",
    "buts",
    "l2norm",
    "error",
    "pintgr",
    "verify",
    "print_results",
    "timer_clear",
    "timer_start",
    "timer_stop",
    "timer_read",
    "elapsed_time",
    "exact",
];

/// Number of `u` USE references generated inside `rhs` (Table III / Fig. 14).
pub const U_USE_REFS: usize = 110;

/// Number of `xcr`/`xce` USE references inside `verify` (Table II / Fig. 12).
pub const XCR_USE_REFS: usize = 4;

/// Common-block declarations shared by the field procedures.
fn field_commons() -> &'static str {
    "  double precision u(64, 65, 65, 5)\n\
     \x20 double precision rsd(64, 65, 65, 5)\n\
     \x20 double precision frct(64, 65, 65, 5)\n\
     \x20 common /cvar/ u, rsd, frct\n"
}

/// Workload scale: grid size (interior loops run `2..=grid-1`, boundary
/// loops `1..=grid`) and SSOR time steps. Declarations stay at the paper's
/// `64|65|65|5` shape regardless, so the Table III attributes are invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuConfig {
    /// Grid extent (≤ 33 so every loop stays inside the declarations).
    pub grid: i64,
    /// SSOR iterations.
    pub steps: i64,
}

impl Default for LuConfig {
    fn default() -> Self {
        // The paper's class-W-like shape used in Figs. 11-14.
        LuConfig { grid: 33, steps: 50 }
    }
}

impl LuConfig {
    /// A small configuration for the dynamic-execution tests.
    pub fn tiny() -> Self {
        LuConfig { grid: 6, steps: 2 }
    }
}

/// Generates the full mini-LU source set at the default scale.
pub fn sources() -> Vec<GenSource> {
    sources_scaled(LuConfig::default())
}

/// Generates the full mini-LU source set at a chosen scale.
pub fn sources_scaled(cfg: LuConfig) -> Vec<GenSource> {
    assert!(cfg.grid >= 4 && cfg.grid <= 33, "grid must fit the declarations");
    let out = vec![
        lu_main(),
        read_input(),
        domain(),
        setcoeff(),
        setbv(),
        setiv(),
        erhs(),
        ssor(),
        rhs(),
        jacld(),
        blts(),
        jacu(),
        buts(),
        l2norm(),
        error_f(),
        pintgr(),
        verify(),
        exact(),
        print_results(),
        timers(),
    ];
    let d = LuConfig::default();
    if cfg == d {
        return out;
    }
    // Rewrite the scale-bearing literals: interior bounds `2, 32`, boundary
    // bounds `1, 33`, descending `32, 2, -1`, and the step count `1, 50`.
    out.into_iter()
        .map(|mut g| {
            g.text = g
                .text
                .replace("do istep = 1, 50", &format!("do istep = 1, {}", cfg.steps))
                .replace("2, 32", &format!("2, {}", cfg.grid - 1))
                .replace("32, 2, -1", &format!("{}, 2, -1", cfg.grid - 1))
                .replace("1, 33", &format!("1, {}", cfg.grid));
            g
        })
        .collect()
}

fn lu_main() -> GenSource {
    let mut s = String::from("program applu\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  double precision xcr(5), xce(5)
  double precision xci
  integer i
  call read_input
  call domain
  call setcoeff
  call setbv
  call setiv
  call erhs
  call ssor
  do i = 1, 5
    xcr(i) = 0.0
    xce(i) = 0.0
  end do
  xci = 0.0
  call error(xce)
  call pintgr(xci)
  call l2norm(rsd, xcr)
  call verify(xcr, xce, xci)
  call print_results
end program applu
",
    );
    GenSource::fortran("lu.f", s)
}

fn read_input() -> GenSource {
    GenSource::fortran(
        "read_input.f",
        "\
subroutine read_input
  integer itmax, inorm
  double precision dt
  common /cprcon/ itmax, inorm, dt
  itmax = 50
  inorm = 50
  dt = 0.5
end subroutine read_input
",
    )
}

fn domain() -> GenSource {
    GenSource::fortran(
        "domain.f",
        "\
subroutine domain
  integer nx, ny, nz
  common /cgcon/ nx, ny, nz
  nx = 33
  ny = 33
  nz = 33
end subroutine domain
",
    )
}

fn setcoeff() -> GenSource {
    GenSource::fortran(
        "setcoeff.f",
        "\
subroutine setcoeff
  double precision ce(5, 13)
  common /cexact/ ce
  integer i, j
  do i = 1, 5
    do j = 1, 13
      ce(i, j) = 0.1
    end do
  end do
end subroutine setcoeff
",
    )
}

fn setbv() -> GenSource {
    let mut s = String::from("subroutine setbv\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  double precision temp1(5)
  integer i, j, k, m
  do j = 1, 33
    do k = 1, 33
      call exact(1, j, k, temp1)
      do m = 1, 5
        u(1, j, k, m) = temp1(m)
      end do
    end do
  end do
end subroutine setbv
",
    );
    GenSource::fortran("setbv.f", s)
}

fn setiv() -> GenSource {
    let mut s = String::from("subroutine setiv\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  double precision temp1(5)
  integer i, j, k, m
  do i = 2, 32
    do j = 2, 32
      do k = 2, 32
        call exact(i, j, k, temp1)
        do m = 1, 5
          u(i, j, k, m) = temp1(m)
        end do
      end do
    end do
  end do
end subroutine setiv
",
    );
    GenSource::fortran("setiv.f", s)
}

fn erhs() -> GenSource {
    let mut s = String::from("subroutine erhs\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  integer i, j, k, m
  do i = 1, 33
    do j = 1, 33
      do k = 1, 33
        do m = 1, 5
          frct(i, j, k, m) = 0.0
        end do
      end do
    end do
  end do
end subroutine erhs
",
    );
    GenSource::fortran("erhs.f", s)
}

fn ssor() -> GenSource {
    let mut s = String::from("subroutine ssor\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  double precision rsdnm(5)
  double precision tv(64)
  integer istep, itmax, inorm
  double precision dt, tmax
  common /cprcon/ itmax, inorm, dt
  call timer_clear(1)
  do istep = 1, 50
    call timer_start(1)
    call rhs
    call jacld(istep)
    call blts(istep)
    call jacu(istep)
    call buts(istep)
    call l2norm(rsd, rsdnm)
    call timer_stop(1)
  end do
  call timer_read(1, tv)
  tmax = tv(1)
end subroutine ssor
",
    );
    GenSource::fortran("ssor.f", s)
}

/// `rhs` — Case 2's host. One loop nest over `(1:3, 1:5, 1:10)` whose body
/// reads `u` exactly [`U_USE_REFS`] times, the last dimension accessed with
/// separate constant subscripts `1..=4`.
fn rhs() -> GenSource {
    let mut s = String::from("subroutine rhs\n");
    s.push_str(field_commons());
    s.push_str("  integer i, j, k\n");
    s.push_str("  do i = 1, 3\n    do j = 1, 5\n      do k = 1, 10\n");
    // 27 statements of 4 uses + 1 statement of 2 uses = 110 uses.
    for n in 0..27 {
        let m = (n % 4) + 1;
        s.push_str(&format!(
            "        rsd(i, j, k, {m}) = u(i, j, k, 1) + u(i, j, k, 2) + u(i, j, k, 3) + u(i, j, k, 4)\n"
        ));
    }
    s.push_str("        rsd(i, j, k, 5) = u(i, j, k, 1) - u(i, j, k, 4)\n");
    s.push_str("      end do\n    end do\n  end do\nend subroutine rhs\n");
    GenSource::fortran("rhs.f", s)
}

fn jacld() -> GenSource {
    let mut s = String::from("subroutine jacld(k)\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  double precision d(64, 64, 5, 5)
  common /cjac/ d
  integer k, i, j
  do i = 2, 32
    do j = 2, 32
      d(i, j, 1, 1) = u(i, j, k, 1)
      d(i, j, 2, 2) = u(i, j, k, 2)
    end do
  end do
end subroutine jacld
",
    );
    GenSource::fortran("jacld.f", s)
}

fn blts() -> GenSource {
    let mut s = String::from("subroutine blts(k)\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  double precision d(64, 64, 5, 5)
  common /cjac/ d
  integer k, i, j, m
  do i = 2, 32
    do j = 2, 32
      do m = 1, 5
        rsd(i, j, k, m) = rsd(i, j, k, m) - d(i, j, m, 1) * rsd(i - 1, j, k, m)
      end do
    end do
  end do
end subroutine blts
",
    );
    GenSource::fortran("blts.f", s)
}

fn jacu() -> GenSource {
    let mut s = String::from("subroutine jacu(k)\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  double precision d(64, 64, 5, 5)
  common /cjac/ d
  integer k, i, j
  do i = 2, 32
    do j = 2, 32
      d(i, j, 3, 3) = u(i, j, k, 3)
      d(i, j, 4, 4) = u(i, j, k, 4)
    end do
  end do
end subroutine jacu
",
    );
    GenSource::fortran("jacu.f", s)
}

fn buts() -> GenSource {
    let mut s = String::from("subroutine buts(k)\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  double precision d(64, 64, 5, 5)
  common /cjac/ d
  integer k, i, j, m
  do i = 32, 2, -1
    do j = 32, 2, -1
      do m = 1, 5
        rsd(i, j, k, m) = rsd(i, j, k, m) - d(i, j, m, 2) * rsd(i + 1, j, k, m)
      end do
    end do
  end do
end subroutine buts
",
    );
    GenSource::fortran("buts.f", s)
}

fn l2norm() -> GenSource {
    GenSource::fortran(
        "l2norm.f",
        "\
subroutine l2norm(v, sum)
  double precision v(64, 65, 65, 5)
  double precision sum(5)
  integer i, j, k, m
  do m = 1, 5
    sum(m) = 0.0
  end do
  do i = 2, 32
    do j = 2, 32
      do k = 2, 32
        do m = 1, 5
          sum(m) = sum(m) + v(i, j, k, m) * v(i, j, k, m)
        end do
      end do
    end do
  end do
end subroutine l2norm
",
    )
}

fn error_f() -> GenSource {
    let mut s = String::from("subroutine error(errnm)\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  double precision errnm(5)
  double precision u000ijk(5)
  integer i, j, k, m
  do m = 1, 5
    errnm(m) = 0.0
  end do
  do i = 2, 32
    do j = 2, 32
      do k = 2, 32
        call exact(i, j, k, u000ijk)
        do m = 1, 5
          errnm(m) = errnm(m) + (u000ijk(m) - u(i, j, k, m)) * (u000ijk(m) - u(i, j, k, m))
        end do
      end do
    end do
  end do
end subroutine error
",
    );
    GenSource::fortran("error.f", s)
}

fn pintgr() -> GenSource {
    let mut s = String::from("subroutine pintgr(frc)\n");
    s.push_str(field_commons());
    s.push_str(
        "\
  double precision frc
  double precision phi1(35, 35)
  integer i, j
  frc = 0.0
  do i = 1, 33
    do j = 1, 33
      phi1(i, j) = u(i, j, 2, 5)
      frc = frc + phi1(i, j)
    end do
  end do
end subroutine pintgr
",
    );
    GenSource::fortran("pintgr.f", s)
}

/// `verify` — Case 1's host. `xcr` and `xce` are 5-element double formals;
/// each is read once in a first `1:5` loop and three times in a second
/// `1:5` loop (4 USE references over the identical region — the fusion
/// opportunity of Fig. 13). `class` is a global one-byte character cell
/// defined 9 times (AD 900).
fn verify() -> GenSource {
    GenSource::fortran(
        "verify.f",
        "\
subroutine verify(xcr, xce, xci)
  double precision xcr(5), xce(5)
  double precision xci
  character class(1)
  common /cclass/ class
  double precision xcrref(5), xceref(5)
  double precision xcrmax, xcemax, xcrdif, xcedif
  integer m
  class(1) = 'u'
  class(1) = 's'
  class(1) = 'w'
  class(1) = 'a'
  class(1) = 'b'
  class(1) = 'c'
  class(1) = 'd'
  class(1) = 'e'
  class(1) = 'z'
  do m = 1, 5
    xcrref(m) = 1.0
    xceref(m) = 1.0
  end do
  xcrmax = 0.0
  xcemax = 0.0
  do m = 1, 5
    xcrmax = xcrmax + xcr(m)
    xcemax = xcemax + xce(m)
  end do
  xcrdif = 0.0
  xcedif = 0.0
  do m = 1, 5
    xcrdif = xcrdif + (xcr(m) - xcrref(m)) * (xcr(m) - xcrref(m)) / xcr(m)
    xcedif = xcedif + (xce(m) - xceref(m)) * (xce(m) - xceref(m)) / xce(m)
  end do
  xcrmax = xcrmax + xci
end subroutine verify
",
    )
}

fn exact() -> GenSource {
    GenSource::fortran(
        "exact.f",
        "\
subroutine exact(i, j, k, u000ijk)
  double precision u000ijk(5)
  double precision ce(5, 13)
  common /cexact/ ce
  integer i, j, k, m
  do m = 1, 5
    u000ijk(m) = ce(m, 1) + ce(m, 2) * i + ce(m, 3) * j + ce(m, 4) * k
  end do
end subroutine exact
",
    )
}

fn print_results() -> GenSource {
    GenSource::fortran(
        "print_results.f",
        "\
subroutine print_results
  character class(1)
  common /cclass/ class
  double precision summary(8)
  double precision total
  integer i
  do i = 1, 8
    summary(i) = 0.0
  end do
  total = 0.0
  do i = 1, 8
    total = total + summary(i)
  end do
end subroutine print_results
",
    )
}

fn timers() -> GenSource {
    GenSource::fortran(
        "timers.f",
        "\
subroutine timer_clear(n)
  double precision elapsed(64), start(64)
  common /ctimer/ elapsed, start
  integer n
  elapsed(n) = 0.0
end subroutine timer_clear

subroutine timer_start(n)
  double precision elapsed(64), start(64)
  common /ctimer/ elapsed, start
  integer n
  double precision t
  call elapsed_time(t)
  start(n) = t
end subroutine timer_start

subroutine timer_stop(n)
  double precision elapsed(64), start(64)
  common /ctimer/ elapsed, start
  integer n
  double precision t, now
  call elapsed_time(now)
  t = now - start(n)
  elapsed(n) = elapsed(n) + t
end subroutine timer_stop

subroutine timer_read(n, tv)
  double precision elapsed(64), start(64)
  common /ctimer/ elapsed, start
  integer n
  double precision tv(64)
  tv(n) = elapsed(n)
end subroutine timer_read

subroutine elapsed_time(t)
  double precision t
  t = 0.0
end subroutine elapsed_time
",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_24_procedures() {
        let srcs = sources();
        let mut count = 0;
        for s in &srcs {
            count += s.text.matches("\nend subroutine").count()
                + s.text.matches("\nend program").count();
        }
        assert_eq!(count, 24);
    }

    #[test]
    fn every_fig11_name_appears() {
        let all: String = sources().into_iter().map(|s| s.text).collect();
        for name in PROC_NAMES {
            let pat_sub = format!("subroutine {name}");
            let pat_prog = format!("program {name}");
            assert!(
                all.contains(&pat_sub) || all.contains(&pat_prog),
                "missing procedure {name}"
            );
        }
    }

    #[test]
    fn rhs_has_110_u_reads() {
        let rhs = rhs();
        assert_eq!(rhs.text.matches("u(i, j, k,").count(), U_USE_REFS);
    }

    #[test]
    fn rhs_nest_matches_case2_region() {
        let rhs = rhs();
        assert!(rhs.text.contains("do i = 1, 3"));
        assert!(rhs.text.contains("do j = 1, 5"));
        assert!(rhs.text.contains("do k = 1, 10"));
        for m in 1..=4 {
            assert!(rhs.text.contains(&format!("u(i, j, k, {m})")));
        }
    }

    #[test]
    fn verify_has_4_xcr_reads_in_two_loops() {
        let v = verify();
        assert_eq!(v.text.matches("xcr(m)").count(), XCR_USE_REFS);
        assert_eq!(v.text.matches("xce(m)").count(), XCR_USE_REFS);
    }

    #[test]
    fn class_defined_nine_times() {
        let v = verify();
        assert_eq!(v.text.matches("class(1) = ").count(), 9);
    }

    #[test]
    fn u_dimensions_match_table3() {
        assert!(field_commons().contains("u(64, 65, 65, 5)"));
    }
}
