//! The paper's Fig. 1 example.
//!
//! "Once procedure P1 is invoked, the region of array A represented by the
//! triplet notation format (1:100:1, 1:100:1) will be defined. Similarly, on
//! invocation of procedure P2, the region ... (101:200:1, 101:200:1) will be
//! used. ... This implies that both procedures can concurrently and safely
//! be parallelized."

use crate::GenSource;

/// The Fig. 1 Fortran source: `Add` calls `P1` (defines the lower-left
/// quadrant of `A`) and `P2` (uses the upper-right quadrant) inside a loop.
pub fn source() -> GenSource {
    GenSource::fortran(
        "fig1.f",
        "\
subroutine add(m)
  integer, dimension(1:200, 1:200) :: a
  common /g/ a
  integer :: m, j
  do j = 1, m
    call p1(a, j)
    call p2(a, j)
  end do
end subroutine add

subroutine p1(x, k)
  integer, dimension(1:200, 1:200) :: x
  integer :: k, i, j
  do i = 1, 100
    do j = 1, 100
      x(i, j) = 0
    end do
  end do
end subroutine p1

subroutine p2(x, k)
  integer, dimension(1:200, 1:200) :: x
  integer :: k, i, j, t
  do i = 101, 200
    do j = 101, 200
      t = x(i, j)
    end do
  end do
end subroutine p2
",
    )
}

/// A variant whose P2 region overlaps P1's — the negative control for the
/// parallelization test.
pub fn overlapping_variant() -> GenSource {
    let base = source();
    GenSource::fortran(
        "fig1_overlap.f",
        base.text.replace("101, 200", "50, 150").replace("(101:200", "(50:150"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_mentions_both_quadrants() {
        let s = source();
        assert!(s.text.contains("do i = 1, 100"));
        assert!(s.text.contains("do i = 101, 200"));
        assert!(s.fortran);
    }

    #[test]
    fn overlap_variant_differs() {
        let o = overlapping_variant();
        assert!(o.text.contains("do i = 50, 150"));
        assert!(!o.text.contains("101, 200"));
    }
}
