//! Workload generators: the exact sources behind every paper figure/table.
//!
//! - [`fig1`] — the interprocedural example of Fig. 1 (`Add`/`P1`/`P2`);
//! - [`fig10`] — the `matrix.c` example of Figs. 6/7/9/10 (`aarr`);
//! - [`mini_lu`] — a structurally-faithful miniature of NAS LU (serial):
//!   the 24 procedures of Fig. 11, the `xcr`/`xce` arrays of Case 1
//!   (Fig. 12/13, Table II) and the 4-D `u` array of Case 2 (Fig. 14,
//!   Table III);
//! - [`synthetic`] — seeded program families for the scaling benches.
//!
//! Generators return plain `(file name, source text)` pairs; callers wrap
//! them in `frontend::SourceFile` with the right language tag.

pub mod caf;
pub mod fig1;
pub mod fig10;
pub mod mini_lu;
pub mod stencil;
pub mod synthetic;

/// A generated source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenSource {
    /// File name (e.g. `verify.f`).
    pub name: String,
    /// Source text.
    pub text: String,
    /// True for Fortran, false for C.
    pub fortran: bool,
}

impl GenSource {
    /// Fortran source.
    pub fn fortran(name: impl Into<String>, text: impl Into<String>) -> Self {
        GenSource { name: name.into(), text: text.into(), fortran: true }
    }

    /// C source.
    pub fn c(name: impl Into<String>, text: impl Into<String>) -> Self {
        GenSource { name: name.into(), text: text.into(), fortran: false }
    }

    /// The language tag a front end expects.
    pub fn lang(&self) -> whirl::Lang {
        if self.fortran {
            whirl::Lang::Fortran
        } else {
            whirl::Lang::C
        }
    }
}

impl From<GenSource> for frontend::SourceFile {
    fn from(g: GenSource) -> Self {
        let lang = g.lang();
        frontend::SourceFile { name: g.name, text: g.text, lang }
    }
}

impl From<&GenSource> for frontend::SourceFile {
    fn from(g: &GenSource) -> Self {
        frontend::SourceFile::new(&g.name, &g.text, g.lang())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gensource_constructors() {
        let f = GenSource::fortran("a.f", "x");
        assert!(f.fortran);
        let c = GenSource::c("a.c", "x");
        assert!(!c.fortran);
        assert_eq!(c.name, "a.c");
    }
}
