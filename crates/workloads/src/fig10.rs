//! The `matrix.c` example of Figs. 6/7/9/10.
//!
//! The paper's Fig. 9 output for `aarr` fixes the access pattern precisely:
//! `DEF ×2` over `(0:7:1)` and `(1:8:1)`, `USE ×3` over `(0:7:1)` twice and
//! `(2:6:2)` once — "array aarr has been defined twice and used three
//! times"; element size 4, `int`, dim 20, tot 20, 80 bytes; access density
//! 2 (DEF) and 3 (USE). The advisor consequences: shrink to `int aarr[8]`
//! and insert `#pragma acc region for copyin(aarr[2:7])` before the last
//! loop.

use crate::GenSource;

/// The reconstructed `matrix.c`.
pub fn source() -> GenSource {
    GenSource::c(
        "matrix.c",
        "\
int aarr[20];

void main() {
    int i, sum;
    for (i = 0; i <= 7; i++)
        aarr[i] = i;
    for (i = 0; i < 8; i++)
        aarr[i + 1] = aarr[i] + aarr[i];
    sum = 0;
    for (i = 2; i <= 6; i += 2)
        sum = sum + aarr[i];
}
",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_aarr_20() {
        let s = source();
        assert!(s.text.contains("int aarr[20];"));
        assert!(!s.fortran);
    }

    #[test]
    fn has_strided_read_only_loop() {
        let s = source();
        assert!(s.text.contains("i += 2"));
        assert!(s.text.contains("sum + aarr[i]"));
    }
}
