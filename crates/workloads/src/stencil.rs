//! A 2-D Jacobi stencil in C — the second C-family workload.
//!
//! Exercises what `matrix.c` does not: multi-dimensional C arrays (row-major
//! already, no reversal in lowering), cross-procedure regions over two
//! arrays, interior-vs-halo bounds (`1..=n-2` accesses on an `n×n`
//! declaration), and a loop nest whose parallelism the dependence test must
//! prove (reads `grid`, writes `next` — no loop-carried dependence).

use crate::GenSource;

/// Grid extent (declared `N × N`).
pub const N: i64 = 64;

/// The stencil source: `sweep` + `copyback` called from `main`.
pub fn source() -> GenSource {
    let n = N;
    let interior = N - 2;
    GenSource::c(
        "stencil.c",
        format!(
            "\
double grid[{n}][{n}];
double next[{n}][{n}];

void sweep() {{
    int i, j;
    for (i = 1; i <= {interior}; i++)
        for (j = 1; j <= {interior}; j++)
            next[i][j] = (grid[i - 1][j] + grid[i + 1][j] + grid[i][j - 1] + grid[i][j + 1]) / 4.0;
}}

void copyback() {{
    int i, j;
    for (i = 1; i <= {interior}; i++)
        for (j = 1; j <= {interior}; j++)
            grid[i][j] = next[i][j];
}}

void main() {{
    int step, i, j;
    for (i = 0; i < {n}; i++)
        for (j = 0; j < {n}; j++)
            grid[i][j] = 1.0;
    for (step = 1; step <= 4; step++) {{
        sweep();
        copyback();
    }}
}}
"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_two_grids() {
        let s = source();
        assert!(s.text.contains(&format!("double grid[{N}][{N}];")));
        assert!(s.text.contains(&format!("double next[{N}][{N}];")));
        assert!(!s.fortran);
    }

    #[test]
    fn interior_bounds() {
        let s = source();
        assert!(s.text.contains(&format!("i <= {}", N - 2)));
    }
}
