//! Property tests for the cache simulator: inclusion-style invariants that
//! hold for any LRU set-associative cache.

use memsim::{Cache, CacheConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn config_strategy() -> impl Strategy<Value = CacheConfig> {
    (6u32..10, 1u64..5).prop_map(|(cap_pow, ways)| CacheConfig {
        capacity_bytes: (1 << cap_pow) * ways,
        line_bytes: 64,
        ways,
    })
}

fn stream_strategy() -> impl Strategy<Value = Vec<u64>> {
    (0u64..10_000, 1usize..400).prop_map(|(seed, len)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0u64..8192)).collect()
    })
}

proptest! {
    /// Hits + misses equals accesses, and misses never exceed accesses.
    #[test]
    fn stats_are_consistent(cfg in config_strategy(), stream in stream_strategy()) {
        let mut c = Cache::new(cfg);
        c.run(stream.iter().copied());
        let s = c.stats();
        prop_assert_eq!(s.accesses(), stream.len() as u64);
        prop_assert!(s.miss_ratio() >= 0.0 && s.miss_ratio() <= 1.0);
    }

    /// An immediately repeated access always hits (LRU keeps the MRU line).
    #[test]
    fn immediate_rereference_hits(cfg in config_strategy(), stream in stream_strategy()) {
        let mut c = Cache::new(cfg);
        for &a in &stream {
            c.access(a);
            prop_assert!(c.access(a), "immediate re-access of {a:#x} missed");
        }
    }

    /// Cold misses: distinct lines in the stream lower-bound the misses of
    /// a cold cache, and a cache can never miss more than once per access.
    #[test]
    fn cold_miss_lower_bound(cfg in config_strategy(), stream in stream_strategy()) {
        let mut c = Cache::new(cfg);
        c.run(stream.iter().copied());
        let distinct_lines: std::collections::BTreeSet<u64> =
            stream.iter().map(|a| a / cfg.line_bytes).collect();
        prop_assert!(c.stats().misses >= distinct_lines.len() as u64
            || c.stats().misses == stream.len() as u64);
        // A cache at least as large as the distinct working set with full
        // associativity misses exactly once per line.
        // Fully associative, 256 lines — the stream spans at most 128.
        let big = CacheConfig {
            capacity_bytes: 256 * 64,
            line_bytes: 64,
            ways: 256,
        };
        let mut b = Cache::new(big);
        b.run(stream.iter().copied());
        prop_assert_eq!(b.stats().misses, distinct_lines.len() as u64);
    }

    /// More ways at equal capacity never increases misses for a repeated
    /// small working set that fits (associativity relieves conflicts).
    #[test]
    fn associativity_helps_fitting_sets(seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        // 8 lines, re-walked 4 times.
        let lines: Vec<u64> = (0..8).map(|_| rng.gen_range(0u64..64) * 64).collect();
        let stream: Vec<u64> = (0..4).flat_map(|_| lines.clone()).collect();
        let direct = CacheConfig { capacity_bytes: 1024, line_bytes: 64, ways: 1 };
        let full = CacheConfig { capacity_bytes: 1024, line_bytes: 64, ways: 16 };
        let mut cd = Cache::new(direct);
        cd.run(stream.iter().copied());
        let mut cf = Cache::new(full);
        cf.run(stream.iter().copied());
        prop_assert!(cf.stats().misses <= cd.stats().misses);
    }

    /// Reset restores cold-cache behaviour exactly.
    #[test]
    fn reset_is_cold(cfg in config_strategy(), stream in stream_strategy()) {
        let mut once = Cache::new(cfg);
        once.run(stream.iter().copied());
        let first = once.stats();

        let mut twice = Cache::new(cfg);
        twice.run(stream.iter().copied());
        twice.reset();
        twice.run(stream.iter().copied());
        prop_assert_eq!(twice.stats(), first);
    }
}
