//! Set-associative LRU cache model.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set); lines/ways must divide evenly.
    pub ways: u64,
}

impl CacheConfig {
    /// A small L1-like default: 32 KiB, 64-byte lines, 8-way.
    pub fn l1() -> Self {
        CacheConfig { capacity_bytes: 32 * 1024, line_bytes: 64, ways: 8 }
    }

    /// A tiny cache for making capacity effects visible in tests.
    pub fn tiny(capacity_bytes: u64) -> Self {
        CacheConfig { capacity_bytes, line_bytes: 64, ways: 2 }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.capacity_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 when no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// ```
/// use memsim::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig::l1());
/// assert!(!cache.access(0x1000)); // cold miss
/// assert!(cache.access(0x1000)); // hit
/// assert!(cache.access(0x1008)); // same 64-byte line
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: (tag, last-use stamp) per way; `None` = invalid.
    sets: Vec<Vec<Option<(u64, u64)>>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways >= 1);
        let sets = config.sets();
        Cache {
            config,
            sets: vec![vec![None; config.ways as usize]; sets as usize],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses one byte address; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.config.line_bytes;
        let set_idx = (line % self.config.sets()) as usize;
        let tag = line / self.config.sets();
        let set = &mut self.sets[set_idx];

        if let Some(way) = set
            .iter()
            .position(|slot| matches!(slot, Some((t, _)) if *t == tag))
        {
            set[way] = Some((tag, self.clock));
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Fill: invalid way first, else evict the LRU way (way 0 for the
        // degenerate zero-way configuration).
        let victim = match set.iter().position(Option::is_none) {
            Some(i) => i,
            None => set
                .iter()
                .enumerate()
                .min_by_key(|(_, slot)| slot.map(|(_, stamp)| stamp).unwrap_or(0))
                .map_or(0, |(i, _)| i),
        };
        set[victim] = Some((tag, self.clock));
        false
    }

    /// Runs a whole address stream.
    pub fn run(&mut self, addrs: impl IntoIterator<Item = u64>) {
        for a in addrs {
            self.access(a);
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.fill(None);
        }
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::l1();
        assert_eq!(c.sets(), 64);
        let t = CacheConfig::tiny(1024);
        assert_eq!(t.sets(), 8);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig::l1());
        assert!(!c.access(0x1000), "cold miss");
        assert!(c.access(0x1000), "second access hits");
        assert!(c.access(0x1001), "same line hits");
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn spatial_locality_within_line() {
        let mut c = Cache::new(CacheConfig::l1());
        c.run((0..64).map(|i| 0x2000 + i));
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 63);
    }

    #[test]
    fn capacity_eviction_under_lru() {
        // 2-way tiny cache: three lines mapping to the same set evict LRU.
        let cfg = CacheConfig { capacity_bytes: 128, line_bytes: 64, ways: 2 };
        assert_eq!(cfg.sets(), 1);
        let mut c = Cache::new(cfg);
        c.access(0); // line A miss
        c.access(64); // line B miss
        c.access(0); // A hit (B is LRU)
        c.access(128); // line C miss, evicts B
        assert!(c.access(0), "A stayed");
        assert!(!c.access(64), "B was evicted");
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn streaming_larger_than_cache_always_misses_lines() {
        let cfg = CacheConfig::tiny(1024);
        let mut c = Cache::new(cfg);
        // Two sequential passes over 8 KiB (128 lines ≫ 16 lines capacity).
        for _ in 0..2 {
            c.run((0..8192u64).step_by(64));
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 256);
        assert_eq!(s.misses, 256, "thrashing: nothing survives a pass");
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Cache::new(CacheConfig::l1());
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.access(0), "cold again after reset");
    }

    #[test]
    fn miss_ratio() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        Cache::new(CacheConfig { capacity_bytes: 1024, line_bytes: 48, ways: 2 });
    }
}
