//! `memsim` — a set-associative cache simulator.
//!
//! Case 1 of the paper fuses the two `verify` loops that read `XCR` so the
//! program can "optimize cache utilization and data locality by avoiding the
//! delay resulting from fetching XCR from memory again". The paper asserts
//! this qualitatively; this crate makes it measurable: build the address
//! stream of the split and fused loop structures and count misses in a
//! configurable LRU cache.
//!
//! - [`cache`] — the set-associative LRU cache with hit/miss statistics;
//! - [`stream`] — address-stream builders from array regions and the
//!   split-vs-fused loop experiment.

pub mod cache;
pub mod stream;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use stream::{fusion_experiment, region_stream, ArraySpec, FusionReport};
