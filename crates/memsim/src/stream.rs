//! Address-stream builders and the loop-fusion experiment (Case 1).

use crate::cache::{Cache, CacheConfig, CacheStats};

/// A placed array: base address plus element size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArraySpec {
    /// Base byte address.
    pub base: u64,
    /// Element size in bytes.
    pub elem_bytes: u64,
    /// Number of elements.
    pub len: u64,
}

impl ArraySpec {
    /// Byte address of element `i` (zero-based).
    pub fn addr(&self, i: u64) -> u64 {
        debug_assert!(i < self.len);
        self.base + i * self.elem_bytes
    }

    /// Addresses of a `lb..=ub : stride` section (zero-based, inclusive).
    pub fn section(&self, lb: u64, ub: u64, stride: u64) -> Vec<u64> {
        (lb..=ub).step_by(stride.max(1) as usize).map(|i| self.addr(i)).collect()
    }
}

/// Builds the address stream of one region access: every element of the
/// triplet section, visited once per `passes`.
pub fn region_stream(spec: ArraySpec, lb: u64, ub: u64, stride: u64, passes: usize) -> Vec<u64> {
    let one = spec.section(lb, ub, stride);
    let mut out = Vec::with_capacity(one.len() * passes);
    for _ in 0..passes {
        out.extend_from_slice(&one);
    }
    out
}

/// Result of the split-vs-fused comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionReport {
    /// Stats of the split (two separate loops) structure.
    pub split: CacheStats,
    /// Stats of the fused (single loop) structure.
    pub fused: CacheStats,
}

impl FusionReport {
    /// Misses avoided by fusing.
    pub fn misses_saved(&self) -> i64 {
        self.split.misses as i64 - self.fused.misses as i64
    }
}

/// The Case 1 experiment. `verify` reads `xcr(1:5)` in a first loop, then
/// three more times in a second loop; between the two loops other data
/// (`wash_bytes` of it — `xcrref`, `xce`, `xceref`, ... in the real code)
/// streams through the cache. Fusing the loops turns the second-loop reads
/// into same-iteration hits.
///
/// Streams:
/// - split: `[xcr pass] [wash] [xcr ×3 interleaved pass]`
/// - fused: `[xcr ×4 interleaved pass] [wash]`
pub fn fusion_experiment(
    config: CacheConfig,
    xcr: ArraySpec,
    wash_base: u64,
    wash_bytes: u64,
) -> FusionReport {
    let wash: Vec<u64> = (0..wash_bytes).step_by(8).map(|o| wash_base + o).collect();

    // Split: loop 1 (one read per element), wash, loop 2 (three reads/elem).
    let mut split_stream = Vec::new();
    for i in 0..xcr.len {
        split_stream.push(xcr.addr(i));
    }
    split_stream.extend_from_slice(&wash);
    for i in 0..xcr.len {
        for _ in 0..3 {
            split_stream.push(xcr.addr(i));
        }
    }

    // Fused: four reads per element in one pass, then the wash.
    let mut fused_stream = Vec::new();
    for i in 0..xcr.len {
        for _ in 0..4 {
            fused_stream.push(xcr.addr(i));
        }
    }
    fused_stream.extend_from_slice(&wash);

    let mut c1 = Cache::new(config);
    c1.run(split_stream.iter().copied());
    let mut c2 = Cache::new(config);
    c2.run(fused_stream.iter().copied());
    FusionReport { split: c1.stats(), fused: c2.stats() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xcr() -> ArraySpec {
        ArraySpec { base: 0xb79e_dfa0, elem_bytes: 8, len: 5 }
    }

    #[test]
    fn addresses_are_strided_by_element_size() {
        let a = xcr();
        assert_eq!(a.addr(0), 0xb79e_dfa0);
        assert_eq!(a.addr(4), 0xb79e_dfa0 + 32);
    }

    #[test]
    fn section_honours_stride() {
        let a = ArraySpec { base: 0, elem_bytes: 4, len: 20 };
        assert_eq!(a.section(2, 6, 2), vec![8, 16, 24]);
    }

    #[test]
    fn region_stream_repeats_passes() {
        let a = ArraySpec { base: 0, elem_bytes: 8, len: 4 };
        let s = region_stream(a, 0, 3, 1, 2);
        assert_eq!(s.len(), 8);
        assert_eq!(&s[0..4], &s[4..8]);
    }

    #[test]
    fn fusion_saves_misses_when_wash_evicts() {
        // Cache small enough that the wash evicts xcr between the loops.
        let cfg = CacheConfig::tiny(512); // 8 lines
        let report = fusion_experiment(cfg, xcr(), 0x10_0000, 4096);
        assert!(
            report.misses_saved() > 0,
            "fused must miss less: {report:?}"
        );
        // Same total access count in both structures.
        assert_eq!(report.split.accesses(), report.fused.accesses());
    }

    #[test]
    fn fusion_neutral_when_cache_holds_everything() {
        // Large cache: the wash does not evict xcr, both structures miss
        // only on the cold fills.
        let cfg = CacheConfig { capacity_bytes: 1 << 20, line_bytes: 64, ways: 8 };
        let report = fusion_experiment(cfg, xcr(), 0x10_0000, 4096);
        assert_eq!(report.misses_saved(), 0);
        assert_eq!(report.split.misses, report.fused.misses);
    }

    #[test]
    fn fused_hits_dominate() {
        let cfg = CacheConfig::tiny(512);
        let report = fusion_experiment(cfg, xcr(), 0x10_0000, 4096);
        // In the fused structure, 3 of every 4 xcr reads hit by construction.
        assert!(report.fused.hits >= 15);
    }
}
