//! Bench for Algorithm 1: extraction throughput as the program scales —
//! procedures × loop depth sweeps over the synthetic family.

use araa::{Analysis, AnalysisOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use workloads::synthetic::{generate, SynthConfig};

fn bench_procedure_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/procedures");
    group.sample_size(10);
    for &n in &[4usize, 16, 64] {
        let cfg = SynthConfig { procedures: n, ..Default::default() };
        let src = generate(&cfg);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            b.iter(|| {
                let a = Analysis::analyze(
                    std::slice::from_ref(black_box(src)),
                    AnalysisOptions::default(),
                )
                .unwrap();
                black_box(a.rows.len())
            })
        });
    }
    group.finish();
}

fn bench_depth_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/loop_depth");
    group.sample_size(10);
    for &d in &[1usize, 2, 3] {
        let cfg = SynthConfig { loop_depth: d, procedures: 8, ..Default::default() };
        let src = generate(&cfg);
        group.bench_with_input(BenchmarkId::from_parameter(d), &src, |b, src| {
            b.iter(|| {
                let a = Analysis::analyze(
                    std::slice::from_ref(black_box(src)),
                    AnalysisOptions::default(),
                )
                .unwrap();
                black_box(a.rows.len())
            })
        });
    }
    group.finish();
}

fn bench_extraction_stage_only(c: &mut Criterion) {
    // Isolate Algorithm 1 itself (cg pre-order + row building) from the
    // frontend and IPA phases.
    let cfg = SynthConfig { procedures: 32, ..Default::default() };
    let src = generate(&cfg);
    let file = frontend::SourceFile::new(&src.name, &src.text, whirl::Lang::Fortran);
    let program =
        frontend::compile_to_h(std::slice::from_ref(&file), frontend::DEFAULT_LAYOUT_BASE)
            .unwrap();
    let (cg, result) = ipa::analyze(&program);
    c.bench_function("alg1/extract_rows_only_32procs", |b| {
        b.iter(|| {
            black_box(araa::extract_rows(
                &program,
                &cg,
                &result,
                araa::ExtractOptions::default(),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets =
    bench_procedure_scaling,
    bench_depth_scaling,
    bench_extraction_stage_only

}
criterion_main!(benches);
