//! Bench for Table IV: the whole-array vs sub-array offload model, printing
//! the regenerated speedup table and timing the sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpusim::{offload_speedup, sweep_classes, LinkModel, OffloadCase};
use std::hint::black_box;

fn bench_table4(c: &mut Criterion) {
    let link = LinkModel::pcie2();

    // The regenerated Table IV (printed once; the paper's absolute numbers
    // came from their 24-core/PGI testbed, so only the shape is compared).
    println!("\nTable IV (modeled): sub-array vs whole-array copyin, 50 steps");
    println!("{:<6} {:>12} {:>12} {:>9}", "class", "whole (ms)", "sub (ms)", "speedup");
    for (class, r) in sweep_classes(link, 50) {
        println!(
            "{:<6} {:>12.2} {:>12.2} {:>8.1}x",
            class,
            r.whole_us / 1e3,
            r.sub_us / 1e3,
            r.speedup()
        );
        assert!(r.speedup() >= 1.0, "sub-array never loses");
    }

    c.bench_function("table4/sweep_classes", |b| {
        b.iter(|| black_box(sweep_classes(black_box(link), 50)))
    });

    let mut group = c.benchmark_group("table4/single_case");
    for &steps in &[1u64, 50, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| {
                black_box(offload_speedup(link, OffloadCase::lu_case2(black_box(steps))))
            })
        });
    }
    group.finish();
}

fn bench_model_sensitivity(c: &mut Criterion) {
    // Vary link bandwidth: the crossover where transfers stop dominating.
    let mut group = c.benchmark_group("table4/bandwidth_sweep");
    for &gbs in &[1.0f64, 6.0, 16.0, 64.0] {
        let link = LinkModel { latency_us: 25.0, bandwidth_gbs: gbs };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{gbs}GBs")),
            &link,
            |b, link| {
                b.iter(|| black_box(offload_speedup(*link, OffloadCase::lu_case2(50))))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_table4, bench_model_sensitivity
}
criterion_main!(benches);
