//! Bench for Fig. 11: building and traversing the 24-procedure LU call
//! graph, and rendering the Dragon views over it.

use araa::{Analysis, AnalysisOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_callgraph(c: &mut Criterion) {
    let srcs = workloads::mini_lu::sources();
    let files: Vec<frontend::SourceFile> = srcs
        .iter()
        .map(|g| frontend::SourceFile::new(&g.name, &g.text, whirl::Lang::Fortran))
        .collect();
    let program = frontend::compile_to_h(&files, frontend::DEFAULT_LAYOUT_BASE).unwrap();

    c.bench_function("fig11/build", |b| {
        b.iter(|| black_box(ipa::CallGraph::build(black_box(&program))))
    });

    let cg = ipa::CallGraph::build(&program);
    c.bench_function("fig11/pre_order", |b| {
        b.iter(|| black_box(cg.pre_order()))
    });
    c.bench_function("fig11/bottom_up", |b| {
        b.iter(|| black_box(cg.bottom_up()))
    });
    c.bench_function("fig11/to_dot", |b| {
        b.iter(|| black_box(cg.to_dot(&program)))
    });
}

fn bench_lu_full_analysis(c: &mut Criterion) {
    let srcs = workloads::mini_lu::sources();
    let mut group = c.benchmark_group("fig11/lu_pipeline");
    group.sample_size(10);
    group.bench_function("full", |b| {
        b.iter(|| {
            let a = Analysis::analyze(black_box(&srcs), AnalysisOptions::default())
                .unwrap();
            black_box(a.rows.len())
        })
    });
    group.finish();
}

fn bench_cfg_export(c: &mut Criterion) {
    let srcs = workloads::mini_lu::sources();
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    c.bench_function("fig11/cfg_document", |b| {
        b.iter(|| black_box(analysis.cfg_document()))
    });
    c.bench_function("fig11/dgn_document", |b| {
        b.iter(|| black_box(analysis.dgn_document()))
    });
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_callgraph, bench_lu_full_analysis, bench_cfg_export
}
criterion_main!(benches);
