//! Lint-cache payoff: cold `lint::run` over the full LU analysis versus a
//! warm `lint::run_with_cache` where every per-procedure result replays
//! from the cache, and the one-procedure-edit case where exactly the
//! edited procedure re-lints. The global dead-store pass re-runs every
//! time (it is cross-procedure by construction), so the warm numbers show
//! the per-procedure rules' share of the work.

use araa::{Analysis, AnalysisOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use lint::{LintCache, LintOptions};
use std::hint::black_box;
use workloads::GenSource;

fn edited(base: &[GenSource], file: &str, from: &str, to: &str) -> Vec<GenSource> {
    let mut out = base.to_vec();
    let s = out.iter_mut().find(|s| s.name == file).expect("edit target exists");
    assert!(s.text.contains(from), "{file} must contain {from:?}");
    s.text = s.text.replace(from, to);
    out
}

fn bench_lint(c: &mut Criterion) {
    let base = workloads::mini_lu::sources();
    let analysis = Analysis::analyze(&base, AnalysisOptions::default()).unwrap();
    let erhs_edit = edited(&base, "erhs.f", "do i = 1, 33", "do i = 1, 32");
    let analysis_edited = Analysis::analyze(&erhs_edit, AnalysisOptions::default()).unwrap();
    let rhs_edit = edited(&base, "rhs.f", "do k = 1, 10", "do k = 1, 9");
    let analysis_heavy = Analysis::analyze(&rhs_edit, AnalysisOptions::default()).unwrap();
    let opts = LintOptions::default();

    let mut group = c.benchmark_group("lint/mini_lu");
    group.bench_function("cold", |b| {
        b.iter(|| black_box(lint::run(black_box(&analysis), &opts)))
    });
    group.bench_function("warm_all_cached", |b| {
        let mut cache = LintCache::default();
        let primed = lint::run_with_cache(&analysis, &opts, &mut cache);
        assert!(primed.procs_linted > 0);
        b.iter(|| {
            let r = black_box(lint::run_with_cache(&analysis, &opts, &mut cache));
            debug_assert_eq!(r.procs_linted, 0);
            r
        })
    });
    group.bench_function("warm_one_proc_edit", |b| {
        // Alternate between the base and the edited analysis: each round
        // re-lints exactly the procedure whose summary hash changed
        // (`erhs` — the typical leaf-edit shape, as in `session_warm`).
        let mut cache = LintCache::default();
        lint::run_with_cache(&analysis, &opts, &mut cache);
        let variants = [&analysis, &analysis_edited];
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(lint::run_with_cache(variants[i % 2], &opts, &mut cache))
        })
    });
    group.bench_function("warm_edit_heaviest_proc", |b| {
        // The adversarial case: `rhs` alone dominates the per-procedure
        // rule time, so re-linting it costs nearly a cold run.
        let mut cache = LintCache::default();
        lint::run_with_cache(&analysis, &opts, &mut cache);
        let variants = [&analysis, &analysis_heavy];
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(lint::run_with_cache(variants[i % 2], &opts, &mut cache))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_lint
}
criterion_main!(benches);
