//! Bench for Fig. 1: the interprocedural analysis pipeline on the paper's
//! Add/P1/P2 example, plus the region-independence test in isolation.

use araa::{Analysis, AnalysisOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_full_pipeline(c: &mut Criterion) {
    let srcs = vec![workloads::fig1::source()];
    c.bench_function("fig1/full_pipeline", |b| {
        b.iter(|| {
            let a = Analysis::analyze(black_box(&srcs), AnalysisOptions::default())
                .unwrap();
            black_box(a.rows.len())
        })
    });
}

fn bench_independence_test(c: &mut Criterion) {
    // The convex disjointness check behind "can safely be parallelized".
    let def = regions::convex::box_region(&[(1, 100), (1, 100)]);
    let use_r = regions::convex::box_region(&[(101, 200), (101, 200)]);
    let overlap = regions::convex::box_region(&[(50, 150), (50, 150)]);
    c.bench_function("fig1/convex_disjoint_true", |b| {
        b.iter(|| black_box(def.disjoint_from(black_box(&use_r))))
    });
    c.bench_function("fig1/convex_disjoint_false", |b| {
        b.iter(|| black_box(def.disjoint_from(black_box(&overlap))))
    });

    let t_def = regions::TripletRegion::new(vec![
        regions::Triplet::constant(1, 100, 1),
        regions::Triplet::constant(1, 100, 1),
    ]);
    let t_use = regions::TripletRegion::new(vec![
        regions::Triplet::constant(101, 200, 1),
        regions::Triplet::constant(101, 200, 1),
    ]);
    c.bench_function("fig1/triplet_disjoint", |b| {
        b.iter(|| black_box(t_def.disjoint_from(black_box(&t_use))))
    });
}

fn bench_propagation_only(c: &mut Criterion) {
    let srcs = [workloads::fig1::source()];
    let files: Vec<frontend::SourceFile> = srcs
        .iter()
        .map(|g| frontend::SourceFile::new(&g.name, &g.text, whirl::Lang::Fortran))
        .collect();
    let program = frontend::compile_to_h(&files, frontend::DEFAULT_LAYOUT_BASE).unwrap();
    let cg = ipa::CallGraph::build(&program);
    c.bench_function("fig1/ipl_plus_ipa", |b| {
        b.iter(|| {
            let local = ipa::local::summarize_all(black_box(&program));
            black_box(ipa::propagate::propagate(&program, &cg, local))
        })
    });
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets =
    bench_full_pipeline,
    bench_independence_test,
    bench_propagation_only

}
criterion_main!(benches);
