//! Bench for Fig. 2: efficiency of the four array-analysis methods —
//! summary-insertion throughput and membership-query cost, with the storage
//! sizes printed once (the figure's other axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regions::access::AccessMode;
use regions::methods::{
    ClassicMethod, ConvexMethod, RefListMethod, RsdMethod, SummaryMethod,
};
use regions::{Triplet, TripletRegion};
use std::hint::black_box;

const EXTENT: i64 = 4096;

fn references() -> Vec<TripletRegion> {
    // 64 overlapping windows over a 4096-element array.
    (0..64)
        .map(|k| TripletRegion::new(vec![Triplet::constant(k * 32, k * 32 + 255, 1)]))
        .collect()
}

fn bench_insertion(c: &mut Criterion) {
    let refs = references();
    let mut group = c.benchmark_group("fig2/insert_64_references");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("classic"), |b| {
        b.iter(|| {
            let mut m = ClassicMethod::new(vec![(0, EXTENT - 1)]);
            for r in &refs {
                m.add_reference(AccessMode::Use, black_box(r));
            }
            black_box(m.storage_bytes())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("regular-sections"), |b| {
        b.iter(|| {
            let mut m = RsdMethod::new();
            for r in &refs {
                m.add_reference(AccessMode::Use, black_box(r));
            }
            black_box(m.storage_bytes())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("convex-regions"), |b| {
        b.iter(|| {
            let mut m = ConvexMethod::new();
            for r in &refs {
                m.add_reference(AccessMode::Use, black_box(r));
            }
            black_box(m.storage_bytes())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("reference-list"), |b| {
        b.iter(|| {
            let mut m = RefListMethod::new();
            for r in &refs {
                m.add_reference(AccessMode::Use, black_box(r));
            }
            black_box(m.storage_bytes())
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let refs = references();
    let mut classic = ClassicMethod::new(vec![(0, EXTENT - 1)]);
    let mut reflist = RefListMethod::new();
    let mut rsd = RsdMethod::new();
    let mut convex = ConvexMethod::new();
    for r in &refs {
        classic.add_reference(AccessMode::Use, r);
        reflist.add_reference(AccessMode::Use, r);
        rsd.add_reference(AccessMode::Use, r);
        convex.add_reference(AccessMode::Use, r);
    }
    // Print the storage axis once — the Fig. 2 companion table.
    println!(
        "\nfig2 summary storage (bytes): classic={} rsd={} convex={} reflist={}",
        classic.storage_bytes(),
        rsd.storage_bytes(),
        convex.storage_bytes(),
        reflist.storage_bytes()
    );

    let points: Vec<Vec<i64>> = (0..EXTENT).step_by(17).map(|i| vec![i]).collect();
    let mut group = c.benchmark_group("fig2/query_sweep");
    let methods: Vec<(&str, &dyn SummaryMethod)> = vec![
        ("classic", &classic),
        ("reference-list", &reflist),
        ("regular-sections", &rsd),
        ("convex-regions", &convex),
    ];
    for (name, m) in methods {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in &points {
                    hits += usize::from(m.may_access(AccessMode::Use, black_box(p)));
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_insertion, bench_queries
}
criterion_main!(benches);
