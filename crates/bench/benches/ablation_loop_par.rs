//! Ablation: the FM-based loop-carried dependence test that powers the
//! `!$omp parallel do` advice — cost per loop as body size and nest depth
//! grow, and on the LU procedures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn synth_loop(stmts: usize, carried: bool) -> String {
    let mut s = String::from("subroutine s\n  real a(200)\n  integer i\n  do i = 1, 100\n");
    for k in 0..stmts {
        if carried && k == stmts - 1 {
            s.push_str("    a(i + 1) = a(i)\n");
        } else {
            s.push_str(&format!("    a(i) = a(i) + {k}.0\n"));
        }
    }
    s.push_str("  end do\nend\n");
    s
}

fn program_of(src: &str) -> whirl::Program {
    frontend::compile_to_h(
        &[frontend::SourceFile::new("t.f", src, whirl::Lang::Fortran)],
        frontend::DEFAULT_LAYOUT_BASE,
    )
    .unwrap()
}

fn bench_body_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("loop_par/body_stmts");
    for &stmts in &[2usize, 8, 16] {
        let p = program_of(&synth_loop(stmts, false));
        let id = p.find_procedure("s").unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(stmts), &p, |b, p| {
            b.iter(|| black_box(ipa::analyze_proc_loops(black_box(p), id)))
        });
    }
    group.finish();
}

fn bench_verdict_polarity(c: &mut Criterion) {
    // Early-conflict loops may exit sooner than fully-independent ones
    // (which must refute every pair).
    let clean = program_of(&synth_loop(8, false));
    let dirty = program_of(&synth_loop(8, true));
    let clean_id = clean.find_procedure("s").unwrap();
    let dirty_id = dirty.find_procedure("s").unwrap();
    c.bench_function("loop_par/independent_8stmts", |b| {
        b.iter(|| black_box(ipa::analyze_proc_loops(black_box(&clean), clean_id)))
    });
    c.bench_function("loop_par/carried_8stmts", |b| {
        b.iter(|| black_box(ipa::analyze_proc_loops(black_box(&dirty), dirty_id)))
    });
}

fn bench_lu_procedures(c: &mut Criterion) {
    let srcs: Vec<frontend::SourceFile> = workloads::mini_lu::sources()
        .iter()
        .map(|g| frontend::SourceFile::new(&g.name, &g.text, whirl::Lang::Fortran))
        .collect();
    let p = frontend::compile_to_h(&srcs, frontend::DEFAULT_LAYOUT_BASE).unwrap();
    let mut group = c.benchmark_group("loop_par/lu");
    group.sample_size(10);
    for name in ["rhs", "blts", "l2norm", "verify"] {
        let id = p.find_procedure(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &id, |b, &id| {
            b.iter(|| black_box(ipa::analyze_proc_loops(black_box(&p), id)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_body_size, bench_verdict_polarity, bench_lu_procedures
}
criterion_main!(benches);
