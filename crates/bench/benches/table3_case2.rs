//! Bench for Case 2 (Table III / Fig. 14): analyzing the 110-reference
//! `rhs` loop nest and deriving the sub-array `copyin` advice.

use araa::{Analysis, AnalysisOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use dragon::{advisor, Project};
use std::hint::black_box;

fn bench_rhs_analysis(c: &mut Criterion) {
    let srcs = workloads::mini_lu::sources();
    let rhs = srcs.iter().find(|s| s.name == "rhs.f").unwrap().clone();
    let mut group = c.benchmark_group("case2");
    group.sample_size(10);
    group.bench_function("analyze_rhs_f", |b| {
        b.iter(|| {
            let a = Analysis::analyze(
                std::slice::from_ref(black_box(&rhs)),
                AnalysisOptions::default(),
            )
            .unwrap();
            black_box(a.rows.len())
        })
    });
    group.finish();
}

fn bench_advice_derivation(c: &mut Criterion) {
    let srcs = workloads::mini_lu::sources();
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let project = Project::from_generated(&analysis, &srcs);

    c.bench_function("case2/copyin_advice", |b| {
        b.iter(|| black_box(advisor::copyin_advice(black_box(&project))))
    });
    c.bench_function("case2/fusion_advice", |b| {
        b.iter(|| black_box(advisor::fusion_advice(black_box(&project))))
    });
    c.bench_function("case2/shrink_advice", |b| {
        b.iter(|| {
            black_box(advisor::shrink_advice(
                black_box(&project),
                advisor::ShrinkBasis::UseOnly,
            ))
        })
    });

    // Print the advised directive once (the regenerated artifact).
    for a in advisor::copyin_advice(&project) {
        if let advisor::Advice::SubArrayCopyin { array, proc, directive, .. } = &a {
            if array == "u" && proc == "rhs" {
                println!("\ncase2 directive: {directive}");
            }
        }
    }
}

fn bench_expand_dims_view(c: &mut Criterion) {
    let srcs = workloads::mini_lu::sources();
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let project = Project::from_generated(&analysis, &srcs);
    let opts = dragon::ViewOptions { expand_dims: true, ..Default::default() };
    c.bench_function("case2/fig14_expanded_render", |b| {
        b.iter(|| black_box(dragon::render_scope(&project, "rhs", black_box(&opts))))
    });
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets =
    bench_rhs_analysis,
    bench_advice_derivation,
    bench_expand_dims_view

}
criterion_main!(benches);
