//! `serve_load`: latency and shedding behavior of the `dragon serve`
//! daemon under concurrent load, recorded into `BENCH_serve.json`.
//!
//! The daemon runs *in-process* (on a thread, via [`dragon::serve::run`])
//! so the bench needs no binary path plumbing; clients still go through
//! the real Unix socket, the real wire protocol, and the real
//! [`dragon::serve::client`] code, one fresh connection per request —
//! exactly what a fleet of short-lived CLI clients looks like.
//!
//! Three phases:
//!
//! 1. **load** — N client threads hammer M warm projects with reanalyze
//!    and query-rgn requests; every request's latency and outcome
//!    (ok / shed / deadline_expired / error) is recorded, and p50/p95/p99
//!    of the successful requests goes into the report.
//! 2. **warm** — sequential steady-state medians for one warm reanalyze
//!    (one-file edit, includes the persist) and one query-rgn roundtrip.
//!    `scripts/check_bench_serve.py` holds `reanalyze_p50_ns` to within
//!    2x of the in-process session baselines from `BENCH_session.json`.
//! 3. **overload** — a deliberately tiny daemon (one worker, queue depth
//!    one) under a burst; sheds are counted to prove admission control
//!    engages and that every shed is a structured response, not a drop.
//!
//! Manual mode (`ARAA_BENCH_JSON=BENCH_serve.json`) writes the JSON
//! report; without it a small Criterion group benches the warm roundtrip.

use criterion::{criterion_group, Criterion};
use dragon::serve::{self, ClientOptions, ServeOptions};
use std::hint::black_box;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use support::json::{obj, Value};
use support::testdir::TestDir;

// The daemon binary installs the counting allocator; the in-process bench
// daemon must too, or per-request memory accounting would never move and
// the reported high-water mark would be a meaningless zero.
#[global_allocator]
static ALLOC: support::obs::alloc::CountingAllocator<std::alloc::System> =
    support::obs::alloc::CountingAllocator::new(std::alloc::System);

/// Per-request memory budget the load daemon runs with; the report's
/// `mem_high_water_bytes` is validated against it by the checker.
const MEM_BUDGET_MB: u64 = 256;

// ---------------------------------------------------------------------
// Fixture: the three-procedure program the session tests use, in two
// variants differing in one loop bound of `leaf`, so alternating
// reanalyze requests always dirty exactly one procedure.

const MAIN_F: &str = "\
program main
  real a(20)
  common /g/ a
  integer i
  do i = 1, 10
    a(i) = 0.0
  end do
  call mid
end
";
const MID_F: &str = "\
subroutine mid
  real a(20)
  common /g/ a
  a(11) = 1.0
  call leaf
end
";
const LEAF_V1: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 12, 20
    a(i) = 2.0
  end do
end
";
const LEAF_V2: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 12, 18
    a(i) = 2.0
  end do
end
";

fn sources(variant: usize) -> Vec<(&'static str, &'static str)> {
    let leaf = if variant % 2 == 0 { LEAF_V1 } else { LEAF_V2 };
    vec![("main.f", MAIN_F), ("mid.f", MID_F), ("leaf.f", leaf)]
}

fn analyze_req(id: u64, op: &str, project: &str, variant: usize) -> Value {
    let srcs: Vec<Value> = sources(variant)
        .iter()
        .map(|(name, text)| {
            obj([
                ("name", Value::str(*name)),
                ("text", Value::str(*text)),
                ("fortran", Value::Bool(true)),
            ])
        })
        .collect();
    obj([
        ("id", Value::int(id)),
        ("op", Value::str(op)),
        ("project", Value::str(project)),
        ("sources", Value::Arr(srcs)),
    ])
}

fn plain_req(id: u64, op: &str, project: &str) -> Value {
    obj([
        ("id", Value::int(id)),
        ("op", Value::str(op)),
        ("project", Value::str(project)),
    ])
}

// ---------------------------------------------------------------------
// In-process daemon harness.

struct Daemon {
    socket: PathBuf,
    thread: Option<JoinHandle<()>>,
}

impl Daemon {
    fn start(opts: ServeOptions) -> Daemon {
        let socket = opts.socket.clone();
        let thread = std::thread::spawn(move || {
            if let Err(e) = serve::run(opts) {
                eprintln!("serve_load: daemon failed: {e}");
            }
        });
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(30) {
            if UnixStream::connect(&socket).is_ok() {
                return Daemon { socket, thread: Some(thread) };
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("daemon did not become ready on {}", socket.display());
    }

    /// One-shot client options: no retries, so every shed is observed by
    /// the load loop instead of being absorbed by backoff.
    fn copts(&self) -> ClientOptions {
        ClientOptions {
            socket: self.socket.clone(),
            timeout: Duration::from_secs(60),
            retries: 0,
            ..ClientOptions::default()
        }
    }

    /// Drains the daemon via the wire protocol and joins its thread.
    fn shutdown(mut self) {
        let o = ClientOptions { retries: 2, ..self.copts() };
        let _ = serve::client::call(&o, &plain_req(u64::MAX, "shutdown", "bench"));
        if let Some(t) = self.thread.take() {
            t.join().expect("daemon thread");
        }
    }
}

// ---------------------------------------------------------------------
// Outcome bookkeeping for the concurrent phases.

#[derive(Default)]
struct Outcomes {
    ok: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    errors: AtomicU64,
}

impl Outcomes {
    /// Classifies one response and returns whether it counts as a clean
    /// success (and thus into the latency distribution).
    fn record(&self, resp: &support::Result<Value>) -> bool {
        match resp {
            Ok(v) if v.get("ok").and_then(Value::as_bool) == Some(true) => {
                let expired = v
                    .get("result")
                    .and_then(|r| r.get("deadline_expired"))
                    .and_then(Value::as_bool)
                    == Some(true);
                if expired {
                    self.deadline_expired.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.ok.fetch_add(1, Ordering::Relaxed);
                }
                !expired
            }
            Ok(v) => {
                let kind = v
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Value::as_str)
                    .unwrap_or("");
                if kind == "overloaded" {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                false
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn median(mut v: Vec<u128>) -> u128 {
    v.sort_unstable();
    percentile(&v, 0.5)
}

/// Per-op latency histogram over the same log-linear buckets the daemon's
/// metrics registry uses, plus the exact sampled latencies for the
/// checker's histogram-vs-sample p50 cross-check.
struct OpHist {
    hist: support::obs::hist::Histogram,
    sampled: Vec<u128>,
}

impl OpHist {
    fn new() -> OpHist {
        OpHist { hist: support::obs::hist::Histogram::new(), sampled: Vec::new() }
    }

    fn record(&mut self, ns: u128) {
        self.hist.record(u64::try_from(ns).unwrap_or(u64::MAX).max(1));
        self.sampled.push(ns);
    }

    /// `{"count": .., "sampled_p50_ns": .., "hist_p50_ns": .., "bounds":
    /// [..], "counts": [..]}` with the bucket vectors trimmed to the last
    /// occupied bucket (bounds stay aligned with counts).
    fn json(&mut self) -> String {
        use support::obs::hist;
        let counts = self.hist.counts();
        let bounds = hist::bucket_bounds();
        let last = counts.iter().rposition(|&c| c > 0).map(|p| p + 1).unwrap_or(0);
        self.sampled.sort_unstable();
        let join = |v: &[u64]| {
            v.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
        };
        format!(
            r#"{{"count": {}, "sampled_p50_ns": {}, "hist_p50_ns": {}, "bounds": [{}], "counts": [{}]}}"#,
            self.hist.count(),
            percentile(&self.sampled, 0.50),
            hist::percentile_from_counts(&counts, 0.50),
            join(&bounds[..last]),
            join(&counts[..last]),
        )
    }
}

// ---------------------------------------------------------------------
// Phase 1+2: load against a realistically sized daemon, then sequential
// steady-state medians on the same warm daemon.

const LOAD_CLIENTS: usize = 8;
const LOAD_REQS_PER_CLIENT: usize = 40;
const LOAD_PROJECTS: usize = 4;
const WARM_ITERS: usize = 30;

struct LoadReport {
    requests: u64,
    outcomes: Outcomes,
    latencies: Vec<u128>,
    /// Per-op histograms over the successful load-phase requests.
    reanalyze_hist: OpHist,
    query_hist: OpHist,
    warm_reanalyze_p50: u128,
    warm_query_p50: u128,
    workers: usize,
    queue_depth: usize,
    mem_high_water_bytes: u64,
}

fn run_load_phase(dir: &Path) -> LoadReport {
    let opts = ServeOptions {
        socket: dir.join("load.sock"),
        cache_root: Some(dir.join("cache")),
        mem_budget_mb: Some(MEM_BUDGET_MB),
        ..ServeOptions::default()
    };
    let (workers, queue_depth) = (opts.workers, opts.queue_depth);
    let d = Daemon::start(opts);

    // Seed every project warm before the clocks start.
    let o = d.copts();
    for p in 0..LOAD_PROJECTS {
        let resp = serve::client::call(&o, &analyze_req(1, "analyze", &format!("load-{p}"), 0))
            .expect("seed analyze");
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{}", resp.render());
    }

    let outcomes = Arc::new(Outcomes::default());
    let mut handles = Vec::new();
    let mut all_latencies = Vec::new();
    let mut reanalyze_hist = OpHist::new();
    let mut query_hist = OpHist::new();
    for c in 0..LOAD_CLIENTS {
        let o = d.copts();
        let outcomes = Arc::clone(&outcomes);
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(LOAD_REQS_PER_CLIENT);
            for i in 0..LOAD_REQS_PER_CLIENT {
                let project = format!("load-{}", (c + i) % LOAD_PROJECTS);
                // Two in three requests are cheap reads; the third forces a
                // one-procedure reanalyze (and its persist) on the shard.
                let reanalyze = i % 3 == 2;
                let req = if reanalyze {
                    analyze_req(i as u64, "reanalyze", &project, c + i)
                } else {
                    plain_req(i as u64, "query-rgn", &project)
                };
                let t = Instant::now();
                let resp = serve::client::call(&o, &req);
                let ns = t.elapsed().as_nanos();
                if outcomes.record(&resp) {
                    latencies.push((reanalyze, ns));
                }
            }
            latencies
        }));
    }
    for h in handles {
        for (reanalyze, ns) in h.join().expect("client thread") {
            if reanalyze {
                reanalyze_hist.record(ns);
            } else {
                query_hist.record(ns);
            }
            all_latencies.push(ns);
        }
    }
    all_latencies.sort_unstable();

    // Sequential steady state on the still-warm daemon: this is the number
    // the checker holds against the in-process session baselines.
    let warm_project = "load-0";
    let mut rean = Vec::with_capacity(WARM_ITERS);
    for i in 0..WARM_ITERS {
        let req = analyze_req(i as u64, "reanalyze", warm_project, i);
        let t = Instant::now();
        let resp = serve::client::call(&o, &req).expect("warm reanalyze");
        rean.push(t.elapsed().as_nanos());
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{}", resp.render());
    }
    let mut query = Vec::with_capacity(WARM_ITERS);
    for i in 0..WARM_ITERS {
        let req = plain_req(i as u64, "query-rgn", warm_project);
        let t = Instant::now();
        let resp = serve::client::call(&o, &req).expect("warm query-rgn");
        query.push(t.elapsed().as_nanos());
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{}", resp.render());
    }

    // The supervisor tracked every budgeted request's allocation bill; the
    // health op reports the maximum — the number the checker holds against
    // the configured budget.
    let health = serve::client::call(&o, &plain_req(0, "health", "load-0")).expect("health");
    let mem_high_water_bytes = health
        .get("result")
        .and_then(|r| r.get("mem_high_water_bytes"))
        .and_then(Value::as_u64)
        .expect("health reports mem_high_water_bytes");

    d.shutdown();
    LoadReport {
        requests: (LOAD_CLIENTS * LOAD_REQS_PER_CLIENT) as u64,
        outcomes: Arc::try_unwrap(outcomes).unwrap_or_default(),
        latencies: all_latencies,
        reanalyze_hist,
        query_hist,
        warm_reanalyze_p50: median(rean),
        warm_query_p50: median(query),
        workers,
        queue_depth,
        mem_high_water_bytes,
    }
}

// ---------------------------------------------------------------------
// Phase 3: overload burst against a one-worker, depth-one daemon.

const BURST_CLIENTS: usize = 12;
const BURST_REQS_PER_CLIENT: usize = 10;

struct OverloadReport {
    requests: u64,
    outcomes: Outcomes,
}

fn run_overload_phase(dir: &Path) -> OverloadReport {
    let d = Daemon::start(ServeOptions {
        socket: dir.join("burst.sock"),
        cache_root: None, // memory-only: the burst probes admission, not disk
        workers: 1,
        queue_depth: 1,
        ..ServeOptions::default()
    });
    let o = d.copts();
    let resp = serve::client::call(&o, &analyze_req(1, "analyze", "burst", 0)).expect("seed");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{}", resp.render());

    let outcomes = Arc::new(Outcomes::default());
    let handles: Vec<_> = (0..BURST_CLIENTS)
        .map(|c| {
            let o = d.copts();
            let outcomes = Arc::clone(&outcomes);
            std::thread::spawn(move || {
                for i in 0..BURST_REQS_PER_CLIENT {
                    let resp =
                        serve::client::call(&o, &analyze_req(i as u64, "reanalyze", "burst", c + i));
                    // A connection-level failure here would be a dropped
                    // request — the daemon's contract forbids that.
                    assert!(resp.is_ok(), "overload must shed, not drop: {resp:?}");
                    outcomes.record(&resp);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("burst thread");
    }
    d.shutdown();
    OverloadReport {
        requests: (BURST_CLIENTS * BURST_REQS_PER_CLIENT) as u64,
        outcomes: Arc::try_unwrap(outcomes).unwrap_or_default(),
    }
}

// ---------------------------------------------------------------------
// Report writer. `BENCH_serve.json` has its own shape (percentiles and
// shed counts, not median/min pairs), so it does not share
// `bench::report::merge_section`; commit/date stamping follows the same
// `ARAA_BENCH_COMMIT` / `ARAA_BENCH_DATE` contract.

fn manual_report(path: &Path) {
    let dir = TestDir::new("serve-load");
    let mut load = run_load_phase(dir.path());
    let over = run_overload_phase(dir.path());

    let commit = std::env::var("ARAA_BENCH_COMMIT").unwrap_or_else(|_| "unknown".to_string());
    let date = std::env::var("ARAA_BENCH_DATE").unwrap_or_else(|_| "unknown".to_string());
    let lat = &load.latencies;
    let out = format!(
        r#"{{
  "schema": 3,
  "commit": "{commit}",
  "date": "{date}",
  "workers": {workers},
  "queue_depth": {queue_depth},
  "mem_budget_mb": {mem_budget},
  "mem_high_water_bytes": {mem_high},
  "load": {{
    "requests": {l_req},
    "clients": {clients},
    "ok": {l_ok},
    "shed": {l_shed},
    "deadline_expired": {l_dead},
    "errors": {l_err},
    "latency_ns": {{"p50": {p50}, "p95": {p95}, "p99": {p99}, "max": {max}}},
    "ops": {{
      "query-rgn": {query_hist},
      "reanalyze": {rean_hist}
    }}
  }},
  "warm": {{
    "iters": {warm_iters},
    "reanalyze_p50_ns": {warm_rean},
    "query_rgn_p50_ns": {warm_query}
  }},
  "overload": {{
    "workers": 1,
    "queue_depth": 1,
    "requests": {o_req},
    "ok": {o_ok},
    "shed": {o_shed},
    "errors": {o_err}
  }}
}}
"#,
        commit = support::obs::json_escape(&commit),
        date = support::obs::json_escape(&date),
        workers = load.workers,
        queue_depth = load.queue_depth,
        mem_budget = MEM_BUDGET_MB,
        mem_high = load.mem_high_water_bytes,
        l_req = load.requests,
        clients = LOAD_CLIENTS,
        l_ok = load.outcomes.ok.load(Ordering::Relaxed),
        l_shed = load.outcomes.shed.load(Ordering::Relaxed),
        l_dead = load.outcomes.deadline_expired.load(Ordering::Relaxed),
        l_err = load.outcomes.errors.load(Ordering::Relaxed),
        p50 = percentile(lat, 0.50),
        p95 = percentile(lat, 0.95),
        p99 = percentile(lat, 0.99),
        max = lat.last().copied().unwrap_or(0),
        query_hist = load.query_hist.json(),
        rean_hist = load.reanalyze_hist.json(),
        warm_iters = WARM_ITERS,
        warm_rean = load.warm_reanalyze_p50,
        warm_query = load.warm_query_p50,
        o_req = over.requests,
        o_ok = over.outcomes.ok.load(Ordering::Relaxed),
        o_shed = over.outcomes.shed.load(Ordering::Relaxed),
        o_err = over.outcomes.errors.load(Ordering::Relaxed),
    );
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("serve_load: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} (load: {} req, {} shed; warm reanalyze p50 {} ns; overload: {} shed)",
        path.display(),
        load.requests,
        load.outcomes.shed.load(Ordering::Relaxed),
        load.warm_reanalyze_p50,
        over.outcomes.shed.load(Ordering::Relaxed),
    );
}

// ---------------------------------------------------------------------
// Criterion fallback: the warm roundtrip, client included.

fn bench_roundtrip(c: &mut Criterion) {
    let dir = TestDir::new("serve-load-criterion");
    let d = Daemon::start(ServeOptions {
        socket: dir.join("crit.sock"),
        cache_root: Some(dir.join("cache")),
        ..ServeOptions::default()
    });
    let o = d.copts();
    serve::client::call(&o, &analyze_req(1, "analyze", "crit", 0)).expect("seed");

    let mut group = c.benchmark_group("serve/roundtrip");
    group.bench_function("query_rgn", |b| {
        b.iter(|| black_box(serve::client::call(&o, &plain_req(2, "query-rgn", "crit")).unwrap()))
    });
    group.bench_function("reanalyze_one_proc_edit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(serve::client::call(&o, &analyze_req(3, "reanalyze", "crit", i)).unwrap())
        })
    });
    group.finish();
    d.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_roundtrip
}

fn main() {
    match bench::report::manual_mode() {
        Some(path) => manual_report(&path),
        None => benches(),
    }
}
