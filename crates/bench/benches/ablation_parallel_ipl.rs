//! Ablation: parallel IPL summarization — per-procedure summaries are
//! independent, so the phase scales with worker threads (crossbeam scoped
//! threads over a shared work index).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipa::parallel::summarize_all_parallel;
use std::hint::black_box;
use workloads::synthetic::{generate, SynthConfig};

fn bench_thread_sweep(c: &mut Criterion) {
    let cfg = SynthConfig {
        procedures: 48,
        arrays: 6,
        loop_depth: 3,
        stmts_per_loop: 8,
        ..Default::default()
    };
    let src = generate(&cfg);
    let file = frontend::SourceFile::new(&src.name, &src.text, whirl::Lang::Fortran);
    let program =
        frontend::compile_to_h(std::slice::from_ref(&file), frontend::DEFAULT_LAYOUT_BASE)
            .unwrap();

    let mut group = c.benchmark_group("ipl/threads_48procs");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(summarize_all_parallel(black_box(&program), threads)))
            },
        );
    }
    group.finish();
}

fn bench_lu_threads(c: &mut Criterion) {
    let srcs = workloads::mini_lu::sources();
    let files: Vec<frontend::SourceFile> = srcs
        .iter()
        .map(|g| frontend::SourceFile::new(&g.name, &g.text, whirl::Lang::Fortran))
        .collect();
    let program = frontend::compile_to_h(&files, frontend::DEFAULT_LAYOUT_BASE).unwrap();
    let mut group = c.benchmark_group("ipl/threads_lu");
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(summarize_all_parallel(black_box(&program), threads)))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_thread_sweep, bench_lu_threads
}
criterion_main!(benches);
