//! Ablation: the approximate convex union — the paper's second drawback of
//! the Regions method ("the union of regions is approximated since in some
//! cases, it does not form a convex hull"). We measure the cost of the
//! union operation and print the precision loss it causes versus exact
//! (reference-list) and sectioned (RSD) summaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regions::access::AccessMode;
use regions::convex::box_region;
use regions::methods::{
    enumerate_region, false_positive_rate, ConvexMethod, RsdMethod, SummaryMethod,
};
use regions::{Triplet, TripletRegion};
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_union_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("union/hull_of_two_boxes");
    for &dims in &[1usize, 2, 4] {
        let a = box_region(&vec![(0i64, 10i64); dims]);
        let b = box_region(&vec![(20i64, 30i64); dims]);
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |bch, _| {
            bch.iter(|| black_box(a.union_hull(black_box(&b))))
        });
    }
    group.finish();
}

fn bench_union_chain(c: &mut Criterion) {
    // Folding k disjoint boxes into one approximate union, as the
    // ConvexMethod does beyond its piece budget.
    let mut group = c.benchmark_group("union/fold_chain");
    group.sample_size(10);
    for &k in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut acc = box_region(&[(0, 2)]);
                for i in 1..k {
                    let next = box_region(&[(10 * i as i64, 10 * i as i64 + 2)]);
                    acc = acc.union_hull(&next);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn report_precision_loss(_c: &mut Criterion) {
    // Two distant blocks: exact set has 20 points; the folded union claims
    // the whole bridge. Printed once as the precision axis of the ablation.
    let refs = [
        TripletRegion::new(vec![Triplet::constant(0, 9, 1)]),
        TripletRegion::new(vec![Triplet::constant(90, 99, 1)]),
    ];
    let mut truth: BTreeSet<Vec<i64>> = BTreeSet::new();
    for r in &refs {
        enumerate_region(r, &mut |p| {
            truth.insert(p.to_vec());
        });
    }
    let extent = [(0i64, 99i64)];

    let mut pieces = ConvexMethod::new(); // keeps both boxes exactly
    let mut folded = ConvexMethod::with_fold_threshold(1);
    let mut rsd = RsdMethod::new();
    for r in &refs {
        pieces.add_reference(AccessMode::Use, r);
        folded.add_reference(AccessMode::Use, r);
        rsd.add_reference(AccessMode::Use, r);
    }
    let fp_pieces = false_positive_rate(&pieces, AccessMode::Use, &truth, &extent);
    let fp_folded = false_positive_rate(&folded, AccessMode::Use, &truth, &extent);
    let fp_rsd = false_positive_rate(&rsd, AccessMode::Use, &truth, &extent);
    println!(
        "\nunion ablation (two distant blocks): FP exact-pieces={fp_pieces:.2} folded-union={fp_folded:.2} rsd-hull={fp_rsd:.2}"
    );
    assert!(fp_pieces < fp_folded, "folding loses precision");
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_union_cost, bench_union_chain, report_precision_loss
}
criterion_main!(benches);
