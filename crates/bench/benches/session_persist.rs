//! Persistent-cache payoff: warm-from-disk `AnalysisSession` (fresh process
//! pointed at a populated `--cache-dir`) versus a cold analysis, plus the
//! cost of `persist()` itself, on the LU workload. A warm-from-disk run
//! re-parses and re-assembles the sources but reuses every validated
//! on-disk summary, so it measures the floor a second tool invocation pays.

use araa::{Analysis, AnalysisOptions, AnalysisSession};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use support::testdir::TestDir;
use workloads::GenSource;

fn seed(dir: &TestDir, sources: &[GenSource]) {
    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    s.update(sources).expect("seed update");
    assert!(s.persist(), "seed persist");
}

fn bench_persist(c: &mut Criterion) {
    let sources = workloads::mini_lu::sources();
    let mut group = c.benchmark_group("session_persist/mini_lu");

    group.bench_function("cold", |b| {
        b.iter(|| {
            black_box(
                Analysis::analyze(black_box(&sources), AnalysisOptions::default()).unwrap(),
            )
        })
    });

    // Fresh session each iteration, loading a pre-seeded cache dir: the
    // cross-process warm start. Includes re-parse + validation + row
    // reassembly, then a no-op update that verifies the primed state.
    group.bench_function("warm_from_disk", |b| {
        let dir = TestDir::new("bench-persist-warm");
        seed(&dir, &sources);
        b.iter(|| {
            let mut s =
                AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
            assert!(s.load(), "warm load");
            s.update(&sources).unwrap();
            black_box(s.analysis().unwrap().rows.len())
        })
    });

    // Save cost on an already-populated dir (entries content-addressed, so
    // steady-state persist re-writes only the manifest).
    group.bench_function("persist_steady_state", |b| {
        let dir = TestDir::new("bench-persist-save");
        let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
        s.update(&sources).unwrap();
        b.iter(|| assert!(black_box(s.persist())))
    });

    // First-ever save into an empty dir: all entry files plus the manifest.
    // The dir is emptied in-loop (clear + persist per iteration), so the
    // number includes one `clear()`; steady-state above isolates the
    // manifest-only rewrite.
    group.bench_function("persist_cold_dir", |b| {
        let dir = TestDir::new("bench-persist-cold");
        let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
        s.update(&sources).unwrap();
        b.iter(|| {
            s.store().expect("store").clear().expect("clear");
            assert!(black_box(s.persist()));
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_persist
}

/// `ARAA_BENCH_JSON` manual mode — the cross-process warm-from-disk
/// numbers for `BENCH_session.json` (see `bench::report`).
fn manual_report(path: &std::path::Path) {
    use bench::report::{merge_section, time};
    let sources = workloads::mini_lu::sources();
    let iters = 9;
    let cold = time("cold", iters, || {
        black_box(Analysis::analyze(&sources, AnalysisOptions::default()).unwrap());
    });
    let warm_from_disk = {
        let dir = TestDir::new("bench-json-warm");
        seed(&dir, &sources);
        time("warm_from_disk", iters, move || {
            let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
            assert!(s.load(), "warm load");
            s.update(&sources).unwrap();
            black_box(s.analysis().unwrap().rows.len());
        })
    };
    let persist_steady = {
        let dir = TestDir::new("bench-json-save");
        let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
        s.update(&workloads::mini_lu::sources()).unwrap();
        time("persist_steady_state", iters, move || {
            assert!(black_box(s.persist()));
        })
    };
    merge_section(
        path,
        "session_persist/mini_lu",
        &[cold, warm_from_disk, persist_steady],
    );
}

fn main() {
    match bench::report::manual_mode() {
        Some(path) => manual_report(&path),
        None => benches(),
    }
}
