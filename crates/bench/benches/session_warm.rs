//! Incremental-session payoff: warm `AnalysisSession::update` after a
//! one-procedure edit versus a full cold `Analysis::analyze`, on the LU
//! workload and a larger synthetic family. The warm path re-parses one
//! file, recomputes one IPL summary, re-propagates one ancestor chain, and
//! re-extracts only the affected procedures — everything else is verified
//! cache reuse.

use araa::{Analysis, AnalysisOptions, AnalysisSession};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use workloads::synthetic::{generate, SynthConfig};
use workloads::GenSource;

/// Two variants of the same source set differing in one loop bound of one
/// procedure, so alternating updates always dirty exactly that procedure.
fn variants(base: Vec<GenSource>, file: &str, from: &str, to: &str) -> [Vec<GenSource>; 2] {
    let mut edited = base.clone();
    let s = edited.iter_mut().find(|s| s.name == file).expect("edit target exists");
    assert!(s.text.contains(from), "{file} must contain {from:?}");
    s.text = s.text.replace(from, to);
    [base, edited]
}

fn bench_session(c: &mut Criterion, label: &str, vars: &[Vec<GenSource>; 2]) {
    let mut group = c.benchmark_group(label);
    group.bench_function("cold", |b| {
        b.iter(|| {
            black_box(Analysis::analyze(black_box(&vars[0]), AnalysisOptions::default()).unwrap())
        })
    });
    group.bench_function("warm_one_proc_edit", |b| {
        let mut session = AnalysisSession::new(AnalysisOptions::default());
        session.update(&vars[0]).unwrap();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(session.update(&vars[i % 2]).unwrap())
        })
    });
    group.bench_function("warm_noop", |b| {
        let mut session = AnalysisSession::new(AnalysisOptions::default());
        session.update(&vars[0]).unwrap();
        b.iter(|| black_box(session.update(&vars[0]).unwrap()))
    });
    group.finish();
}

fn bench_lu(c: &mut Criterion) {
    // `erhs` is called straight from the entry procedure, so the edit
    // invalidates one summary and one ancestor (`applu`) — the typical
    // leaf-edit shape. `rhs` is the adversarial case: the single heaviest
    // procedure, whose own re-summarization dominates even a cold run's
    // parallel IPL wall time, so warm ~= cold there by construction.
    let vars = variants(workloads::mini_lu::sources(), "erhs.f", "do i = 1, 33", "do i = 1, 32");
    bench_session(c, "session/mini_lu", &vars);
    let heavy = variants(workloads::mini_lu::sources(), "rhs.f", "do k = 1, 10", "do k = 1, 9");
    let mut group = c.benchmark_group("session/mini_lu_heaviest_proc");
    group.bench_function("warm_edit_rhs", |b| {
        let mut session = AnalysisSession::new(AnalysisOptions::default());
        session.update(&heavy[0]).unwrap();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(session.update(&heavy[i % 2]).unwrap())
        })
    });
    group.finish();
}

fn bench_synthetic(c: &mut Criterion) {
    let cfg = SynthConfig {
        procedures: 48,
        arrays: 6,
        loop_depth: 3,
        stmts_per_loop: 8,
        ..Default::default()
    };
    let src = generate(&cfg);
    // The generator emits one file, so the edit re-parses everything — but
    // the summary cache is procedure-grained, so only `work47` recomputes.
    let vars = variants(
        vec![src],
        "synth_p48.f",
        "end subroutine work47",
        "  g0(1, 1, 1) = g0(1, 1, 1) + 2.0\nend subroutine work47",
    );
    bench_session(c, "session/synthetic_48procs", &vars);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_lu, bench_synthetic
}

/// `ARAA_BENCH_JSON` manual mode: fixed timing loops whose results merge
/// into `BENCH_session.json` (see `bench::report`). Includes the
/// observability overhead pair — `warm_one_proc_edit` with and without an
/// attached collector — backing the <5% overhead budget in EXPERIMENTS.md.
fn manual_report(path: &std::path::Path) {
    use bench::report::{merge_section, time};
    use support::obs::{self, ClockKind, Collector};
    let vars = variants(workloads::mini_lu::sources(), "erhs.f", "do i = 1, 33", "do i = 1, 32");
    let iters = 9;
    let cold = time("cold", iters, || {
        black_box(Analysis::analyze(&vars[0], AnalysisOptions::default()).unwrap());
    });
    let warm_edit = {
        let mut session = AnalysisSession::new(AnalysisOptions::default());
        session.update(&vars[0]).unwrap();
        let mut i = 0usize;
        time("warm_one_proc_edit", iters, || {
            i += 1;
            black_box(session.update(&vars[i % 2]).unwrap());
        })
    };
    let warm_edit_obs = {
        let mut session = AnalysisSession::new(AnalysisOptions::default());
        session.update(&vars[0]).unwrap();
        let collector = Collector::new(ClockKind::Monotonic);
        let mut i = 0usize;
        time("warm_one_proc_edit_obs", iters, || {
            let _g = obs::attach(collector.clone());
            i += 1;
            black_box(session.update(&vars[i % 2]).unwrap());
        })
    };
    let warm_noop = {
        let mut session = AnalysisSession::new(AnalysisOptions::default());
        session.update(&vars[0]).unwrap();
        time("warm_noop", iters, || {
            black_box(session.update(&vars[0]).unwrap());
        })
    };
    merge_section(
        path,
        "session_warm/mini_lu",
        &[cold, warm_edit, warm_edit_obs, warm_noop],
    );

    // Interval-fallback overhead on an affine-only workload: mini_lu has
    // no non-affine subscripts, so the fallback's entire cost here is the
    // (inline) work-list bookkeeping and the defines-index-array scan.
    // CI computes the with/without ratio from this section and fails
    // above 5%.
    let with_fallback = time("with_fallback", iters, || {
        black_box(Analysis::analyze(&vars[0], AnalysisOptions::default()).unwrap());
    });
    ipa::local::set_interval_fallback(false);
    let without_fallback = time("without_fallback", iters, || {
        black_box(Analysis::analyze(&vars[0], AnalysisOptions::default()).unwrap());
    });
    ipa::local::set_interval_fallback(true);
    merge_section(path, "interval_pass/affine_only", &[with_fallback, without_fallback]);
}

fn main() {
    match bench::report::manual_mode() {
        Some(path) => manual_report(&path),
        None => benches(),
    }
}
