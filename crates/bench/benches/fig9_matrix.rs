//! Bench for Figs. 9/10: the `matrix.c` example through each pipeline stage
//! (lex+parse, lowering, IPA, extraction, `.rgn` emission, Dragon render).

use araa::{Analysis, AnalysisOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use dragon::view::{render_scope, ViewOptions};
use dragon::Project;
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let src = workloads::fig10::source();
    let file = frontend::SourceFile::new(&src.name, &src.text, whirl::Lang::C);

    c.bench_function("fig9/parse_only", |b| {
        b.iter(|| black_box(frontend::cparse::parse(&src.name, black_box(&src.text)).unwrap()))
    });

    c.bench_function("fig9/compile_to_h", |b| {
        b.iter(|| {
            black_box(
                frontend::compile_to_h(
                    std::slice::from_ref(&file),
                    frontend::DEFAULT_LAYOUT_BASE,
                )
                .unwrap(),
            )
        })
    });

    let program =
        frontend::compile_to_h(std::slice::from_ref(&file), frontend::DEFAULT_LAYOUT_BASE)
            .unwrap();
    c.bench_function("fig9/ipa_analyze", |b| {
        b.iter(|| black_box(ipa::analyze(black_box(&program))))
    });

    let (cg, result) = ipa::analyze(&program);
    c.bench_function("fig9/extract_rows", |b| {
        b.iter(|| {
            black_box(araa::extract_rows(
                &program,
                &cg,
                &result,
                araa::ExtractOptions::default(),
            ))
        })
    });
}

fn bench_tool_side(c: &mut Criterion) {
    let srcs = vec![workloads::fig10::source()];
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();

    c.bench_function("fig9/rgn_emit", |b| {
        b.iter(|| black_box(analysis.rgn_document()))
    });

    let doc = analysis.rgn_document();
    c.bench_function("fig9/rgn_parse", |b| {
        b.iter(|| black_box(araa::rgn::read_rgn(black_box(&doc)).unwrap()))
    });

    let project = Project::from_generated(&analysis, &srcs);
    let opts = ViewOptions { find: Some("aarr".into()), ..Default::default() };
    c.bench_function("fig9/dragon_render", |b| {
        b.iter(|| black_box(render_scope(&project, "@", black_box(&opts))))
    });
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_stages, bench_tool_side
}
criterion_main!(benches);
