//! Ablation: the Fourier–Motzkin solver's cost — the paper's stated first
//! drawback of the Regions method ("Fourier-Motzkin linear system solver,
//! which has worst case exponential time, is needed to compare Regions").
//! We sweep variable count on dense random systems (pairing-heavy) and on
//! equality-rich systems (substitution-friendly) to show the two regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use regions::constraint::{Constraint, ConstraintSystem};
use regions::fourier_motzkin::{eliminate_all, is_satisfiable, FmStats};
use regions::linexpr::LinExpr;
use regions::space::VarId;
use std::hint::black_box;

/// A random dense inequality system: every constraint couples `nvars`
/// variables with small coefficients and a box constraint per variable.
fn dense_system(nvars: u32, ncons: usize, seed: u64) -> ConstraintSystem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cs = ConstraintSystem::new();
    for v in 0..nvars {
        cs.push(Constraint::ge(LinExpr::var(VarId(v)), LinExpr::constant(0)));
        cs.push(Constraint::le(LinExpr::var(VarId(v)), LinExpr::constant(100)));
    }
    for _ in 0..ncons {
        let mut e = LinExpr::constant(rng.gen_range(-50..50));
        for v in 0..nvars {
            e.add_term(VarId(v), rng.gen_range(-3..=3));
        }
        cs.push(Constraint::ge0(e));
    }
    cs
}

/// An equality-rich system (the common subscript shape): chains
/// `x_{i+1} = x_i + c` plus one box.
fn equality_system(nvars: u32) -> ConstraintSystem {
    let mut cs = ConstraintSystem::new();
    cs.push(Constraint::ge(LinExpr::var(VarId(0)), LinExpr::constant(1)));
    cs.push(Constraint::le(LinExpr::var(VarId(0)), LinExpr::constant(100)));
    for v in 1..nvars {
        cs.push(Constraint::eq(
            LinExpr::var(VarId(v)),
            LinExpr::var(VarId(v - 1)).add(&LinExpr::constant(3)),
        ));
    }
    cs
}

fn bench_dense_elimination(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm/dense_eliminate_all");
    group.sample_size(10);
    for &nvars in &[2u32, 4, 6, 8, 10] {
        let cs = dense_system(nvars, 12, 7);
        let vars: Vec<VarId> = (0..nvars).map(VarId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(nvars), &cs, |b, cs| {
            b.iter(|| {
                let mut stats = FmStats::default();
                black_box(eliminate_all(black_box(cs), &vars, &mut stats))
            })
        });
    }
    group.finish();
}

fn bench_equality_elimination(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm/equality_eliminate_all");
    for &nvars in &[4u32, 16, 64] {
        let cs = equality_system(nvars);
        let vars: Vec<VarId> = (1..nvars).map(VarId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(nvars), &cs, |b, cs| {
            b.iter(|| {
                let mut stats = FmStats::default();
                black_box(eliminate_all(black_box(cs), &vars, &mut stats))
            })
        });
    }
    group.finish();
}

fn bench_satisfiability(c: &mut Criterion) {
    let sat = dense_system(5, 10, 11);
    c.bench_function("fm/is_satisfiable_dense5", |b| {
        b.iter(|| black_box(is_satisfiable(black_box(&sat))))
    });

    // Report the growth statistics once: the "exponential worst case" axis.
    let mut stats = FmStats::default();
    let cs = dense_system(8, 12, 7);
    let vars: Vec<VarId> = (0..8).map(VarId).collect();
    let _ = eliminate_all(&cs, &vars, &mut stats);
    println!(
        "\nfm ablation: 8-var dense system — {} pairs combined, peak {} constraints, {} substitutions, {} inequalities widened away",
        stats.pairs_combined, stats.peak_constraints, stats.substitutions, stats.widened
    );
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets =
    bench_dense_elimination,
    bench_equality_elimination,
    bench_satisfiability

}
criterion_main!(benches);
