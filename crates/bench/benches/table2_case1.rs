//! Bench for Case 1 (Table II / Fig. 13): the analysis of `verify` and the
//! cache-simulated payoff of the advised loop fusion across cache sizes.
//! The qualitative result — fused ≤ split misses, strictly fewer under
//! capacity pressure — is printed as a table alongside the timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memsim::{fusion_experiment, ArraySpec, Cache, CacheConfig};
use std::hint::black_box;

fn bench_fusion_experiment(c: &mut Criterion) {
    let xcr = ArraySpec { base: 0xb79e_dfa0, elem_bytes: 8, len: 5 };

    // The regenerated table (shape of the paper's Case 1 claim).
    println!("\ncase1: split vs fused misses (wash = 4 KiB between loops)");
    println!("{:<28} {:>6} {:>6} {:>6}", "cache", "split", "fused", "saved");
    for (label, cfg) in [
        ("tiny 256 B", CacheConfig::tiny(256)),
        ("tiny 512 B", CacheConfig::tiny(512)),
        ("tiny 2 KiB", CacheConfig::tiny(2048)),
        ("L1 32 KiB", CacheConfig::l1()),
    ] {
        let r = fusion_experiment(cfg, xcr, 0x10_0000, 4096);
        println!(
            "{:<28} {:>6} {:>6} {:>6}",
            label,
            r.split.misses,
            r.fused.misses,
            r.misses_saved()
        );
        assert!(r.misses_saved() >= 0, "fusion never hurts in this model");
    }

    let mut group = c.benchmark_group("case1/fusion_experiment");
    for (label, cap) in [("256B", 256u64), ("512B", 512), ("2KiB", 2048)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cap, |b, &cap| {
            b.iter(|| {
                black_box(fusion_experiment(
                    CacheConfig::tiny(cap),
                    xcr,
                    0x10_0000,
                    4096,
                ))
            })
        });
    }
    group.finish();
}

fn bench_cache_throughput(c: &mut Criterion) {
    // Raw simulator speed: accesses per second on a long strided stream.
    let stream: Vec<u64> = (0..100_000u64).map(|i| (i * 72) % (1 << 20)).collect();
    c.bench_function("case1/cache_100k_accesses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::l1());
            cache.run(stream.iter().copied());
            black_box(cache.stats())
        })
    });
}

fn bench_verify_analysis(c: &mut Criterion) {
    // Analyzing just verify.f (the procedure the case study inspects).
    let srcs = workloads::mini_lu::sources();
    let verify = srcs.iter().find(|s| s.name == "verify.f").unwrap().clone();
    // verify calls nothing, so it analyzes standalone.
    c.bench_function("case1/analyze_verify_f", |b| {
        b.iter(|| {
            let a = araa::Analysis::analyze(
                std::slice::from_ref(black_box(&verify)),
                araa::AnalysisOptions::default(),
            )
            .unwrap();
            black_box(a.rows.len())
        })
    });
}

criterion_group! {
    name = benches;
    // Single-core container: short windows keep the full suite fast
    // while medians stay stable for these deterministic workloads.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets =
    bench_fusion_experiment,
    bench_cache_throughput,
    bench_verify_analysis

}
criterion_main!(benches);
