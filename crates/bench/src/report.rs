//! Manual JSON benchmark reporting for the session benches.
//!
//! When `ARAA_BENCH_JSON=<path>` is set, `session_warm` and
//! `session_persist` skip Criterion and instead run a fixed manual timing
//! loop, merging their sections into one `BENCH_session.json`. The file
//! carries no ambient clock reads: the commit and date stamps come from
//! `ARAA_BENCH_COMMIT` / `ARAA_BENCH_DATE` (the harness invoking the bench
//! injects them), so re-running with the same inputs rewrites the same
//! bytes apart from the timings themselves.
//!
//! Schema (one `sections` entry per line, which is what lets two separate
//! bench processes merge into the same file):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "commit": "abc1234",
//!   "date": "2026-08-07",
//!   "sections": {
//!     "session_warm/mini_lu": [
//!       {"name": "cold", "iters": 9, "median_ns": 1, "min_ns": 1}
//!     ]
//!   }
//! }
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// One timed benchmark entry.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name within its section (e.g. `warm_noop`).
    pub name: &'static str,
    /// Timed iterations (after one untimed warm-up).
    pub iters: u32,
    /// Median per-iteration wall time, nanoseconds.
    pub median_ns: u128,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u128,
}

/// The JSON report path when manual mode is requested, else `None`
/// (Criterion runs as usual).
pub fn manual_mode() -> Option<PathBuf> {
    std::env::var("ARAA_BENCH_JSON").ok().map(PathBuf::from)
}

/// Times `f`: one untimed warm-up call, then `iters` timed calls.
pub fn time(name: &'static str, iters: u32, mut f: impl FnMut()) -> Measurement {
    f();
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    Measurement {
        name,
        iters: iters.max(1),
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
    }
}

fn render_section(ms: &[Measurement]) -> String {
    let body: Vec<String> = ms
        .iter()
        .map(|m| {
            format!(
                "{{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {}, \"min_ns\": {}}}",
                m.name, m.iters, m.median_ns, m.min_ns
            )
        })
        .collect();
    format!("[{}]", body.join(", "))
}

/// Parses the `sections` lines back out of a previously written report.
/// Only our own single-line-per-section layout is understood — that is the
/// contract that makes cross-process merging safe without a JSON parser.
fn existing_sections(text: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix('"') else { continue };
        let Some((name, rest)) = rest.split_once("\": ") else { continue };
        if !rest.starts_with('[') {
            continue;
        }
        out.insert(name.to_string(), rest.trim_end_matches(',').to_string());
    }
    out
}

/// Merges `section` into the report at `path`, preserving every other
/// section already there, and rewrites the file.
pub fn merge_section(path: &std::path::Path, section: &str, ms: &[Measurement]) {
    let mut sections = std::fs::read_to_string(path)
        .map(|t| existing_sections(&t))
        .unwrap_or_default();
    sections.insert(section.to_string(), render_section(ms));
    let commit = std::env::var("ARAA_BENCH_COMMIT").unwrap_or_else(|_| "unknown".to_string());
    let date = std::env::var("ARAA_BENCH_DATE").unwrap_or_else(|_| "unknown".to_string());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"commit\": \"{}\",\n", support::obs::json_escape(&commit)));
    out.push_str(&format!("  \"date\": \"{}\",\n", support::obs::json_escape(&date)));
    out.push_str("  \"sections\": {\n");
    let n = sections.len();
    for (i, (name, body)) in sections.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {body}{}\n",
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("bench: cannot write {}: {e}", path.display());
    }
    println!("wrote section `{section}` ({} entries) to {}", ms.len(), path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_other_sections() {
        let dir = support::testdir::TestDir::new("bench-report-merge");
        let path = dir.join("r.json");
        let a = [Measurement { name: "cold", iters: 3, median_ns: 10, min_ns: 9 }];
        let b = [Measurement { name: "warm", iters: 3, median_ns: 2, min_ns: 1 }];
        merge_section(&path, "s/one", &a);
        merge_section(&path, "s/two", &b);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"s/one\": [{\"name\": \"cold\""), "{text}");
        assert!(text.contains("\"s/two\": [{\"name\": \"warm\""), "{text}");
        // Re-merging one section overwrites it without touching the other.
        let a2 = [Measurement { name: "cold", iters: 5, median_ns: 8, min_ns: 7 }];
        merge_section(&path, "s/one", &a2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"iters\": 5"), "{text}");
        assert!(text.contains("\"s/two\""), "{text}");
        assert_eq!(text.matches("\"s/one\"").count(), 1);
    }
}
