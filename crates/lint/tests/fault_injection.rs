//! Fault-injection tests of the lint engine's per-procedure isolation.
//!
//! Arms the `lint::contain` and `lint::sarif` faultpoints (see
//! `support::faultpoint`) and asserts the containment contract: a panic
//! while linting one procedure degrades exactly that procedure — every
//! other procedure's findings survive, the degraded result is never
//! cached, and the next clean run over the same cache recovers the full
//! report.
//!
//! Run with `cargo test -p lint --features fault-injection`.
#![cfg(feature = "fault-injection")]

use araa::{Analysis, AnalysisOptions};
use lint::{LintCache, LintOptions, LintReport, Rule};
use std::sync::Mutex;
use support::faultpoint;

/// The faultpoint registry is process-global and cargo runs tests on
/// multiple threads, so each test holds this lock while a point is armed.
static ARMED: Mutex<()> = Mutex::new(());

/// Two defective procedures behind a trivial driver. Procedures lint in
/// program order (`main`, `one`, `two`), so arming `lint::contain` on its
/// second hit faults `one` while `two` still reports.
const TWO_DEFECTS: &str = "\
program main
  call one
  call two
end
subroutine one
  real a(10)
  integer i
  do i = 1, 12
    a(i) = a(i) + 1.0
  end do
end
subroutine two
  real b(10)
  integer i
  do i = 1, 12
    b(i) = b(i) + 1.0
  end do
end
";

fn analyze() -> Analysis {
    let srcs = vec![workloads::GenSource {
        name: "two_defects.f".into(),
        text: TWO_DEFECTS.into(),
        fortran: true,
    }];
    Analysis::analyze(&srcs, AnalysisOptions::default()).expect("analysis")
}

fn lint_with_fault(a: &Analysis, point: &str, nth: u64) -> LintReport {
    faultpoint::arm(point, nth);
    let report = lint::run(a, &LintOptions::default());
    faultpoint::disarm_all();
    report
}

#[test]
fn panic_in_one_procedures_lint_spares_the_others() {
    let _guard = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::disarm_all();
    let a = analyze();
    let clean = lint::run(&a, &LintOptions::default());
    assert_eq!(clean.findings.len(), 4, "{}", clean.render());

    let report = lint_with_fault(&a, "lint::contain", 2);
    assert_eq!(report.degradations.len(), 1, "{:?}", report.degradations);
    let d = &report.degradations[0];
    assert_eq!(d.stage, "lint");
    assert!(d.proc.contains("one"), "faulted procedure: {:?}", d);
    assert!(d.detail.contains("fault injected"), "{:?}", d);
    // `two`'s overruns still report — both sides of `b(i) = b(i) + 1.0`.
    assert_eq!(report.findings.len(), 2, "{}", report.render());
    assert!(report.findings.iter().all(|f| f.rule == Rule::Oob01 && f.array == "b"));
}

#[test]
fn faulted_procedure_is_never_cached_and_recovers_warm() {
    let _guard = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::disarm_all();
    let a = analyze();
    let clean = lint::run(&a, &LintOptions::default());

    let mut cache = LintCache::default();
    faultpoint::arm("lint::contain", 2);
    let faulted = lint::run_with_cache(&a, &LintOptions::default(), &mut cache);
    faultpoint::disarm_all();
    assert_eq!(faulted.degradations.len(), 1, "{:?}", faulted.degradations);

    // The degraded procedure must not poison the cache: the next clean run
    // re-lints it (a cache hit would replay the empty degraded result) and
    // restores the full report.
    let warm = lint::run_with_cache(&a, &LintOptions::default(), &mut cache);
    assert!(warm.degradations.is_empty(), "{:?}", warm.degradations);
    assert_eq!(warm.findings, clean.findings, "{}", warm.render());
    assert_eq!(warm.procs_linted, 1, "only the faulted procedure recomputes");
    assert_eq!(warm.procs_cached, clean.procs_linted - 1);
}

#[test]
fn parallel_lint_contains_the_fault_too() {
    let _guard = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::disarm_all();
    let a = analyze();
    faultpoint::arm("lint::contain", 2);
    let report = lint::run(&a, &LintOptions { threads: 4 });
    faultpoint::disarm_all();
    // Under threads the second hit lands on *some* procedure; whichever it
    // was, exactly one degrades and the rest still report.
    assert_eq!(report.degradations.len(), 1, "{:?}", report.degradations);
    assert_eq!(report.degradations[0].stage, "lint");
    assert!(report.findings.len() >= 2, "{}", report.render());
}

#[test]
fn sarif_fault_loses_the_artifact_not_the_findings() {
    let _guard = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::disarm_all();
    let a = analyze();
    let report = lint::run(&a, &LintOptions::default());
    assert_eq!(report.findings.len(), 4);

    faultpoint::arm("lint::sarif", 1);
    let rendered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        lint::sarif::to_sarif(&report, "test")
    }));
    faultpoint::disarm_all();
    assert!(rendered.is_err(), "armed lint::sarif must abort emission");

    // The report itself is untouched and a retry emits a complete document.
    assert_eq!(report.findings.len(), 4);
    let doc = lint::sarif::to_sarif(&report, "test");
    assert_eq!(doc.matches("\"ruleId\": \"OOB-01\"").count(), 4, "{doc}");
}

#[test]
fn unarmed_faultpoints_change_nothing() {
    let _guard = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::disarm_all();
    let a = analyze();
    let report = lint::run(&a, &LintOptions::default());
    assert!(report.degradations.is_empty());
    assert_eq!(report.findings.len(), 4);
}
