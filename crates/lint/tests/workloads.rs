//! The lint engine against every pre-existing workload: zero false
//! positives on the clean programs, exactly the paper's own dead store on
//! Fig. 10, cache-warm runs that re-lint nothing, and byte-identical
//! output at any thread count.

use araa::{Analysis, AnalysisOptions};
use lint::{LintCache, LintOptions, Rule, Severity};
use support::obs::{self, ClockKind, Collector, Counter};
use support::testdir::TestDir;

fn analyze(srcs: &[workloads::GenSource]) -> Analysis {
    Analysis::analyze(srcs, AnalysisOptions::default()).expect("analysis succeeds")
}

#[test]
fn pre_existing_clean_workloads_are_finding_free() {
    let clean: Vec<(&str, Vec<workloads::GenSource>)> = vec![
        ("fig1", vec![workloads::fig1::source()]),
        ("mini_lu", workloads::mini_lu::sources()),
        ("stencil", vec![workloads::stencil::source()]),
        ("caf", vec![workloads::caf::source()]),
        ("synthetic", vec![workloads::synthetic::generate(&Default::default())]),
    ];
    for (name, srcs) in clean {
        let a = analyze(&srcs);
        let report = lint::run(&a, &LintOptions::default());
        assert!(
            report.findings.is_empty(),
            "{name} must be finding-free, got:\n{}",
            report.render()
        );
        assert!(report.degradations.is_empty(), "{name} must not degrade");
    }
}

#[test]
fn fig10_reports_exactly_the_papers_dead_store() {
    // The paper's Fig. 10 evidence: `aarr` is declared `aarr[20]`, written
    // at `aarr[1..8]`, read only at `aarr[0..7]` — the store to index 8 is
    // dead, which is why the tool shrinks the declaration to `aarr[8]`.
    let a = analyze(&[workloads::fig10::source()]);
    let report = lint::run(&a, &LintOptions::default());
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Dst03);
    assert_eq!(f.severity, Severity::Definite);
    assert_eq!(f.file, "matrix.c");
    assert_eq!(f.array, "aarr");
    assert!(f.line > 0, "finding carries a source anchor");
    assert!(f.message.contains("element 8"), "{}", f.message);
}

#[test]
fn warm_cache_relints_nothing_and_matches_cold_byte_for_byte() {
    let dir = TestDir::new("lint-warm");
    let srcs = workloads::mini_lu::sources();
    let a = analyze(&srcs);

    let mut cache = LintCache::empty();
    let cold = lint::run_with_cache(&a, &LintOptions::default(), &mut cache);
    assert_eq!(cold.procs_cached, 0);
    assert!(cold.procs_linted > 0);
    cache.save(dir.path()).expect("cache saves");

    // Reload from disk and lint the same analysis again: everything must
    // come from the cache, and the report must not change by one byte.
    let (mut warm_cache, incidents) = LintCache::load(dir.path());
    assert!(incidents.is_empty(), "{incidents:?}");
    let c = Collector::new(ClockKind::Logical);
    let warm = {
        let _g = obs::attach(c.clone());
        lint::run_with_cache(&a, &LintOptions::default(), &mut warm_cache)
    };
    assert_eq!(warm.procs_linted, 0, "warm run must re-lint nothing");
    assert_eq!(warm.procs_cached, cold.procs_linted);
    // Findings and refutation counts are byte-identical; only the
    // linted/cached accounting in the summary line may differ.
    assert_eq!(warm.findings, cold.findings, "warm findings differ from cold");
    assert_eq!(warm.suppressed, cold.suppressed);
    assert_eq!(c.counter(Counter::LintCached), warm.procs_cached as u64);
    assert_eq!(c.counter(Counter::LintRelinted), 0);
}

#[test]
fn editing_one_file_relints_only_affected_procedures() {
    let mut srcs = workloads::mini_lu::sources();
    let a = analyze(&srcs);
    let mut cache = LintCache::empty();
    lint::run_with_cache(&a, &LintOptions::default(), &mut cache);

    // Shrink one loop in rhs.f: `rhs` (and the ancestors whose propagated
    // summaries embed its regions) must re-lint; the rest must not.
    let rhs = srcs.iter_mut().find(|s| s.name == "rhs.f").expect("rhs.f");
    rhs.text = rhs.text.replace("do k = 1, 10", "do k = 1, 7");
    let edited = analyze(&srcs);
    let report = lint::run_with_cache(&edited, &LintOptions::default(), &mut cache);
    assert!(report.procs_linted > 0, "the edited procedure must re-lint");
    assert!(report.procs_cached > 0, "untouched procedures must stay cached");
    assert!(report.findings.is_empty(), "the edit introduces no defect");
}

#[test]
fn thread_count_does_not_change_a_single_byte() {
    let mut srcs = workloads::mini_lu::sources();
    srcs.push(workloads::fig10::source());
    let a = analyze(&srcs);
    let serial = lint::run(&a, &LintOptions { threads: 1 });
    let threaded = lint::run(&a, &LintOptions { threads: 8 });
    assert_eq!(serial.render(), threaded.render());
    assert_eq!(
        lint::sarif::to_sarif(&serial, "test"),
        lint::sarif::to_sarif(&threaded, "test")
    );
}
