//! The lint driver: per-procedure evaluation with content-hash caching,
//! optional parallelism, panic containment, and deterministic merging.

use crate::cache::LintCache;
use crate::rules::{self, ProcLint};
use crate::LintReport;
use araa::{Analysis, Degradation};
use ipa::callgraph::display_name;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use support::hash::StableHasher;
use support::idx::Idx;
use support::obs::{self, Counter};
use whirl::{ProcId, StIdx};

/// Options for one lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Worker threads for the per-procedure phase (1 = serial). The merge
    /// is index-ordered, so the findings are identical at any thread count.
    pub threads: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions { threads: 1 }
    }
}

/// Lints `analysis` without a persistent cache.
pub fn run(analysis: &Analysis, opts: &LintOptions) -> LintReport {
    let mut cache = LintCache::empty();
    run_with_cache(analysis, opts, &mut cache)
}

/// Lints `analysis` through `cache`: procedures whose lint-relevant hash
/// is unchanged reuse their cached findings; only the rest re-lint. The
/// caller decides where the cache lives (see [`LintCache::load`]/
/// [`LintCache::save`]).
pub fn run_with_cache(
    analysis: &Analysis,
    opts: &LintOptions,
    cache: &mut LintCache,
) -> LintReport {
    let _span = obs::span("lint.run");
    let n = analysis.program.procedure_count();
    let names: Vec<String> = (0..n)
        .map(|i| {
            let id = ProcId::from_usize(i);
            display_name(&analysis.program, analysis.program.procedure(id))
        })
        .collect();
    let hashes: Vec<u64> =
        (0..n).map(|i| proc_lint_hash(analysis, ProcId::from_usize(i))).collect();

    let mut per_proc: Vec<Option<ProcLint>> = vec![None; n];
    let mut to_run: Vec<usize> = Vec::new();
    let mut cached = 0usize;
    for i in 0..n {
        match cache.lookup(&names[i], hashes[i]) {
            Some(hit) => {
                per_proc[i] = Some(hit);
                cached += 1;
            }
            None => to_run.push(i),
        }
    }

    let mut degradations: Vec<Degradation> = Vec::new();
    let results = evaluate(analysis, &to_run, opts.threads.max(1));
    for (i, res) in results {
        match res {
            Ok(lint) => {
                cache.insert(&names[i], hashes[i], lint.clone());
                per_proc[i] = Some(lint);
            }
            Err(detail) => degradations.push(Degradation {
                proc: names[i].clone(),
                stage: "lint".to_string(),
                detail,
            }),
        }
    }

    let mut report = LintReport {
        procs_linted: to_run.len() - degradations.len(),
        procs_cached: cached,
        ..Default::default()
    };
    for lint in per_proc.into_iter().flatten() {
        report.findings.extend(lint.findings);
        report.suppressed += lint.suppressed;
    }
    // DST-03 needs cross-procedure USE hulls, so it re-runs over the rows
    // each time (cheap) instead of going through the per-procedure cache.
    let dead = rules::dead_stores(analysis);
    report.findings.extend(dead.findings);
    report.suppressed += dead.suppressed;
    report.degradations = degradations;
    report.finish();

    obs::add(Counter::LintFindings, report.findings.len() as u64);
    obs::add(Counter::LintFindingsDefinite, report.definite_count() as u64);
    obs::add(Counter::LintFindingsPossible, report.possible_count() as u64);
    obs::add(Counter::LintSuppressed, report.suppressed);
    obs::add(Counter::LintCached, report.procs_cached as u64);
    obs::add(Counter::LintRelinted, report.procs_linted as u64);
    report
}

/// Evaluates the listed procedures, in parallel when asked, each behind
/// `catch_unwind` so one malformed procedure degrades alone.
fn evaluate(
    analysis: &Analysis,
    indices: &[usize],
    threads: usize,
) -> Vec<(usize, Result<ProcLint, String>)> {
    if threads <= 1 || indices.len() <= 1 {
        return indices
            .iter()
            .map(|&i| (i, lint_procedure(analysis, ProcId::from_usize(i))))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, Result<ProcLint, String>)>> =
        Mutex::new(Vec::with_capacity(indices.len()));
    // Deadline and memory-budget contexts are thread-scoped; hand the
    // spawning thread's to each worker so rule evaluation observes the
    // same request deadline and charges the same allocation pool.
    let deadline_ctx = support::deadline::current();
    let memory_ctx = support::memory::current();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(indices.len()) {
            scope.spawn(|| {
                let _deadline = deadline_ctx.clone().map(support::deadline::enter);
                let _memory = memory_ctx.clone().map(support::memory::enter);
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = indices.get(k) else { break };
                    let res = lint_procedure(analysis, ProcId::from_usize(i));
                    out.lock().unwrap_or_else(|p| p.into_inner()).push((i, res));
                }
            });
        }
    });
    let mut results = out.into_inner().unwrap_or_else(|p| p.into_inner());
    // Completion order is racy; index order is not.
    results.sort_by_key(|(i, _)| *i);
    results
}

/// One contained per-procedure evaluation.
fn lint_procedure(analysis: &Analysis, id: ProcId) -> Result<ProcLint, String> {
    catch_unwind(AssertUnwindSafe(|| rules::lint_proc(analysis, id))).map_err(|p| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "unknown panic".to_string());
        format!("lint rules panicked: {msg}")
    })
}

/// Content hash of everything the per-procedure rules read: the
/// procedure's identity, its post-IPA summary (regions, lines, modes,
/// provenance), its call sites with their actuals, and the declared types
/// of every symbol involved. Hash-equal procedures lint identically, so
/// the cache can serve them; collisions cost a wrong *reuse*, which is
/// why the cache also stores and compares the procedure name.
pub fn proc_lint_hash(analysis: &Analysis, id: ProcId) -> u64 {
    let program = &analysis.program;
    let proc = program.procedure(id);
    let mut h = StableHasher::new();
    h.write_str(&display_name(program, proc));
    h.write_str(program.name_of(proc.file));
    h.write_u8(matches!(proc.lang, whirl::Lang::C) as u8);
    h.write_usize(proc.formals.len());
    for &f in &proc.formals {
        hash_symbol(&mut h, analysis, f);
    }
    for rec in &analysis.ipa.summary(id).accesses {
        h.write_u8(match rec.mode {
            regions::access::AccessMode::Use => 0,
            regions::access::AccessMode::Def => 1,
            regions::access::AccessMode::Formal => 2,
            regions::access::AccessMode::Passed => 3,
        });
        hash_symbol(&mut h, analysis, rec.array);
        h.write_str(&rec.region.render(&|v| rec.space.name(v, &program.interner)));
        h.write_u32(rec.line);
        h.write_u8(rec.remote as u8);
        h.write_u8(rec.approx as u8);
        h.write_str(rec.precision.as_str());
        match rec.from_call {
            Some(c) => {
                h.write_u8(1);
                h.write_str(&display_name(program, program.procedure(c)));
            }
            None => h.write_u8(0),
        }
    }
    for site in analysis.callgraph.calls(id) {
        let callee = program.procedure(site.callee);
        h.write_str(&display_name(program, callee));
        h.write_u32(site.line);
        h.write_usize(site.array_actuals.len());
        for (pos, act) in site.array_actuals.iter().enumerate() {
            match act {
                Some(st) => {
                    h.write_u8(1);
                    hash_symbol(&mut h, analysis, *st);
                    // SHP/ALI also read the callee's formal declaration.
                    if let Some(&f) = callee.formals.get(pos) {
                        hash_symbol(&mut h, analysis, f);
                    }
                }
                None => h.write_u8(0),
            }
        }
    }
    h.finish()
}

fn hash_symbol(h: &mut StableHasher, analysis: &Analysis, st: StIdx) {
    let program = &analysis.program;
    let e = program.symbols.get(st);
    h.write_str(program.name_of(e.name));
    h.write_u8(match e.class {
        whirl::StClass::Global => 0,
        whirl::StClass::Local => 1,
        whirl::StClass::Formal => 2,
        whirl::StClass::Proc => 3,
    });
    h.write_i64(program.types.element_size(e.ty));
    let bounds = program.types.dim_bounds(e.ty);
    h.write_usize(bounds.len());
    for b in bounds {
        match b {
            whirl::DimBound::Const { lb, ub } => {
                h.write_u8(1);
                h.write_i64(lb);
                h.write_i64(ub);
            }
            whirl::DimBound::Runtime => h.write_u8(0),
        }
    }
}
