//! `araa-lint` — the interprocedural array-safety lint engine.
//!
//! The paper positions the analysis output as something a user *reads*
//! (the Dragon browser, the advisor's optimization hints). This crate
//! turns the same interprocedural facts — per-procedure region summaries,
//! the IPA call graph, and the formal→actual rebasing of `ipa::propagate`
//! — into *checked* source-anchored findings:
//!
//! | rule     | name                    | fires when                                        |
//! |----------|-------------------------|---------------------------------------------------|
//! | `OOB-01` | array-out-of-bounds     | an accessed region exceeds the declared extents   |
//! | `UBD-02` | use-before-def          | a USE of a local array no DEF reaches             |
//! | `DST-03` | dead-store              | a DEF writes elements no USE ever reads           |
//! | `SHP-04` | call-shape-mismatch     | an actual is smaller than the callee's footprint  |
//! | `ALI-05` | argument-aliasing       | one array reaches a callee under two names        |
//! | `NAF-06` | non-affine-unbounded    | an access neither FM nor the interval pass bounds |
//!
//! Every rule splits findings into [`Severity::Definite`] (the region
//! arithmetic or a Fourier–Motzkin proof *establishes* the violation) and
//! [`Severity::Possible`] (the analysis could bound the access but could
//! not refute the violation). Candidates that FM *does* refute are counted
//! in `lint.suppressed` rather than reported — the definite/possible split
//! is driven by what the polyhedral machinery can prove, exactly like the
//! paper's MUST/MAY region distinction.
//!
//! The engine lints per procedure (parallelizable, deterministically
//! merged, panic-contained behind the `lint::contain` faultpoint) and
//! caches per-procedure results by a content hash of the lint-relevant
//! inputs, so warm runs re-lint only procedures whose summaries changed.
//! [`sarif`] renders the findings as SARIF 2.1.0 for editor/CI ingestion.

pub mod cache;
pub mod engine;
pub mod facts;
pub mod rules;
pub mod sarif;

pub use cache::LintCache;
pub use engine::{run, run_with_cache, LintOptions};

use std::fmt;

/// The lint rules, in rule-id order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `OOB-01`: accessed region exceeds the declared extents.
    Oob01,
    /// `UBD-02`: a USE of a procedure-local array that no DEF reaches.
    Ubd02,
    /// `DST-03`: a DEF whose elements no subsequent USE reads.
    Dst03,
    /// `SHP-04`: a call-site actual smaller than the callee's footprint.
    Shp04,
    /// `ALI-05`: the same memory reaches a callee under two names.
    Ali05,
    /// `NAF-06`: an access the affine *and* interval analyses both failed
    /// to bound — the region stayed `unbounded` after the fallback.
    Naf06,
}

impl Rule {
    /// All rules, in rule-id order.
    pub const ALL: [Rule; 6] = [
        Rule::Oob01,
        Rule::Ubd02,
        Rule::Dst03,
        Rule::Shp04,
        Rule::Ali05,
        Rule::Naf06,
    ];

    /// The stable rule identifier (`OOB-01`, ...).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Oob01 => "OOB-01",
            Rule::Ubd02 => "UBD-02",
            Rule::Dst03 => "DST-03",
            Rule::Shp04 => "SHP-04",
            Rule::Ali05 => "ALI-05",
            Rule::Naf06 => "NAF-06",
        }
    }

    /// Short kebab-case rule name (the SARIF `rule.name`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::Oob01 => "array-out-of-bounds",
            Rule::Ubd02 => "use-before-def",
            Rule::Dst03 => "dead-store",
            Rule::Shp04 => "call-shape-mismatch",
            Rule::Ali05 => "argument-aliasing",
            Rule::Naf06 => "non-affine-unbounded",
        }
    }

    /// One-line description (the SARIF `shortDescription`).
    pub fn describe(self) -> &'static str {
        match self {
            Rule::Oob01 => {
                "An accessed array region exceeds the array's declared extents."
            }
            Rule::Ubd02 => {
                "A local array is read through a region no definition reaches."
            }
            Rule::Dst03 => "An array store writes elements that are never read.",
            Rule::Shp04 => {
                "A call passes an array smaller than the callee's summarized footprint."
            }
            Rule::Ali05 => {
                "The same array reaches a callee under two names and one is written."
            }
            Rule::Naf06 => {
                "An array access remains unbounded after the interval fallback."
            }
        }
    }

    /// Parses a stable rule id back into the rule.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How certain the engine is. `Definite` means the region arithmetic (or
/// an FM proof) establishes the violation; `Possible` means it could not
/// be refuted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The violation could not be refuted but is not proven.
    Possible,
    /// The violation is proven by constant region arithmetic or FM.
    Definite,
}

impl Severity {
    /// Stable lower-case name (`definite` / `possible`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Possible => "possible",
            Severity::Definite => "definite",
        }
    }
}

/// One lint finding, anchored to a source line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Definite vs. possible.
    pub severity: Severity,
    /// Source file the finding is anchored in (e.g. `verify.f`).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Procedure scope (display name, e.g. `MAIN__`).
    pub proc: String,
    /// The array concerned.
    pub array: String,
    /// The worst region precision among the records the rule consumed —
    /// `interval` and `unbounded` findings are capped at `Possible`.
    pub precision: regions::access::Precision,
    /// Human explanation, including the regions involved.
    pub message: String,
}

impl Finding {
    /// Ranking key: definite first, then rule id, file, line, proc, array.
    fn rank_key(&self) -> (u8, Rule, &str, u32, &str, &str, &str) {
        let sev = match self.severity {
            Severity::Definite => 0,
            Severity::Possible => 1,
        };
        (sev, self.rule, &self.file, self.line, &self.proc, &self.array, &self.message)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {} (in `{}`)",
            self.file,
            self.line,
            self.rule.id(),
            self.severity.name(),
            self.message,
            self.proc
        )
    }
}

/// The result of one lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, ranked (definite first, then rule/file/line).
    pub findings: Vec<Finding>,
    /// Procedures whose lint evaluation failed and was contained (stage
    /// `"lint"`); their findings are absent, everything else is intact.
    pub degradations: Vec<araa::Degradation>,
    /// Procedures evaluated this run.
    pub procs_linted: usize,
    /// Procedures served from the lint cache.
    pub procs_cached: usize,
    /// Candidates Fourier–Motzkin (or exact footprint arithmetic) refuted.
    pub suppressed: u64,
}

impl LintReport {
    /// Number of definite findings.
    pub fn definite_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Definite).count()
    }

    /// Number of possible findings.
    pub fn possible_count(&self) -> usize {
        self.findings.len() - self.definite_count()
    }

    /// Ranks findings and drops exact duplicates (a record propagated to
    /// several ancestors can reproduce the same anchored message).
    pub(crate) fn finish(&mut self) {
        self.findings.sort_by(|a, b| a.rank_key().cmp(&b.rank_key()));
        self.findings.dedup();
    }

    /// Renders the ranked human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} finding(s): {} definite, {} possible \
             ({} procedure(s) linted, {} cached, {} candidate(s) refuted)\n",
            self.findings.len(),
            self.definite_count(),
            self.possible_count(),
            self.procs_linted,
            self.procs_cached,
            self.suppressed
        ));
        for d in &self.degradations {
            out.push_str(&format!("degraded: {d}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_id(r.id()), Some(r));
        }
        assert_eq!(Rule::from_id("XXX-99"), None);
    }

    #[test]
    fn ranking_puts_definite_first() {
        let f = |rule, severity, line| Finding {
            rule,
            severity,
            file: "a.f".into(),
            line,
            proc: "p".into(),
            array: "x".into(),
            precision: regions::access::Precision::Exact,
            message: "m".into(),
        };
        let mut report = LintReport {
            findings: vec![
                f(Rule::Oob01, Severity::Possible, 1),
                f(Rule::Dst03, Severity::Definite, 9),
                f(Rule::Oob01, Severity::Definite, 5),
                f(Rule::Oob01, Severity::Definite, 5),
            ],
            ..Default::default()
        };
        report.finish();
        assert_eq!(report.findings.len(), 3, "exact duplicates dropped");
        assert_eq!(report.findings[0].severity, Severity::Definite);
        assert_eq!(report.findings[0].rule, Rule::Oob01);
        assert_eq!(report.findings[1].rule, Rule::Dst03);
        assert_eq!(report.findings[2].severity, Severity::Possible);
        assert_eq!(report.definite_count(), 2);
        assert_eq!(report.possible_count(), 1);
    }

    #[test]
    fn report_renders_summary_line() {
        let report = LintReport::default();
        let text = report.render();
        assert!(text.contains("0 finding(s)"), "{text}");
    }
}
