//! Row-level usage facts shared between the lint engine and the Dragon
//! advisor.
//!
//! `DST-03` (dead stores) and the advisor's shrink advice ("redefine
//! `aarr` to be `int aarr[8]`") are the same underlying fact — the hull of
//! what a program *reads* versus what it declares/writes — so both consume
//! this module instead of keeping private copies of the hull-vs-declared
//! scan. Facts work on [`RgnRow`]s (not live summaries) so they apply
//! equally to a fresh analysis and to a `.rgn` project loaded from disk.

use araa::RgnRow;
use regions::access::AccessMode;
use std::collections::BTreeMap;

/// Which access modes count as "used" when building a usage hull.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseBasis {
    /// USE rows only — the paper's reading (`aarr[8]` despite `DEF (1:8)`;
    /// the store to index 8 is dead).
    UseOnly,
    /// USE ∪ DEF — the conservative hull.
    UseAndDef,
}

/// Parses a `|`-joined bound column into per-dimension integers; `None`
/// when any part is symbolic (`MESSY`, `$n`, ...).
pub fn parse_bounds(s: &str) -> Option<Vec<i64>> {
    s.split('|').map(|p| p.trim().parse::<i64>().ok()).collect()
}

/// Returns the per-dimension hull (lb, ub) over a set of rows, `None` when
/// no row is fully constant. Non-constant rows are skipped — callers that
/// need soundness against symbolic rows must check for them separately.
pub fn hull(rows: &[&RgnRow]) -> Option<Vec<(i64, i64)>> {
    let mut acc: Option<Vec<(i64, i64)>> = None;
    for row in rows {
        let (Some(lbs), Some(ubs)) = (parse_bounds(&row.lb), parse_bounds(&row.ub)) else {
            continue;
        };
        if lbs.len() != ubs.len() {
            continue;
        }
        match &mut acc {
            None => acc = Some(lbs.into_iter().zip(ubs).collect()),
            Some(h) => {
                if h.len() != lbs.len() {
                    continue;
                }
                for (d, (lo, hi)) in h.iter_mut().enumerate() {
                    *lo = (*lo).min(lbs[d]);
                    *hi = (*hi).max(ubs[d]);
                }
            }
        }
    }
    acc
}

/// The usage hull of one array versus its declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageFact {
    /// Array name (rows are grouped program-wide by name, matching the
    /// Dragon `@` scope the advisor has always reported on).
    pub array: String,
    /// Declared extents per source dimension.
    pub declared: Vec<i64>,
    /// Accessed hull per source dimension (inclusive source bounds).
    pub used: Vec<(i64, i64)>,
    /// Whether the array indexes from 0 (C) — inferred from the smallest
    /// used lower bound, exactly as the advisor always has.
    pub zero_based: bool,
}

impl UsageFact {
    /// The declared source lower bound implied by [`Self::zero_based`].
    pub fn decl_lb(&self) -> i64 {
        if self.zero_based {
            0
        } else {
            1
        }
    }

    /// True when some dimension's used hull stops short of its declared
    /// extent — the array can be re-declared smaller.
    pub fn shrinkable(&self) -> bool {
        let lb = self.decl_lb();
        self.used
            .iter()
            .zip(&self.declared)
            .any(|(&(_, hi), &ext)| hi < lb + ext - 1)
    }

    /// The suggested smaller declaration (`aarr[8]` / `a(1:100, 1:50)`).
    pub fn suggestion(&self) -> String {
        if self.zero_based {
            let exts: Vec<String> =
                self.used.iter().map(|&(_, hi)| format!("[{}]", hi + 1)).collect();
            format!("{}{}", self.array, exts.concat())
        } else {
            let dims: Vec<String> =
                self.used.iter().map(|&(lo, hi)| format!("{lo}:{hi}")).collect();
            format!("{}({})", self.array, dims.join(", "))
        }
    }
}

/// Builds one [`UsageFact`] per array from `rows`: the hull of every
/// constant row matching `basis` against the declared extents. Arrays with
/// no constant row on the basis, or whose hull/declaration ranks disagree,
/// yield no fact. Propagated rows duplicate callee-local rows; they are
/// kept — hulls are idempotent under duplicates.
pub fn usage_facts(rows: &[RgnRow], basis: UseBasis) -> Vec<UsageFact> {
    let mut per_array: BTreeMap<String, Vec<&RgnRow>> = BTreeMap::new();
    for row in rows {
        let counts = match basis {
            UseBasis::UseOnly => row.mode == AccessMode::Use,
            UseBasis::UseAndDef => row.mode.moves_data(),
        };
        if counts {
            per_array.entry(row.array.clone()).or_default().push(row);
        }
    }
    let mut out = Vec::new();
    for (array, rows) in per_array {
        let Some(used) = hull(&rows) else { continue };
        let Some(declared) = parse_bounds(&rows[0].dim_size) else { continue };
        if declared.len() != used.len() {
            continue;
        }
        let zero_based = used.iter().any(|&(lo, _)| lo == 0);
        out.push(UsageFact { array, declared, used, zero_based });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(array: &str, mode: AccessMode, lb: &str, ub: &str, dim_size: &str) -> RgnRow {
        RgnRow {
            proc: "p".into(),
            array: array.into(),
            file: "p.o".into(),
            mode,
            refs: 1,
            dims: lb.split('|').count() as u8,
            lb: lb.into(),
            ub: ub.into(),
            stride: lb.split('|').map(|_| "1").collect::<Vec<_>>().join("|"),
            elem_size: 4,
            data_type: "int".into(),
            dim_size: dim_size.into(),
            tot_size: 0,
            size_bytes: 0,
            mem_loc: "0".into(),
            acc_density: 0,
            via: None,
            line: 1,
            first_line: 1,
            last_line: 1,
            is_global: false,
            remote: false,
            precision: regions::access::Precision::Exact,
        }
    }

    #[test]
    fn bounds_parsing() {
        assert_eq!(parse_bounds("1|2|3"), Some(vec![1, 2, 3]));
        assert_eq!(parse_bounds("7"), Some(vec![7]));
        assert_eq!(parse_bounds("1|MESSY"), None);
        assert_eq!(parse_bounds("$n"), None);
    }

    #[test]
    fn fact_distinguishes_bases() {
        let rows = vec![
            row("a", AccessMode::Use, "0", "7", "20"),
            row("a", AccessMode::Def, "0", "8", "20"),
        ];
        let use_only = usage_facts(&rows, UseBasis::UseOnly);
        assert_eq!(use_only.len(), 1);
        assert_eq!(use_only[0].used, vec![(0, 7)]);
        assert!(use_only[0].zero_based);
        assert!(use_only[0].shrinkable());
        assert_eq!(use_only[0].suggestion(), "a[8]");
        let both = usage_facts(&rows, UseBasis::UseAndDef);
        assert_eq!(both[0].used, vec![(0, 8)]);
        assert_eq!(both[0].suggestion(), "a[9]");
    }

    #[test]
    fn symbolic_rows_do_not_produce_facts() {
        let rows = vec![row("a", AccessMode::Use, "1", "$n", "20")];
        assert!(usage_facts(&rows, UseBasis::UseOnly).is_empty());
    }

    #[test]
    fn fortran_suggestion_uses_one_based_ranges() {
        let rows = vec![row("v", AccessMode::Use, "1|1", "5|9", "10|10")];
        let facts = usage_facts(&rows, UseBasis::UseOnly);
        assert!(!facts[0].zero_based);
        assert_eq!(facts[0].suggestion(), "v(1:5, 1:9)");
    }
}
