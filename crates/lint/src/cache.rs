//! The persistent per-procedure lint cache.
//!
//! One file (`lint.araa`) per cache directory, written through the same
//! crash-safe container machinery as the analysis session cache — but a
//! *separate* artifact: a corrupt or fault-injected lint cache can never
//! poison the session's summary cache (and vice versa). Corruption is
//! quarantined and reported, then the run simply re-lints everything.

use crate::rules::ProcLint;
use crate::{Finding, Rule, Severity};
use regions::access::Precision;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use support::persist::{
    atomic_write, quarantine_file, quarantine_suffix, read_container,
    toolchain_fingerprint, write_container, ByteReader, ByteWriter, ReadFailure,
};
use support::hash::StableHasher;
use support::Result;

/// Container kind tag for the lint cache artifact.
const KIND: &str = "araa-lint-cache";
/// The cache file name inside a `--cache-dir`.
pub const LINT_CACHE_FILE: &str = "lint.araa";

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    hash: u64,
    lint: ProcLint,
}

/// In-memory cache of per-procedure lint results, keyed by procedure
/// display name and validated by the lint-input content hash.
#[derive(Debug, Default)]
pub struct LintCache {
    entries: BTreeMap<String, Entry>,
}

impl LintCache {
    /// An empty cache (cold run).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of cached procedures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached result for `proc` when its hash still matches.
    pub(crate) fn lookup(&self, proc: &str, hash: u64) -> Option<ProcLint> {
        self.entries.get(proc).filter(|e| e.hash == hash).map(|e| e.lint.clone())
    }

    /// Records a freshly computed result. Degraded procedures are never
    /// inserted — a contained lint failure must re-run next time, not be
    /// replayed from the cache.
    pub(crate) fn insert(&mut self, proc: &str, hash: u64, lint: ProcLint) {
        self.entries.insert(proc.to_string(), Entry { hash, lint });
    }

    fn path(dir: &Path) -> PathBuf {
        dir.join(LINT_CACHE_FILE)
    }

    /// Loads the cache from `dir`. Missing file ⇒ empty cache; an invalid
    /// file is quarantined and reported via the returned incident strings
    /// (the run proceeds cold — cache trouble never affects results).
    pub fn load(dir: &Path) -> (Self, Vec<String>) {
        let path = Self::path(dir);
        let fp = fingerprint();
        let bytes = match support::persist::read_file_raw(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return (Self::empty(), Vec::new())
            }
            Err(e) => {
                return (
                    Self::empty(),
                    vec![format!("lint cache unreadable ({e}); relinting everything")],
                )
            }
        };
        match read_container(&bytes, KIND, fp) {
            Ok(payload) => match decode(&payload) {
                Ok(cache) => (cache, Vec::new()),
                Err(e) => quarantined(&path, "malformed", e.to_string()),
            },
            Err(e) => {
                let suffix = quarantine_suffix(&e);
                quarantined(&path, suffix, ReadFailure::Container(e).to_string())
            }
        }
    }

    /// Writes the cache under `dir` atomically. Errors are returned, not
    /// fatal — a failed save costs a warm start, nothing else.
    pub fn save(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| support::Error::io(format!("creating {}", dir.display()), e))?;
        let mut w = ByteWriter::new();
        w.usize(self.entries.len());
        for (proc, entry) in &self.entries {
            w.str(proc);
            w.u64(entry.hash);
            save_proc_lint(&entry.lint, &mut w);
        }
        let doc = write_container(KIND, fingerprint(), &w.into_bytes());
        atomic_write(&Self::path(dir), &doc)
    }
}

fn quarantined(path: &Path, suffix: &str, detail: String) -> (LintCache, Vec<String>) {
    let incident = match quarantine_file(path, suffix) {
        Ok(dest) => format!(
            "lint cache invalid ({detail}); quarantined to {} and relinting everything",
            dest.display()
        ),
        Err(e) => format!(
            "lint cache invalid ({detail}); quarantine failed ({e}), relinting everything"
        ),
    };
    (LintCache::empty(), vec![incident])
}

/// Fingerprint binding a cache file to the toolchain and the lint codec.
/// v2: findings carry a `precision` field and the `NAF-06` rule exists —
/// a v1 cache quarantines cleanly instead of misdecoding.
fn fingerprint() -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(toolchain_fingerprint());
    h.write_str("lint-cache-v2");
    h.finish()
}

fn decode(payload: &[u8]) -> Result<LintCache> {
    let mut r = ByteReader::new(payload);
    let n = r.usize()?;
    let mut entries = BTreeMap::new();
    for _ in 0..n {
        let proc = r.str()?;
        let hash = r.u64()?;
        let lint = load_proc_lint(&mut r)?;
        entries.insert(proc, Entry { hash, lint });
    }
    r.finish()?;
    Ok(LintCache { entries })
}

fn save_proc_lint(lint: &ProcLint, w: &mut ByteWriter) {
    w.u64(lint.suppressed);
    w.usize(lint.findings.len());
    for f in &lint.findings {
        w.u8(match f.rule {
            Rule::Oob01 => 0,
            Rule::Ubd02 => 1,
            Rule::Dst03 => 2,
            Rule::Shp04 => 3,
            Rule::Ali05 => 4,
            Rule::Naf06 => 5,
        });
        w.bool(f.severity == Severity::Definite);
        w.str(&f.file);
        w.u32(f.line);
        w.str(&f.proc);
        w.str(&f.array);
        w.str(f.precision.as_str());
        w.str(&f.message);
    }
}

fn load_proc_lint(r: &mut ByteReader<'_>) -> Result<ProcLint> {
    let suppressed = r.u64()?;
    let n = r.usize()?;
    let mut findings = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let rule = match r.u8()? {
            0 => Rule::Oob01,
            1 => Rule::Ubd02,
            2 => Rule::Dst03,
            3 => Rule::Shp04,
            4 => Rule::Ali05,
            5 => Rule::Naf06,
            other => {
                return Err(support::Error::Format(format!(
                    "lint cache: unknown rule tag {other}"
                )))
            }
        };
        let severity = if r.bool()? { Severity::Definite } else { Severity::Possible };
        let (file, line, proc, array) = (r.str()?, r.u32()?, r.str()?, r.str()?);
        let precision_s = r.str()?;
        let precision = Precision::parse(&precision_s).ok_or_else(|| {
            support::Error::Format(format!(
                "lint cache: unknown precision `{precision_s}`"
            ))
        })?;
        findings.push(Finding {
            rule,
            severity,
            file,
            line,
            proc,
            array,
            precision,
            message: r.str()?,
        });
    }
    Ok(ProcLint { findings, suppressed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProcLint {
        ProcLint {
            findings: vec![Finding {
                rule: Rule::Dst03,
                severity: Severity::Definite,
                file: "matrix.c".into(),
                line: 12,
                proc: "MAIN__".into(),
                array: "aarr".into(),
                precision: Precision::Interval,
                message: "element 8 of `aarr` is written here but never read".into(),
            }],
            suppressed: 3,
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("lintcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = LintCache::empty();
        cache.insert("MAIN__", 0xdead_beef, sample());
        cache.save(&dir).unwrap();
        let (back, incidents) = LintCache::load(&dir);
        assert!(incidents.is_empty(), "{incidents:?}");
        assert_eq!(back.len(), 1);
        assert_eq!(back.lookup("MAIN__", 0xdead_beef), Some(sample()));
        assert_eq!(back.lookup("MAIN__", 0xdead_beee), None, "hash mismatch misses");
        assert_eq!(back.lookup("other", 0xdead_beef), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_is_quarantined_not_trusted() {
        let dir =
            std::env::temp_dir().join(format!("lintcache-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LINT_CACHE_FILE), b"garbage").unwrap();
        let (cache, incidents) = LintCache::load(&dir);
        assert!(cache.is_empty());
        assert_eq!(incidents.len(), 1);
        assert!(incidents[0].contains("quarantined"), "{incidents:?}");
        assert!(
            !dir.join(LINT_CACHE_FILE).exists(),
            "corrupt file moved aside"
        );
        assert!(dir.join("quarantine").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
