//! The five lint rules.
//!
//! `OOB-01`, `UBD-02` (local part), `SHP-04` and `ALI-05` evaluate per
//! procedure over the post-IPA summaries — so every propagated
//! formal→actual record participates and interprocedural-only violations
//! surface at the call line — and are cacheable per procedure. `DST-03`
//! needs cross-procedure USE hulls (a global defined here may be read
//! anywhere), so it runs as a cheap global pass over the extracted
//! [`RgnRow`]s each run.
//!
//! Severity discipline, applied uniformly:
//!
//! - **Definite** — constant region arithmetic proves the violation
//!   (normalized triplet bounds, exact stride-aware containment), or
//!   Fourier–Motzkin proves it on the convex companion;
//! - **Possible** — the access was *bounded* (FM gave a finite bound, or
//!   the shapes are declared) but the violation could not be refuted;
//! - **silent** — the region is symbolic and unbounded; reporting would
//!   be guesswork, so nothing fires (zero false positives beats recall);
//! - refuted candidates increment the `suppressed` count instead.

use crate::{Finding, Rule, Severity};
use araa::{Analysis, RgnRow};
use ipa::callgraph::display_name;
use ipa::AccessRecord;
use regions::access::{AccessMode, Precision};
use regions::triplet::Triplet;
use std::collections::BTreeMap;
use whirl::lower::source_dim;
use whirl::{DimBound, Lang, ProcId, StClass, StIdx};

/// The per-procedure lint result (what the cache stores).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcLint {
    /// Findings anchored in (or at call sites of) this procedure.
    pub findings: Vec<Finding>,
    /// Candidates refuted by FM or exact footprint arithmetic.
    pub suppressed: u64,
}

/// Upper bound on per-region element enumeration in the exact coverage
/// checks; larger constant regions fall back to hull reasoning.
const ELEMENT_CAP: u64 = 65_536;

/// Runs the per-procedure rules for `id`. May panic on malformed input —
/// callers contain it (see `engine::lint_procedure`).
pub fn lint_proc(a: &Analysis, id: ProcId) -> ProcLint {
    support::faultpoint::hit("lint::contain");
    let mut out = ProcLint::default();
    oob(a, id, &mut out);
    ubd(a, id, &mut out);
    shp(a, id, &mut out);
    ali(a, id, &mut out);
    naf(a, id, &mut out);
    out
}

/// True when a record's region is only an interval (or worse) over-
/// approximation: such a region may *refute* a violation (everything the
/// access touches lies inside it) but can never *prove* one, so every
/// finding it feeds is capped at [`Severity::Possible`].
fn interval_or_worse(rec: &AccessRecord) -> bool {
    rec.precision >= Precision::Interval
}

fn proc_name(a: &Analysis, id: ProcId) -> String {
    display_name(&a.program, a.program.procedure(id))
}

fn proc_file(a: &Analysis, id: ProcId) -> String {
    a.program.name_of(a.program.procedure(id).file).to_string()
}

fn array_name(a: &Analysis, st: StIdx) -> String {
    a.program.name_of(a.program.symbols.get(st).name).to_string()
}

/// The last element a normalized `lo..=hi` step-`step` range accesses.
fn last_accessed(lo: i64, hi: i64, step: i64) -> i64 {
    if step > 1 && hi > lo {
        lo + ((hi - lo) / step) * step
    } else {
        hi
    }
}

/// Declared extents mapped to H (row-major) dimension order, `None` when
/// the rank disagrees with the region or any dimension is runtime-sized.
fn h_extents(a: &Analysis, st: StIdx, ndims: usize, lang: Lang) -> Option<Vec<i64>> {
    let ty = a.program.symbols.get(st).ty;
    let declared = a.program.types.dim_bounds(ty);
    if declared.len() != ndims || ndims == 0 {
        return None;
    }
    let mut exts = vec![0i64; ndims];
    for hd in 0..ndims {
        match declared[source_dim(lang, ndims, hd)] {
            DimBound::Const { lb, ub } => exts[hd] = (ub - lb + 1).max(0),
            DimBound::Runtime => return None,
        }
    }
    Some(exts)
}

/// The language whose dimension order a record's region follows: the
/// procedure that *built* the region (the callee for propagated records).
fn record_lang(a: &Analysis, id: ProcId, rec: &AccessRecord) -> Lang {
    match rec.from_call {
        Some(callee) => a.program.procedure(callee).lang,
        None => a.program.procedure(id).lang,
    }
}

// ---------------------------------------------------------------------------
// OOB-01: accessed region exceeds the declared extents
// ---------------------------------------------------------------------------

fn oob(a: &Analysis, id: ProcId, out: &mut ProcLint) {
    let proc = proc_name(a, id);
    let file = proc_file(a, id);
    for rec in &a.ipa.summary(id).accesses {
        if !rec.mode.moves_data() || rec.remote || rec.approx {
            continue;
        }
        let n = rec.region.ndims();
        let lang = record_lang(a, id, rec);
        let Some(exts) = h_extents(a, rec.array, n, lang) else { continue };
        for (hd, trip) in rec.region.dims.iter().enumerate() {
            let ext = exts[hd];
            if ext <= 0 {
                continue;
            }
            let via = rec
                .from_call
                .map(|c| format!(" via call to `{}`", proc_name(a, c)))
                .unwrap_or_default();
            let verb = if rec.mode == AccessMode::Def { "written" } else { "read" };
            match trip.as_const() {
                Some((lo, hi, step)) => {
                    let last = last_accessed(lo, hi, step.max(1));
                    if lo < 0 || last > ext - 1 {
                        // An interval-recovered region over-approximates:
                        // exceeding the extents is suspicion, not proof.
                        let (severity, hedge) = if interval_or_worse(rec) {
                            (Severity::Possible, "may be")
                        } else {
                            (Severity::Definite, "is")
                        };
                        out.findings.push(Finding {
                            rule: Rule::Oob01,
                            severity,
                            file: file.clone(),
                            line: rec.line,
                            proc: proc.clone(),
                            array: array_name(a, rec.array),
                            precision: rec.precision,
                            message: format!(
                                "`{}` {hedge} {verb} at [{lo}:{last}] (zero-based) but \
                                 dimension {hd} declares only [0:{}]{via}",
                                array_name(a, rec.array),
                                ext - 1
                            ),
                        });
                    } else if interval_or_worse(rec) {
                        // The over-approximation fits the declaration, so
                        // the real accesses do too: candidate refuted.
                        out.suppressed += 1;
                    }
                }
                None => {
                    // Symbolic bound: ask the convex companion for a proof
                    // either way. No bound ⇒ silent.
                    let Some(cx) = &rec.convex else { continue };
                    let Some((lo_b, hi_b)) = cx.dim_bounds(hd as u8) else { continue };
                    let lo_ok = lo_b.is_some_and(|lo| lo >= 0);
                    let hi_ok = hi_b.is_some_and(|hi| hi <= ext - 1);
                    if lo_ok && hi_ok {
                        out.suppressed += 1; // FM refuted the candidate
                    } else if hi_b.is_some_and(|hi| hi > ext - 1)
                        || lo_b.is_some_and(|lo| lo < 0)
                    {
                        out.findings.push(Finding {
                            rule: Rule::Oob01,
                            severity: Severity::Possible,
                            file: file.clone(),
                            line: rec.line,
                            proc: proc.clone(),
                            array: array_name(a, rec.array),
                            precision: rec.precision,
                            message: format!(
                                "`{}` may be {verb} outside dimension {hd}'s declared \
                                 [0:{}] (FM bounds the access to [{}:{}]){via}",
                                array_name(a, rec.array),
                                ext - 1,
                                lo_b.map_or("-inf".into(), |v| v.to_string()),
                                hi_b.map_or("+inf".into(), |v| v.to_string()),
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// UBD-02: a USE of a local array no DEF reaches
// ---------------------------------------------------------------------------

fn ubd(a: &Analysis, id: ProcId, out: &mut ProcLint) {
    let proc = proc_name(a, id);
    let file = proc_file(a, id);
    let mut per: BTreeMap<StIdx, (Vec<&AccessRecord>, Vec<&AccessRecord>, bool)> =
        BTreeMap::new();
    // Arrays with coindexed (PGAS) accesses: a sibling image's symmetric
    // copy of this code may write our local memory remotely, so "no local
    // DEF" is not evidence of an uninitialized read.
    let mut pgas: std::collections::BTreeSet<StIdx> = Default::default();
    for rec in &a.ipa.summary(id).accesses {
        if rec.remote {
            pgas.insert(rec.array);
            continue;
        }
        // Only procedure-locals: a global's definitions can live anywhere
        // in the program, and a formal's reach is the caller's business.
        if a.program.symbols.get(rec.array).class != StClass::Local {
            continue;
        }
        let slot = per.entry(rec.array).or_default();
        match rec.mode {
            AccessMode::Use => slot.0.push(rec),
            AccessMode::Def => slot.1.push(rec),
            _ => {}
        }
        slot.2 |= rec.approx;
    }
    for (st, (uses, defs, approx)) in per {
        if uses.is_empty() || approx || pgas.contains(&st) {
            continue;
        }
        let array = array_name(a, st);
        if defs.is_empty() {
            // Nothing — not even a callee reached through this procedure —
            // ever writes the array, yet it is read.
            let line = uses.iter().map(|u| u.line).min().unwrap_or(0);
            let severity = if uses.iter().any(|u| u.region.is_const() && !interval_or_worse(u))
            {
                Severity::Definite
            } else {
                Severity::Possible
            };
            let worst =
                uses.iter().map(|u| u.precision).fold(Precision::Exact, Precision::worst);
            out.findings.push(Finding {
                rule: Rule::Ubd02,
                severity,
                file: file.clone(),
                line,
                proc: proc.clone(),
                array: array.clone(),
                precision: worst,
                message: format!(
                    "local array `{array}` is read but never written \
                     (no DEF in `{proc}` or any procedure it calls)"
                ),
            });
            continue;
        }
        // Interval-recovered DEF regions over-approximate what is actually
        // written: they can neither grant coverage credit nor be proven
        // disjoint-from, so they are excluded from the exact check and
        // their presence caps every verdict at Possible.
        let exact_defs: Vec<&AccessRecord> =
            defs.iter().copied().filter(|d| !interval_or_worse(d)).collect();
        let has_interval_def = exact_defs.len() != defs.len();
        for u in &uses {
            let capped = has_interval_def || interval_or_worse(u);
            let worst = defs.iter().map(|d| d.precision).fold(u.precision, Precision::worst);
            match uncovered_element(u, &exact_defs) {
                CoverVerdict::Uncovered(e) => {
                    let finding = if capped {
                        Finding {
                            rule: Rule::Ubd02,
                            severity: Severity::Possible,
                            file: file.clone(),
                            line: u.line,
                            proc: proc.clone(),
                            array: array.clone(),
                            precision: worst,
                            message: format!(
                                "element {e} (zero-based) of local array `{array}` may \
                                 be read before any DEF writes it (only interval-\
                                 approximate regions reach it)"
                            ),
                        }
                    } else {
                        Finding {
                            rule: Rule::Ubd02,
                            severity: Severity::Definite,
                            file: file.clone(),
                            line: u.line,
                            proc: proc.clone(),
                            array: array.clone(),
                            precision: worst,
                            message: format!(
                                "element {e} (zero-based) of local array `{array}` is read \
                                 but no DEF ever writes it"
                            ),
                        }
                    };
                    out.findings.push(finding);
                }
                CoverVerdict::DisjointFromAllDefs => {
                    let (severity, adverb) = if capped {
                        (Severity::Possible, "possibly")
                    } else {
                        (Severity::Definite, "provably")
                    };
                    out.findings.push(Finding {
                        rule: Rule::Ubd02,
                        severity,
                        file: file.clone(),
                        line: u.line,
                        proc: proc.clone(),
                        array: array.clone(),
                        precision: worst,
                        message: format!(
                            "the region of local array `{array}` read here is {adverb} \
                             disjoint from every DEF of the array"
                        ),
                    });
                }
                CoverVerdict::Covered => out.suppressed += 1,
                CoverVerdict::Unknown => {}
            }
        }
    }
}

enum CoverVerdict {
    /// A specific element is read and provably never defined.
    Uncovered(i64),
    /// The whole use region is provably disjoint from every def.
    DisjointFromAllDefs,
    /// Every read element is provably defined (candidate refuted).
    Covered,
    /// Could not decide.
    Unknown,
}

/// Exact, stride-aware coverage of one USE against a set of DEFs.
fn uncovered_element(u: &AccessRecord, defs: &[&AccessRecord]) -> CoverVerdict {
    // 1-D constant regions: enumerate the read elements (capped) and check
    // each against every def triplet.
    if u.region.ndims() == 1 && u.region.is_const() {
        let trip = &u.region.dims[0];
        if let Some(count) = trip.count() {
            if count > 0 && count <= ELEMENT_CAP {
                let const_defs: Vec<&Triplet> = defs
                    .iter()
                    .filter(|d| d.region.ndims() == 1 && d.region.is_const())
                    .map(|d| &d.region.dims[0])
                    .collect();
                if const_defs.len() == defs.len() {
                    if let Some(elems) = trip.iter() {
                        for e in elems {
                            let covered = const_defs
                                .iter()
                                .any(|d| d.contains(e) == Some(true));
                            if !covered {
                                return CoverVerdict::Uncovered(e);
                            }
                        }
                        return CoverVerdict::Covered;
                    }
                }
            }
        }
    }
    // Constant multi-dim (or oversized 1-D): disjointness is still exact.
    if u.region.is_const() {
        let all_disjoint = defs
            .iter()
            .all(|d| u.region.disjoint_from(&d.region) == Some(true));
        if all_disjoint && !defs.is_empty() {
            return CoverVerdict::DisjointFromAllDefs;
        }
        return CoverVerdict::Unknown;
    }
    // Symbolic: only an FM proof either way counts.
    if let Some(ucx) = &u.convex {
        if defs
            .iter()
            .any(|d| d.convex.as_ref().is_some_and(|dcx| dcx.contains_region(ucx)))
        {
            return CoverVerdict::Covered;
        }
        let proven_disjoint = !defs.is_empty()
            && defs.iter().all(|d| {
                d.convex.as_ref().is_some_and(|dcx| dcx.disjoint_from(ucx))
            });
        if proven_disjoint {
            return CoverVerdict::DisjointFromAllDefs;
        }
    }
    CoverVerdict::Unknown
}

// ---------------------------------------------------------------------------
// SHP-04: a call-site actual smaller than the callee's footprint
// ---------------------------------------------------------------------------

fn shp(a: &Analysis, id: ProcId, out: &mut ProcLint) {
    let proc = proc_name(a, id);
    let file = proc_file(a, id);
    for site in a.callgraph.calls(id) {
        let callee = a.program.procedure(site.callee);
        for (pos, act) in site.array_actuals.iter().enumerate() {
            let Some(actual) = *act else { continue };
            let Some(&formal) = callee.formals.get(pos) else { continue };
            let fty = a.program.symbols.get(formal).ty;
            if a.program.types.num_dims(fty) == 0 {
                continue;
            }
            let actual_bytes =
                a.program.types.size_bytes(a.program.symbols.get(actual).ty);
            if actual_bytes <= 0 {
                continue; // runtime-sized actual: nothing to compare against
            }
            let elem = a.program.types.element_size(fty).abs();
            if elem == 0 {
                continue;
            }
            // The callee's post-IPA footprint through this formal (its own
            // accesses plus everything its descendants do to it).
            let mut max_linear: Option<i64> = Some(-1);
            let mut touched = false;
            let mut worst = Precision::Exact;
            for rec in a.ipa.summary(site.callee).for_array(formal) {
                if !rec.mode.moves_data() || rec.remote {
                    continue;
                }
                touched = true;
                worst = worst.worst(rec.precision);
                if rec.approx {
                    max_linear = None;
                    break;
                }
                match (linear_extent(a, site.callee, rec), &mut max_linear) {
                    (Some(m), Some(acc)) => *acc = (*acc).max(m),
                    _ => {
                        max_linear = None;
                        break;
                    }
                }
            }
            if !touched {
                continue;
            }
            let aname = array_name(a, actual);
            let fname = array_name(a, formal);
            let cname = proc_name(a, site.callee);
            match max_linear {
                Some(m) => {
                    let need = (m + 1) * elem;
                    if need > actual_bytes {
                        // An interval-precision footprint over-states what
                        // the callee touches: exceeding is only suspicion.
                        let (severity, verb) = if worst >= Precision::Interval {
                            (Severity::Possible, "may access up to")
                        } else {
                            (Severity::Definite, "accesses")
                        };
                        out.findings.push(Finding {
                            rule: Rule::Shp04,
                            severity,
                            file: file.clone(),
                            line: site.line,
                            proc: proc.clone(),
                            array: aname.clone(),
                            precision: worst,
                            message: format!(
                                "call to `{cname}` passes `{aname}` ({actual_bytes} \
                                 bytes) but the callee {verb} {need} bytes through \
                                 formal `{fname}`"
                            ),
                        });
                    } else if a.program.types.size_bytes(fty) > actual_bytes {
                        // Declared shapes mismatch, but the footprint proof
                        // shows every access fits: refuted. (Sound even for
                        // interval footprints — over-approximations that fit
                        // imply the real accesses fit.)
                        out.suppressed += 1;
                    }
                }
                None => {
                    let fbytes = a.program.types.size_bytes(fty);
                    if fbytes > actual_bytes {
                        out.findings.push(Finding {
                            rule: Rule::Shp04,
                            severity: Severity::Possible,
                            file: file.clone(),
                            line: site.line,
                            proc: proc.clone(),
                            array: aname.clone(),
                            precision: worst,
                            message: format!(
                                "call to `{cname}` passes `{aname}` ({actual_bytes} \
                                 bytes) where formal `{fname}` declares {fbytes} bytes \
                                 and the accessed footprint could not be bounded"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Largest zero-based linear element index a constant record reaches,
/// linearized through the accessed array's own declared extents. `None`
/// when the region is symbolic or the declaration is runtime-sized.
fn linear_extent(a: &Analysis, owner: ProcId, rec: &AccessRecord) -> Option<i64> {
    let n = rec.region.ndims();
    let lang = record_lang(a, owner, rec);
    let exts = h_extents(a, rec.array, n, lang)?;
    let mut stride = 1i64;
    let mut strides = vec![1i64; n];
    for hd in (0..n).rev() {
        strides[hd] = stride;
        stride = stride.saturating_mul(exts[hd].max(1));
    }
    let mut max = 0i64;
    for (hd, trip) in rec.region.dims.iter().enumerate() {
        let (lo, hi, step) = trip.as_const()?;
        let last = last_accessed(lo, hi, step.max(1));
        max += last.max(lo) * strides[hd];
    }
    Some(max)
}

// ---------------------------------------------------------------------------
// ALI-05: the same memory reaches a callee under two names
// ---------------------------------------------------------------------------

fn ali(a: &Analysis, id: ProcId, out: &mut ProcLint) {
    let proc = proc_name(a, id);
    let file = proc_file(a, id);
    for site in a.callgraph.calls(id) {
        let callee = a.program.procedure(site.callee);
        let callee_sum = a.ipa.summary(site.callee);
        let cname = proc_name(a, site.callee);
        // (a) the same actual bound to two different array formals.
        for i in 0..site.array_actuals.len() {
            let Some(act_i) = site.array_actuals[i] else { continue };
            for j in (i + 1)..site.array_actuals.len() {
                if site.array_actuals[j] != Some(act_i) {
                    continue;
                }
                let (Some(&fi), Some(&fj)) =
                    (callee.formals.get(i), callee.formals.get(j))
                else {
                    continue;
                };
                let recs_i: Vec<&AccessRecord> = moves(callee_sum.for_array(fi));
                let recs_j: Vec<&AccessRecord> = moves(callee_sum.for_array(fj));
                let detail = format!(
                    "call to `{cname}` passes `{}` as both argument {} (formal \
                     `{}`) and argument {} (formal `{}`)",
                    array_name(a, act_i),
                    i + 1,
                    array_name(a, fi),
                    j + 1,
                    array_name(a, fj),
                );
                report_alias(
                    a,
                    &recs_i,
                    &recs_j,
                    &detail,
                    (site.line, &proc, &file, &array_name(a, act_i)),
                    out,
                );
            }
        }
        // (b) a global passed as an actual while the callee also touches
        // that global directly.
        for (pos, act) in site.array_actuals.iter().enumerate() {
            let Some(actual) = *act else { continue };
            if a.program.symbols.get(actual).class != StClass::Global {
                continue;
            }
            let Some(&formal) = callee.formals.get(pos) else { continue };
            let via_formal: Vec<&AccessRecord> = moves(callee_sum.for_array(formal));
            let direct: Vec<&AccessRecord> = moves(callee_sum.for_array(actual));
            if via_formal.is_empty() || direct.is_empty() {
                continue;
            }
            let detail = format!(
                "call to `{cname}` passes global `{}` as argument {} (formal `{}`) \
                 while the callee also accesses `{}` directly",
                array_name(a, actual),
                pos + 1,
                array_name(a, formal),
                array_name(a, actual),
            );
            report_alias(
                a,
                &via_formal,
                &direct,
                &detail,
                (site.line, &proc, &file, &array_name(a, actual)),
                out,
            );
        }
    }
}

fn moves<'s>(it: impl Iterator<Item = &'s AccessRecord>) -> Vec<&'s AccessRecord> {
    it.filter(|r| r.mode.moves_data() && !r.remote).collect()
}

/// Decides whether two record sets over the *same memory* conflict: a
/// pair with at least one DEF side that provably overlaps is Definite;
/// one that cannot be refuted is Possible; all pairs refuted increments
/// `suppressed`.
fn report_alias(
    a: &Analysis,
    left: &[&AccessRecord],
    right: &[&AccessRecord],
    detail: &str,
    (line, proc, file, array): (u32, &str, &str, &str),
    out: &mut ProcLint,
) {
    let mut any_pair = false;
    let mut unknown = false;
    let worst = |l: &AccessRecord, r: &AccessRecord| l.precision.worst(r.precision);
    let mut worst_seen = Precision::Exact;
    for l in left {
        for r in right {
            if l.mode != AccessMode::Def && r.mode != AccessMode::Def {
                continue; // read/read aliasing is harmless
            }
            any_pair = true;
            worst_seen = worst_seen.worst(worst(l, r));
            match alias_overlap(a, l, r) {
                Some(true) => {
                    out.findings.push(Finding {
                        rule: Rule::Ali05,
                        severity: Severity::Definite,
                        file: file.to_string(),
                        line,
                        proc: proc.to_string(),
                        array: array.to_string(),
                        precision: worst(l, r),
                        message: format!(
                            "{detail}; the two names' accessed regions overlap and \
                             one is written"
                        ),
                    });
                    return;
                }
                Some(false) => {}
                None => unknown = true,
            }
        }
    }
    if !any_pair {
        return;
    }
    if unknown {
        out.findings.push(Finding {
            rule: Rule::Ali05,
            severity: Severity::Possible,
            file: file.to_string(),
            line,
            proc: proc.to_string(),
            array: array.to_string(),
            precision: worst_seen,
            message: format!(
                "{detail}; a write through one name may overlap accesses through \
                 the other"
            ),
        });
    } else {
        out.suppressed += 1; // every def-involving pair proven disjoint
    }
}

/// Do two records over the same base memory overlap? `Some(true)` /
/// `Some(false)` are proofs; `None` is unknown.
fn alias_overlap(a: &Analysis, l: &AccessRecord, r: &AccessRecord) -> Option<bool> {
    if l.approx || r.approx {
        return None;
    }
    // Same rank and both exact: element-space comparison is exact (our
    // formals alias whole arrays, so element i is element i).
    let le = a.program.types.element_size(a.program.symbols.get(l.array).ty).abs();
    let re = a.program.types.element_size(a.program.symbols.get(r.array).ty).abs();
    if l.region.ndims() == r.region.ndims() && le == re {
        if let Some(d) = l.region.disjoint_from(&r.region) {
            if d {
                // Disjoint over-approximations prove real disjointness
                // regardless of precision.
                return Some(false);
            }
            // Overlap is a proof only for exact/affine regions: interval
            // regions over-approximate, so their overlap may be spurious.
            if !interval_or_worse(l) && !interval_or_worse(r) {
                return Some(true);
            }
            return None;
        }
        if let (Some(lc), Some(rc)) = (&l.convex, &r.convex) {
            if lc.disjoint_from(rc) {
                return Some(false);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// NAF-06: accesses still unbounded after the interval fallback
// ---------------------------------------------------------------------------

/// Flags local accesses whose region neither the affine summarizer nor the
/// interval fallback could bound: the access is invisible to every other
/// rule (they all stay silent on `unbounded` regions), so the user should
/// know the tool is blind there. Always [`Severity::Possible`] — the rule
/// reports a *gap in the analysis*, not a proven defect. Propagated
/// (`from_call`) copies are skipped: the callee's own anchored finding
/// already covers the access. Budget-exhaustion fallbacks (`approx`) are
/// skipped too — they are a resource artifact, not an analysis limit, and
/// would make findings depend on the budget configuration.
fn naf(a: &Analysis, id: ProcId, out: &mut ProcLint) {
    let proc = proc_name(a, id);
    let file = proc_file(a, id);
    for rec in &a.ipa.summary(id).accesses {
        if rec.precision != Precision::Unbounded
            || rec.from_call.is_some()
            || !rec.mode.moves_data()
            || rec.remote
            || rec.approx
        {
            continue;
        }
        let verb = if rec.mode == AccessMode::Def { "written" } else { "read" };
        out.findings.push(Finding {
            rule: Rule::Naf06,
            severity: Severity::Possible,
            file: file.clone(),
            line: rec.line,
            proc: proc.clone(),
            array: array_name(a, rec.array),
            precision: rec.precision,
            message: format!(
                "`{}` is {verb} through a subscript neither the affine analysis \
                 nor the interval fallback could bound; bounds checks are blind \
                 to this access",
                array_name(a, rec.array)
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// DST-03: stores no use ever reads (global pass over the extracted rows)
// ---------------------------------------------------------------------------

/// Runs the dead-store rule over the extracted rows. `file_of` maps a
/// procedure display name to its source file (rows carry object files).
pub fn dead_stores(a: &Analysis) -> ProcLint {
    let mut out = ProcLint::default();
    // Globals group program-wide by name (any procedure may read what
    // another wrote); locals and formals group per scope.
    let mut groups: BTreeMap<(String, String), Vec<&RgnRow>> = BTreeMap::new();
    // Procedures performing coindexed (PGAS) communication: sibling images
    // run the same code and may consume this image's stores through the
    // symmetric remote accesses, so one image's rows cannot witness that a
    // store is dead. Skip every array such a procedure touches.
    let pgas_procs: std::collections::BTreeSet<&str> = a
        .rows
        .iter()
        .filter(|r| r.remote)
        .map(|r| r.proc.as_str())
        .collect();
    for row in &a.rows {
        if row.remote || pgas_procs.contains(row.proc.as_str()) {
            continue;
        }
        let scope = if row.is_global { "@".to_string() } else { row.proc.clone() };
        groups.entry((scope, row.array.clone())).or_default().push(row);
    }
    for ((scope, array), rows) in groups {
        let is_global = scope == "@";
        let is_formal_scope =
            rows.iter().any(|r| r.mode == AccessMode::Formal);
        let uses: Vec<&&RgnRow> =
            rows.iter().filter(|r| r.mode == AccessMode::Use).collect();
        // `via` def rows restate a callee's store at the call line; the
        // store itself is judged in the scope that owns it.
        let defs: Vec<&&RgnRow> = rows
            .iter()
            .filter(|r| r.mode == AccessMode::Def && r.via.is_none())
            .collect();

        // Case A: a local array written (by this procedure or a callee it
        // passes the array to) and never read anywhere.
        if !is_global && !is_formal_scope && uses.is_empty() {
            let all_defs: Vec<&&RgnRow> =
                rows.iter().filter(|r| r.mode == AccessMode::Def).collect();
            if let Some(first) = all_defs.iter().min_by_key(|r| r.line) {
                out.findings.push(Finding {
                    rule: Rule::Dst03,
                    severity: Severity::Definite,
                    file: source_file_of(a, &first.proc),
                    line: first.line,
                    proc: first.proc.clone(),
                    array: array.clone(),
                    precision: first.precision,
                    message: format!(
                        "local array `{array}` is written but never read"
                    ),
                });
            }
            continue;
        }

        // Case B: 1-D arrays with fully constant USE rows — any DEF
        // element outside every USE region is a dead store. (fig10:
        // `DEF aarr (1:8)` against uses hulled at (0:7) ⇒ the store to
        // index 8 is dead, which is why the paper shrinks to `aarr[8]`.)
        if is_formal_scope || uses.is_empty() {
            continue; // a formal's remaining elements belong to the caller
        }
        let use_trips: Option<Vec<Triplet>> = uses.iter().map(|r| row_triplet_1d(r)).collect();
        let Some(use_trips) = use_trips else { continue };
        for def in defs {
            let Some(dt) = row_triplet_1d(def) else { continue };
            let Some(count) = dt.count() else { continue };
            if count == 0 || count > ELEMENT_CAP {
                continue;
            }
            let Some(elems) = dt.iter() else { continue };
            let dead: Vec<i64> = elems
                .filter(|&e| !use_trips.iter().any(|u| u.contains(e) == Some(true)))
                .collect();
            if dead.is_empty() {
                continue;
            }
            let span = if dead.len() == 1 {
                format!("element {}", dead[0])
            } else {
                format!("elements {}..{}", dead[0], dead[dead.len() - 1])
            };
            // An interval-precision DEF row over-approximates the store:
            // the "dead" elements may never be written at all, so the
            // violation is only possible. (Interval USE rows need no such
            // cap — over-approximated reads only *shrink* the dead set.)
            let (severity, verb) = if def.precision >= Precision::Interval {
                (Severity::Possible, "may be")
            } else if dead.len() == 1 {
                (Severity::Definite, "is")
            } else {
                (Severity::Definite, "are")
            };
            out.findings.push(Finding {
                rule: Rule::Dst03,
                severity,
                file: source_file_of(a, &def.proc),
                line: def.line,
                proc: def.proc.clone(),
                array: array.clone(),
                precision: def.precision,
                message: format!(
                    "{span} of `{array}` {verb} written here but never read anywhere"
                ),
            });
        }
    }
    out
}

/// The 1-D constant triplet of a row (source bounds), `None` when the row
/// is multi-dimensional or symbolic.
fn row_triplet_1d(row: &RgnRow) -> Option<Triplet> {
    if row.dims != 1 {
        return None;
    }
    let lb = crate::facts::parse_bounds(&row.lb)?;
    let ub = crate::facts::parse_bounds(&row.ub)?;
    let stride = crate::facts::parse_bounds(&row.stride)?;
    if lb.len() != 1 || ub.len() != 1 || stride.len() != 1 {
        return None;
    }
    Some(Triplet::constant(lb[0], ub[0], stride[0].max(1)))
}

/// Maps a row's procedure display name back to its source file.
fn source_file_of(a: &Analysis, proc: &str) -> String {
    for (id, p) in a.program.procedures.iter_enumerated() {
        if display_name(&a.program, p) == proc {
            let _ = id;
            return a.program.name_of(p.file).to_string();
        }
    }
    proc.to_string()
}
