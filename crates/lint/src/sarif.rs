//! SARIF 2.1.0 emission.
//!
//! Renders a [`LintReport`] as a deterministic SARIF document (one run,
//! the five rules in the driver, one `result` per finding, in the
//! report's ranked order). The JSON is built by hand — stable key order,
//! no floating point, byte-identical across thread counts — so a warm
//! cached run can be diffed against a cold one and CI can checksum it.

use crate::{LintReport, Rule, Severity};
use support::obs::json_escape;

/// The SARIF level for a severity: a definite finding is an `error`, a
/// possible one a `warning`.
fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Definite => "error",
        Severity::Possible => "warning",
    }
}

/// Renders the report as a SARIF 2.1.0 document (no trailing newline; the
/// caller seals it with the `#checksum` trailer before writing).
pub fn to_sarif(report: &LintReport, tool_version: &str) -> String {
    support::faultpoint::hit("lint::sarif");
    let mut out = String::with_capacity(4096 + report.findings.len() * 256);
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"araa-lint\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        json_escape(tool_version)
    ));
    out.push_str("          \"informationUri\": \"https://github.com/hpctools-repro/araa\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"name\": \"{}\", \
             \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            rule.id(),
            rule.name(),
            json_escape(rule.describe()),
            if i + 1 < Rule::ALL.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \
             \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}], \
             \"properties\": {{\"proc\": \"{}\", \"array\": \"{}\", \
             \"confidence\": \"{}\", \"precision\": \"{}\"}}}}{}\n",
            f.rule.id(),
            level(f.severity),
            json_escape(&f.message),
            json_escape(&f.file),
            f.line.max(1),
            json_escape(&f.proc),
            json_escape(&f.array),
            f.severity.name(),
            f.precision.as_str(),
            if i + 1 < report.findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ],\n");
    out.push_str(&format!(
        "      \"invocations\": [{{\"executionSuccessful\": true, \
         \"properties\": {{\"procsLinted\": {}, \"procsCached\": {}, \
         \"suppressed\": {}, \"degradations\": {}}}}}]\n",
        report.procs_linted,
        report.procs_cached,
        report.suppressed,
        report.degradations.len()
    ));
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn report() -> LintReport {
        LintReport {
            findings: vec![Finding {
                rule: Rule::Oob01,
                severity: Severity::Definite,
                file: "a.f".into(),
                line: 7,
                proc: "p".into(),
                array: "x\"y".into(),
                precision: regions::access::Precision::Exact,
                message: "region [0:9] exceeds [0:4]".into(),
            }],
            ..Default::default()
        }
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let doc = to_sarif(&report(), "0.1.0");
        assert!(doc.contains("\"version\": \"2.1.0\""));
        for rule in Rule::ALL {
            assert!(doc.contains(rule.id()), "missing {}", rule.id());
        }
        assert!(doc.contains("\"ruleId\": \"OOB-01\""));
        assert!(doc.contains("\"level\": \"error\""));
        assert!(doc.contains("\"startLine\": 7"));
        assert!(doc.contains("\"precision\": \"exact\""), "{doc}");
        assert!(doc.contains("x\\\"y"), "strings are escaped: {doc}");
    }

    #[test]
    fn sarif_is_deterministic() {
        assert_eq!(to_sarif(&report(), "0.1.0"), to_sarif(&report(), "0.1.0"));
    }
}
