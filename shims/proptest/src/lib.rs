//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so the workspace vendors a
//! miniature property-testing harness with the same *surface* as the subset
//! of proptest the test suite uses:
//!
//! - the [`proptest!`] macro (with an optional `#![proptest_config(...)]`),
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! - integer/float range strategies, tuple strategies, `prop_map`,
//! - `proptest::collection::vec`,
//! - string strategies for the simple character-class regexes the suite
//!   uses (`"[ -~\n\"]*"` and `"\PC*"`).
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (per test name), and there is no shrinking — a failing
//! case prints its inputs and panics. That trades minimal counterexamples
//! for zero dependencies, which is the right trade inside this repo.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; honor PROPTEST_CASES like upstream.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for test `name`, case number `case`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// String strategies from simple character-class regexes.
///
/// Supported patterns: `<class>*` where `<class>` is either `[...]` (with
/// `a-b` ranges and `\n`, `\t`, `\\`, `\"`, `\]` escapes) or `\PC`
/// (any non-control character). Anything else panics loudly so a new test
/// either extends this parser or picks a supported pattern.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let palette = parse_char_class(self);
        let len = rng.below(9) as usize; // `*`: short strings, like proptest
        (0..len)
            .map(|_| palette[rng.below(palette.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class(pattern: &str) -> Vec<char> {
    if pattern == "\\PC*" {
        // Any non-control character: ASCII printable plus a spread of
        // multi-byte code points (the CSV tests want UTF-8 coverage).
        let mut v: Vec<char> = (' '..='~').collect();
        v.extend("éßπ中あ—→…𝄞🚀".chars());
        return v;
    }
    let inner = pattern
        .strip_prefix('[')
        .and_then(|p| p.strip_suffix("]*"))
        .unwrap_or_else(|| panic!("unsupported regex strategy `{pattern}`"));
    let mut out = Vec::new();
    let mut chars = inner.chars().peekable();
    while let Some(c) = chars.next() {
        let lo = match c {
            '\\' => match chars.next() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some(e) => e,
                None => panic!("dangling escape in `{pattern}`"),
            },
            other => other,
        };
        if chars.peek() == Some(&'-') {
            chars.next();
            let hi = chars.next().unwrap_or_else(|| {
                panic!("dangling range in `{pattern}`")
            });
            out.extend(lo..=hi);
        } else {
            out.push(lo);
        }
    }
    assert!(!out.is_empty(), "empty character class `{pattern}`");
    out
}

pub mod collection {
    //! `proptest::collection` — vector strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy generating `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range for collection::vec");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The test-declaration macro, mirroring `proptest::proptest!`.
///
/// Each declared function runs `config.cases` times with freshly generated
/// inputs; a panicking case reports the generated inputs before unwinding.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    let mut __inputs: Vec<String> = Vec::new();
                    $(
                        let __value = $crate::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push(format!("{} = {:?}", stringify!($pat), __value));
                        let $pat = __value;
                    )*
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = __outcome {
                        eprintln!(
                            "proptest {} failed on case {}/{} with inputs:\n  {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __inputs.join("\n  "),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = Strategy::generate(&(-3i64..=3), &mut rng);
            assert!((-3..=3).contains(&v));
            let u = Strategy::generate(&(1usize..8), &mut rng);
            assert!((1..8).contains(&u));
        }
    }

    #[test]
    fn char_class_round_trip() {
        let mut rng = TestRng::for_case("chars", 1);
        for _ in 0..100 {
            let s = Strategy::generate(&"[ -~\\n\"]*", &mut rng);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
            let u = Strategy::generate(&"\\PC*", &mut rng);
            assert!(u.chars().all(|c| !c.is_control() || c == '\n'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_and_binds(v in crate::collection::vec((0i64..5, 1u32..4), 1..4)) {
            prop_assert!(!v.is_empty());
            for (a, b) in v {
                prop_assert!((0..5).contains(&a));
                prop_assert_ne!(b, 0);
            }
        }
    }
}
