//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` returns a
//! guard directly (no `Result`), and a poisoned std lock is transparently
//! recovered — parking_lot has no poisoning, so neither does this shim.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never fails (poisoning is swallowed, as in
/// parking_lot).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader–writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
