//! Offline stand-in for `criterion`.
//!
//! Provides the exact builder/macro surface the bench suite uses —
//! `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`, `criterion_main!` — with a minimal
//! wall-clock harness behind it: each benchmark is warmed up briefly, then
//! timed for `sample_size` batches inside the measurement window, and the
//! per-iteration median is printed. No statistics, no plots; enough to run
//! `cargo bench` offline and compare medians across commits.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value alone.
    pub fn from_parameter<P: fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(name: S, p: P) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Throughput annotation (recorded, displayed alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher<'_> {
    /// Times `f`, collecting one duration per sample batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses at least once.
        let warm_start = Instant::now();
        let mut iters_per_sample = 1u64;
        loop {
            std_black_box(f());
            iters_per_sample += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = self.warm_up_time.as_nanos() as u64 / iters_per_sample.max(1);
        // Pick a batch size that fits sample_size batches in the window.
        let budget_ns =
            (self.measurement_time.as_nanos() as u64 / self.sample_size.max(1) as u64).max(1);
        let batch = (budget_ns / per_iter.max(1)).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// The top-level harness object.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher<'_>),
    {
        let config = self.config;
        run_one(&id.into().to_string(), config, None, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.config, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher<'_>, &T),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.config, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    label: &str,
    config: Config,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut samples = Vec::with_capacity(config.sample_size);
    let mut b = Bencher {
        samples: &mut samples,
        sample_size: config.sample_size,
        measurement_time: config.measurement_time,
        warm_up_time: config.warm_up_time,
    };
    f(&mut b);
    samples.sort_unstable();
    let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
    match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let rate = n as f64 / median.as_secs_f64();
            println!("{label:<50} median {median:?}  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let rate = n as f64 / median.as_secs_f64() / 1e6;
            println!("{label:<50} median {median:?}  ({rate:.1} MB/s)");
        }
        _ => println!("{label:<50} median {median:?}"),
    }
}

/// Declares a benchmark group; both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
