//! Offline stand-in for the `rand` crate.
//!
//! The workspace vendors its own tiny PRNG because the build environment has
//! no registry access. Only the API surface the workspace actually uses is
//! provided: `SmallRng::seed_from_u64` and `Rng::gen_range` over integer
//! ranges. The generator is a splitmix64/xorshift mix — deterministic for a
//! given seed, which is all the synthetic-workload generator and the
//! property tests require (statistical quality is irrelevant here).

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range, mirroring
/// `rand::distributions::uniform::SampleRange` (collapsed to one trait).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform draw from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* seeded through
    /// splitmix64, so consecutive seeds give uncorrelated streams).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scramble so seeds 1, 2, 3... diverge immediately.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            SmallRng { state: (z ^ (z >> 31)) | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let w = r.gen_range(5u32..9);
            assert!((5..9).contains(&w));
        }
    }
}
