//! Offline stand-in for the `crossbeam` scoped-thread API, backed by
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Only `crossbeam::thread::scope` + `Scope::spawn` are provided — the one
//! shape the IPL parallel driver uses. Semantics match crossbeam: `scope`
//! joins every spawned thread before returning and yields `Err` with the
//! panic payload if any worker panicked.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle passed to the scope closure; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope again
        /// (crossbeam's signature) so workers can spawn sub-workers.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; every spawned thread is joined before this
    /// returns. A panicking worker surfaces as `Err(payload)`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_run_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(out.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn worker_panic_is_err() {
        let out = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(out.is_err());
    }
}
