program main
  double precision b(32)
  common /gb/ b
  integer m
  common /gm/ m
  integer i, k
  k = 1
  do i = 1, 10
    b(k) = 1.0
    k = k + m
  end do
end program main
