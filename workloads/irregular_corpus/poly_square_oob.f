program main
  double precision a(60)
  common /ga/ a
  integer i
  do i = 1, 10
    a(i*i) = 1.0
  end do
end program main
