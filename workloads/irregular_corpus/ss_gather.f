program main
  integer idx(64)
  double precision a(64)
  common /ga/ a
  double precision s
  integer i
  do i = 1, 64
    idx(i) = 65 - i
  end do
  s = 0.0
  do i = 1, 64
    s = s + a(idx(i))
  end do
end program main
