program main
  integer idx(40)
  double precision a(40)
  common /ga/ a
  integer i
  call scramble(idx)
  do i = 1, 40
    a(idx(i)) = 1.0
  end do
end program main

subroutine scramble(v)
  integer v(40)
  integer i
  do i = 1, 40
    v(i) = 41 - i
  end do
end subroutine scramble
