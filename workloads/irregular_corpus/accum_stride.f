program main
  double precision b(64)
  common /gb/ b
  double precision s
  integer i, k
  k = 0
  do i = 1, 20
    k = k + 2
    b(k) = 1.0
  end do
  s = 0.0
  do i = 1, 64
    s = s + b(i)
  end do
end program main
