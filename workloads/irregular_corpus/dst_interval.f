program main
  integer idx(100)
  double precision a(100)
  common /ga/ a
  double precision s
  integer i
  do i = 1, 100
    idx(i) = 101 - i
  end do
  do i = 1, 100
    a(idx(i)) = 1.0
  end do
  s = 0.0
  do i = 1, 50
    s = s + a(i)
  end do
end program main
