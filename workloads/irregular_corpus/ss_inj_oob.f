program main
  integer idx(50)
  double precision a(50)
  common /ga/ a
  integer i
  do i = 1, 50
    idx(i) = 100 + i
  end do
  do i = 1, 50
    a(idx(i)) = 1.0
  end do
end program main
