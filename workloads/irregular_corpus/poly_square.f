program main
  double precision a(100)
  common /ga/ a
  double precision s
  integer i
  do i = 1, 10
    a(i*i) = 1.0
  end do
  s = 0.0
  do i = 1, 10
    s = s + a(i*i)
  end do
end program main
