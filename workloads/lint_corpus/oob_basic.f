program main
  double precision a(10)
  integer i
  do i = 1, 12
    a(i) = a(i) + 1.0
  end do
end program main
