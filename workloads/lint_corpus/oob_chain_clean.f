program main
  double precision a(10)
  integer i
  do i = 1, 10
    a(i) = 0.0
  end do
  call bump(a)
end program main

subroutine bump(x)
  double precision x(*)
  integer i
  do i = 1, 10
    x(i) = x(i) + 1.0
  end do
end subroutine bump
