void main()
{
  int i;
  double w[10];
  double s;

  s = 0.0;
  for (i = 0; i < 10; i = i + 1)
  {
    w[i] = i * 1.0;
  }
  for (i = 0; i < 10; i = i + 1)
  {
    s = s + w[i];
  }
}
