program main
  double precision g(10)
  double precision h(10)
  double precision s
  common /cg/ g
  integer i
  do i = 1, 10
    g(i) = 1.0
  end do
  call scale(h)
  s = 0.0
  do i = 1, 10
    s = s + h(i)
  end do
end program main

subroutine scale(x)
  double precision x(10)
  double precision g(10)
  common /cg/ g
  integer i
  do i = 1, 10
    x(i) = x(i) + g(i)
  end do
end subroutine scale
