program main
  double precision a(10)
  double precision b(10)
  double precision c(10)
  double precision s
  integer i
  do i = 1, 10
    a(i) = 1.0
    b(i) = 2.0
  end do
  call combine(a, b, c)
  s = 0.0
  do i = 1, 10
    s = s + c(i)
  end do
end program main

subroutine combine(x, y, z)
  double precision x(10), y(10), z(10)
  integer i
  do i = 1, 10
    z(i) = x(i) + y(i)
  end do
end subroutine combine
