void main()
{
  int i;
  double a[16];

  for (i = 0; i < 18; i = i + 1)
  {
    a[i] = a[i] + 1.0;
  }
}
