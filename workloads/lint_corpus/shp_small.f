program main
  double precision small(4)
  double precision s
  integer i
  do i = 1, 4
    small(i) = 0.0
  end do
  call fill8(small)
  s = 0.0
  do i = 1, 4
    s = s + small(i)
  end do
end program main

subroutine fill8(x)
  double precision x(2, 4)
  integer i, j
  do i = 1, 2
    do j = 1, 4
      x(i, j) = 1.0
    end do
  end do
end subroutine fill8
