program main
  double precision g(10)
  common /cg/ g
  integer i
  do i = 1, 10
    g(i) = 1.0
  end do
  call scale(g)
end program main

subroutine scale(x)
  double precision x(10)
  double precision g(10)
  common /cg/ g
  integer i
  do i = 1, 10
    x(i) = x(i) + g(i)
  end do
end subroutine scale
