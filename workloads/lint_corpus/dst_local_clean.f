program main
  double precision buf(16)
  double precision s
  integer i
  do i = 1, 16
    buf(i) = 1.0
  end do
  s = 0.0
  do i = 1, 16
    s = s + buf(i)
  end do
end program main
