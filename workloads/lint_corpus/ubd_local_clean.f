program main
  double precision t(5)
  double precision s
  integer i
  do i = 1, 5
    t(i) = 1.0
  end do
  s = 0.0
  do i = 1, 5
    s = s + t(i)
  end do
end program main
