program main
  double precision v(6)
  double precision s
  call total(v, s)
end program main

subroutine total(x, r)
  double precision x(6)
  double precision r
  integer i
  r = 0.0
  do i = 1, 6
    r = r + x(i)
  end do
end subroutine total
