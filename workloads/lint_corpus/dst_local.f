program main
  double precision buf(16)
  double precision acc(4)
  integer i
  do i = 1, 16
    buf(i) = 1.0
  end do
  do i = 1, 4
    acc(i) = 2.0
  end do
  do i = 1, 4
    acc(i) = acc(i) + 1.0
  end do
end program main
